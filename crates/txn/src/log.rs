//! Command logging with group commit.
//!
//! S-Store "leverages H-Store's command logging mechanism to provide an
//! upstream backup based fault tolerance technique" (paper §2; Malviya et
//! al., ICDE 2014). We log *inputs*, not effects: each border batch (and,
//! in H-Store mode, each client invocation) is one record. Replaying the
//! log through the deterministic procedures reconstructs the state.
//!
//! # On-disk formats
//!
//! Two formats are live ([`DurabilityFormat`]):
//!
//! * **Binary** (default): a `SSLG` magic + version header, then one CRC32
//!   frame `[len u32 LE][crc32 u32 LE][payload]` per record, with the
//!   payload in the compact value codec (`sstore_common::codec`). Row
//!   encoding borrows the batch's shared COW rows — appending a record
//!   never deep-copies tuples.
//! * **Json**: the legacy JSON-lines format, kept for back-compat replay
//!   of pre-binary durability dirs and for the E6 json-vs-binary
//!   benchmarks.
//!
//! [`CommandLog::open`] *sniffs* a non-empty file and keeps appending in
//! its existing format (mixing formats inside one file would corrupt it);
//! the configured format takes over at the next truncation or retention
//! rewrite. [`read_log`] sniffs the same way, so recovery replays either.
//!
//! # Group commit
//!
//! Appends encode into an in-memory buffer; the buffer is flushed to the
//! file with **one `write(2)` + one fsync** after every `group_commit_n`
//! records (1 = sync per record). A whole coalesced batch group therefore
//! costs a single write + fsync rather than a line-sized write per record.
//!
//! # Torn tails vs corruption
//!
//! A trailing frame whose bytes run out (header or payload incomplete) is
//! the signature of a write interrupted by a crash: everything before it
//! was fsynced, so [`read_log`] drops the tail with a warning and replay
//! proceeds. A *complete* frame failing its CRC cannot come from a torn
//! append — the medium corrupted once-intact data — so replay stops with
//! a clear recovery error instead of silently losing suffix records.

use serde::{Deserialize, Serialize};
use sstore_common::codec::{self, FrameRead};
use sstore_common::fault;
use sstore_common::{BatchId, DurabilityFormat, Error, Result, Row};
use std::collections::HashSet;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// One durable record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LogRecord {
    /// A border input batch entering a workflow (S-Store mode).
    BorderBatch {
        /// Batch id assigned at submission.
        batch: BatchId,
        /// Border procedure name.
        proc: String,
        /// The input tuples.
        rows: Vec<Row>,
        /// Logical submission time (µs) — replay pins the clock to this.
        ts: i64,
    },
    /// A direct client invocation (H-Store mode / OLTP requests). Carries
    /// its batch id so replay stamps identical `__batch` values.
    Invocation {
        /// Batch id assigned at submission.
        batch: BatchId,
        /// Procedure name.
        proc: String,
        /// Parameters-as-rows.
        rows: Vec<Row>,
        /// Logical submission time (µs).
        ts: i64,
    },
    /// The workflow for `batch` fully committed (upstream backup may
    /// discard the batch; used for log GC and exactly-once checks).
    Ack {
        /// The completed batch.
        batch: BatchId,
    },
    /// This partition prepared its fragment of multi-sited transaction
    /// `gtid`: the fragment's input is durable and its undo log is held
    /// open until the coordinator's decision. Written (and fsynced)
    /// *before* the participant votes yes.
    PrepareMarker {
        /// Global transaction id assigned by the coordinator.
        gtid: u64,
        /// Local batch id assigned to the fragment.
        batch: BatchId,
        /// The fragmented procedure's name.
        proc: String,
        /// This partition's share of the input rows.
        rows: Vec<Row>,
        /// Logical prepare time (µs).
        ts: i64,
    },
    /// The participant learned the global outcome of prepared fragment
    /// `gtid`. A prepared fragment with no Decision record is *in doubt*:
    /// recovery consults the coordinator's decision log, and aborts
    /// deterministically when that is silent too (presumed abort).
    Decision {
        /// Global transaction id.
        gtid: u64,
        /// The fragment's local batch id.
        batch: BatchId,
        /// True = commit, false = abort.
        commit: bool,
    },
    /// A batch forwarded over a cross-partition workflow edge, logged on
    /// the **receiving** partition before execution — the edge's upstream
    /// backup. `(src_partition, stream, src_batch)` identifies the edge
    /// instance for exactly-once dedup.
    Forward {
        /// Local batch id assigned on this (receiving) partition.
        batch: BatchId,
        /// The workflow stream the rows travelled on.
        stream: String,
        /// The emitting partition.
        src_partition: u32,
        /// The emitting partition's batch id.
        src_batch: u64,
        /// The forwarded rows.
        rows: Vec<Row>,
        /// Logical arrival time on this partition (µs).
        ts: i64,
    },
    /// Per-(source partition, stream) forwarding high-water marks,
    /// appended at snapshot points so edge dedup survives log GC. A
    /// later record supersedes earlier ones (the marks are monotone).
    EdgeHighWater {
        /// `(src_partition, stream, highest src_batch executed)`.
        entries: Vec<(u32, String, u64)>,
    },
    /// A cross-partition edge envelope, logged on the **emitting**
    /// partition when the emission is buffered for the cluster router —
    /// the source half of the edge's upstream backup. Replay normally
    /// regenerates envelopes by re-running the emitting batch, but a
    /// retention snapshot may cover that batch while its edge ack is
    /// still outstanding; this record lets recovery re-forward the
    /// envelope without re-executing (receivers dedupe, so an extra
    /// re-forward is exactly-once either way).
    ForwardOut {
        /// The emitting batch (shares its upstream-backup lifetime).
        batch: BatchId,
        /// The workflow stream the rows travel on.
        stream: String,
        /// The edge's routing key column.
        key_col: u32,
        /// The emitted rows.
        rows: Vec<Row>,
    },
}

use sstore_common::codec::{
    REC_ACK, REC_BORDER, REC_DECISION, REC_EDGE_HW, REC_FORWARD, REC_FORWARD_OUT, REC_INVOKE,
    REC_PREPARE,
};

impl LogRecord {
    /// The batch this record belongs to. [`LogRecord::EdgeHighWater`] is
    /// batch-less bookkeeping and reports batch 0 (never acked, so GC
    /// handles it specially rather than through the acked set).
    pub fn batch(&self) -> BatchId {
        match self {
            LogRecord::BorderBatch { batch, .. }
            | LogRecord::Invocation { batch, .. }
            | LogRecord::PrepareMarker { batch, .. }
            | LogRecord::Decision { batch, .. }
            | LogRecord::Forward { batch, .. }
            | LogRecord::ForwardOut { batch, .. }
            | LogRecord::Ack { batch } => *batch,
            LogRecord::EdgeHighWater { .. } => BatchId::new(0),
        }
    }

    /// True for records that introduce *input* a workflow must process
    /// (the records upstream backup must keep until acked).
    pub fn is_input(&self) -> bool {
        matches!(
            self,
            LogRecord::BorderBatch { .. }
                | LogRecord::Invocation { .. }
                | LogRecord::PrepareMarker { .. }
                | LogRecord::Forward { .. }
        )
    }

    /// Append the binary encoding (frame payload). Rows are encoded by
    /// borrowing their shared cells — no copy.
    pub fn encode_binary(&self, out: &mut Vec<u8>) {
        match self {
            LogRecord::BorderBatch {
                batch,
                proc,
                rows,
                ts,
            }
            | LogRecord::Invocation {
                batch,
                proc,
                rows,
                ts,
            } => {
                out.push(if matches!(self, LogRecord::BorderBatch { .. }) {
                    REC_BORDER
                } else {
                    REC_INVOKE
                });
                codec::put_uvarint(out, batch.raw());
                codec::put_str(out, proc);
                codec::put_uvarint(out, rows.len() as u64);
                for row in rows {
                    codec::encode_row(row, out);
                }
                codec::put_ivarint(out, *ts);
            }
            LogRecord::Ack { batch } => {
                out.push(REC_ACK);
                codec::put_uvarint(out, batch.raw());
            }
            LogRecord::PrepareMarker {
                gtid,
                batch,
                proc,
                rows,
                ts,
            } => {
                out.push(REC_PREPARE);
                codec::put_uvarint(out, *gtid);
                codec::put_uvarint(out, batch.raw());
                codec::put_str(out, proc);
                codec::put_uvarint(out, rows.len() as u64);
                for row in rows {
                    codec::encode_row(row, out);
                }
                codec::put_ivarint(out, *ts);
            }
            LogRecord::Decision {
                gtid,
                batch,
                commit,
            } => {
                out.push(REC_DECISION);
                codec::put_uvarint(out, *gtid);
                codec::put_uvarint(out, batch.raw());
                out.push(*commit as u8);
            }
            LogRecord::Forward {
                batch,
                stream,
                src_partition,
                src_batch,
                rows,
                ts,
            } => {
                out.push(REC_FORWARD);
                codec::put_uvarint(out, batch.raw());
                codec::put_str(out, stream);
                codec::put_uvarint(out, *src_partition as u64);
                codec::put_uvarint(out, *src_batch);
                codec::put_uvarint(out, rows.len() as u64);
                for row in rows {
                    codec::encode_row(row, out);
                }
                codec::put_ivarint(out, *ts);
            }
            LogRecord::EdgeHighWater { entries } => {
                out.push(REC_EDGE_HW);
                codec::put_uvarint(out, entries.len() as u64);
                for (src, stream, hw) in entries {
                    codec::put_uvarint(out, *src as u64);
                    codec::put_str(out, stream);
                    codec::put_uvarint(out, *hw);
                }
            }
            LogRecord::ForwardOut {
                batch,
                stream,
                key_col,
                rows,
            } => {
                out.push(REC_FORWARD_OUT);
                codec::put_uvarint(out, batch.raw());
                codec::put_str(out, stream);
                codec::put_uvarint(out, *key_col as u64);
                codec::put_uvarint(out, rows.len() as u64);
                for row in rows {
                    codec::encode_row(row, out);
                }
            }
        }
    }

    /// Decode one record from a frame payload.
    pub fn decode_binary(r: &mut codec::Reader<'_>) -> Result<LogRecord> {
        let tag = r.u8()?;
        match tag {
            REC_BORDER | REC_INVOKE => {
                let batch = BatchId::new(r.uvarint()?);
                let proc = r.str()?.to_string();
                let n = r.uvarint()? as usize;
                let mut rows = Vec::with_capacity(n.min(r.remaining()));
                for _ in 0..n {
                    rows.push(codec::decode_row(r)?);
                }
                let ts = r.ivarint()?;
                Ok(if tag == REC_BORDER {
                    LogRecord::BorderBatch {
                        batch,
                        proc,
                        rows,
                        ts,
                    }
                } else {
                    LogRecord::Invocation {
                        batch,
                        proc,
                        rows,
                        ts,
                    }
                })
            }
            REC_ACK => Ok(LogRecord::Ack {
                batch: BatchId::new(r.uvarint()?),
            }),
            REC_PREPARE => {
                let gtid = r.uvarint()?;
                let batch = BatchId::new(r.uvarint()?);
                let proc = r.str()?.to_string();
                let n = r.uvarint()? as usize;
                let mut rows = Vec::with_capacity(n.min(r.remaining()));
                for _ in 0..n {
                    rows.push(codec::decode_row(r)?);
                }
                let ts = r.ivarint()?;
                Ok(LogRecord::PrepareMarker {
                    gtid,
                    batch,
                    proc,
                    rows,
                    ts,
                })
            }
            REC_DECISION => Ok(LogRecord::Decision {
                gtid: r.uvarint()?,
                batch: BatchId::new(r.uvarint()?),
                commit: r.u8()? != 0,
            }),
            REC_FORWARD => {
                let batch = BatchId::new(r.uvarint()?);
                let stream = r.str()?.to_string();
                let src_partition = r.uvarint()? as u32;
                let src_batch = r.uvarint()?;
                let n = r.uvarint()? as usize;
                let mut rows = Vec::with_capacity(n.min(r.remaining()));
                for _ in 0..n {
                    rows.push(codec::decode_row(r)?);
                }
                let ts = r.ivarint()?;
                Ok(LogRecord::Forward {
                    batch,
                    stream,
                    src_partition,
                    src_batch,
                    rows,
                    ts,
                })
            }
            REC_EDGE_HW => {
                let n = r.uvarint()? as usize;
                let mut entries = Vec::with_capacity(n.min(r.remaining()));
                for _ in 0..n {
                    let src = r.uvarint()? as u32;
                    let stream = r.str()?.to_string();
                    let hw = r.uvarint()?;
                    entries.push((src, stream, hw));
                }
                Ok(LogRecord::EdgeHighWater { entries })
            }
            REC_FORWARD_OUT => {
                let batch = BatchId::new(r.uvarint()?);
                let stream = r.str()?.to_string();
                let key_col = r.uvarint()? as u32;
                let n = r.uvarint()? as usize;
                let mut rows = Vec::with_capacity(n.min(r.remaining()));
                for _ in 0..n {
                    rows.push(codec::decode_row(r)?);
                }
                Ok(LogRecord::ForwardOut {
                    batch,
                    stream,
                    key_col,
                    rows,
                })
            }
            tag => Err(Error::Codec(format!("unknown log record tag {tag}"))),
        }
    }
}

/// Automatic snapshot-then-GC retention policy.
///
/// When configured (see `PeConfig::retention`), the partition writes a
/// snapshot and garbage-collects the command log after every
/// `every_n_commits` committed TEs, at the next quiescent point (the
/// scheduler queue is empty between client calls, so the snapshot captures
/// a workflow-consistent state). Replay-after-truncate recovers from the
/// snapshot plus whatever the log accumulated since.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogRetention {
    /// Snapshot + GC after this many committed TEs (min 1).
    pub every_n_commits: u64,
}

impl LogRetention {
    /// Policy firing every `n` commits (clamped to at least 1).
    pub fn every_n_commits(n: u64) -> Self {
        LogRetention {
            every_n_commits: n.max(1),
        }
    }
}

/// Durability settings.
#[derive(Debug, Clone)]
pub struct LogConfig {
    /// Directory holding `command.log` and snapshots.
    pub dir: PathBuf,
    /// fsync after this many records (group commit). 1 = every record.
    pub group_commit_n: usize,
    /// On-disk serialization format (binary frames by default; JSON kept
    /// for back-compat and the E6 benchmarks). Opening an existing log
    /// file keeps *its* format until the next truncation/GC rewrite.
    pub format: DurabilityFormat,
    /// Maximum delta-snapshot chain length before the next retention
    /// point rewrites a full base image (binary format only; 0 disables
    /// deltas entirely). Bounds both recovery replay work and the stale
    /// log a long chain would otherwise pin.
    pub delta_chain_cap: u64,
}

/// Default [`LogConfig::delta_chain_cap`].
pub const DEFAULT_DELTA_CHAIN_CAP: u64 = 8;

impl LogConfig {
    /// Config with per-record sync.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        LogConfig {
            dir: dir.into(),
            group_commit_n: 1,
            format: DurabilityFormat::default(),
            delta_chain_cap: DEFAULT_DELTA_CHAIN_CAP,
        }
    }

    /// Config with group commit every `n` records.
    pub fn with_group_commit(dir: impl Into<PathBuf>, n: usize) -> Self {
        LogConfig {
            group_commit_n: n.max(1),
            ..LogConfig::new(dir)
        }
    }

    /// Override the on-disk format.
    pub fn with_format(mut self, format: DurabilityFormat) -> Self {
        self.format = format;
        self
    }

    /// Override the delta-snapshot chain cap (0 = full images only).
    pub fn with_delta_chain_cap(mut self, cap: u64) -> Self {
        self.delta_chain_cap = cap;
        self
    }

    /// Path of the command log file.
    pub fn log_path(&self) -> PathBuf {
        self.dir.join("command.log")
    }

    /// Path of the snapshot file. The name is format-independent (the
    /// *content* carries a magic); only writes from the binary-era engine
    /// use it.
    pub fn snapshot_path(&self) -> PathBuf {
        self.dir.join("snapshot.dat")
    }

    /// Path of the `k`-th delta snapshot (k ≥ 1) chained onto
    /// [`LogConfig::snapshot_path`]. Recovery applies `snapshot.d1.dat`,
    /// `snapshot.d2.dat`, … until a file is missing or names a
    /// superseded base.
    pub fn delta_snapshot_path(&self, k: u64) -> PathBuf {
        self.dir.join(format!("snapshot.d{k}.dat"))
    }

    /// Snapshot path written by pre-binary versions of the engine.
    /// Recovery falls back to it when [`LogConfig::snapshot_path`] is
    /// absent; a successful new snapshot deletes it.
    pub fn legacy_snapshot_path(&self) -> PathBuf {
        self.dir.join("snapshot.json")
    }
}

/// Append-only command log writer with group-commit buffering: appends
/// encode into an in-memory buffer, and a whole commit group reaches the
/// file as one write + one fsync.
#[derive(Debug)]
pub struct CommandLog {
    file: File,
    /// Encoded-but-unwritten records (plus the file header before the
    /// first sync of a fresh binary log).
    pending: Vec<u8>,
    config: LogConfig,
    /// The format of the file being appended to (may differ from
    /// `config.format` until the next truncation/GC rewrite).
    active_format: DurabilityFormat,
    unsynced: usize,
    records_written: u64,
    syncs: u64,
    bytes_written: u64,
    /// Set when a failed group write could not be rolled back: the file
    /// tail is of unknown durability, so no further append may land
    /// after it. Every later append/sync fails with `Error::Recovery`.
    poisoned: bool,
}

impl CommandLog {
    /// Open (creating or appending to) the log in `config.dir`. A
    /// non-empty existing file is sniffed and appended to in its own
    /// format; the configured format takes effect at the next truncation.
    /// A torn trailing record left by a crash is trimmed off before
    /// appends are accepted — otherwise new records would land *after*
    /// the torn bytes and the next recovery would misread the boundary
    /// as corruption (binary) or silently drop the suffix (JSON).
    pub fn open(config: LogConfig) -> Result<CommandLog> {
        fs::create_dir_all(&config.dir)?;
        let path = config.log_path();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let len = file.metadata()?.len();
        let mut pending = Vec::new();
        let active_format = if len == 0 {
            if config.format == DurabilityFormat::Binary {
                codec::put_file_header(&mut pending, codec::LOG_MAGIC);
            }
            config.format
        } else {
            let format = sniff_format(&path)?.unwrap_or(DurabilityFormat::Json);
            let bytes = fs::read(&path)?;
            match intact_prefix_len(&bytes, format) {
                Some(0) => {
                    // Nothing survived (e.g. the very first write tore
                    // inside the file header): restart empty in the
                    // configured format, exactly like a fresh log.
                    sstore_common::slog!(
                        Warn;
                        "{}: trimming fully-torn log ({} bytes) and restarting empty",
                        path.display(),
                        bytes.len()
                    );
                    file.set_len(0)?;
                    file.sync_data()?;
                    if config.format == DurabilityFormat::Binary {
                        codec::put_file_header(&mut pending, codec::LOG_MAGIC);
                    }
                    config.format
                }
                Some(valid_len) => {
                    fault::note("log-torn-tail-trimmed");
                    sstore_common::slog!(
                        Warn;
                        "{}: trimming torn tail at byte {valid_len} (of {}) before resuming appends",
                        path.display(),
                        bytes.len()
                    );
                    file.set_len(valid_len as u64)?;
                    file.sync_data()?;
                    format
                }
                None => format,
            }
        };
        Ok(CommandLog {
            file,
            pending,
            config,
            active_format,
            unsynced: 0,
            records_written: 0,
            syncs: 0,
            bytes_written: 0,
            poisoned: false,
        })
    }

    /// The format records are currently appended in.
    pub fn active_format(&self) -> DurabilityFormat {
        self.active_format
    }

    /// Append a record; flushes per group-commit policy. Returns true if
    /// this append triggered an fsync.
    ///
    /// When the flush fails, the *failed record* is dropped from the
    /// buffer before the error surfaces: the caller reports its batch as
    /// failed, so the record must not linger and become durable at a
    /// later sync — a batch the client saw fail would otherwise
    /// resurrect at replay. Earlier buffered group members stay (their
    /// callers were told "accepted, not yet synced", which still holds)
    /// unless the log is poisoned (unknown tail durability).
    pub fn append(&mut self, record: &LogRecord) -> Result<bool> {
        let base = self.pending.len();
        encode_record_into(record, self.active_format, &mut self.pending)?;
        self.records_written += 1;
        self.unsynced += 1;
        if self.unsynced >= self.config.group_commit_n {
            if let Err(e) = self.sync() {
                if e.kind() != "recovery" {
                    self.pending.truncate(base);
                    self.unsynced -= 1;
                    self.records_written -= 1;
                }
                return Err(e);
            }
            return Ok(true);
        }
        Ok(false)
    }

    /// Force the buffered records down: one write + one fsync for the
    /// whole group. No-op when nothing is unsynced.
    ///
    /// A failed (or injected — fault point `log-append-io-error`) group
    /// write is rolled back to the pre-write file length, so no torn
    /// frame is left as a durable prefix boundary: the buffered records
    /// stay pending and the failure surfaces as a retryable
    /// [`Error::Io`]. Only if the rollback *also* fails is the log
    /// poisoned — the tail is then of unknown durability, and every
    /// later append fails with [`Error::Recovery`].
    pub fn sync(&mut self) -> Result<()> {
        if self.unsynced == 0 {
            return Ok(());
        }
        if self.poisoned {
            return Err(Error::Recovery(
                "command log poisoned by an earlier failed write rollback".into(),
            ));
        }
        if let Some(mode) = fault::should_fire("log-mid-write") {
            // Injected torn write: half the buffered group reaches disk,
            // then the process dies — exactly what a crash between
            // `write` and `fsync` can leave behind. The reader must
            // treat the partial frame as a benign torn tail.
            let half = self.pending.len() / 2;
            let _ = self.file.write_all(&self.pending[..half]);
            let _ = self.file.sync_data();
            self.pending.clear();
            self.unsynced = 0;
            fault::die("log-mid-write", mode);
        }
        let old_len = self.file.metadata()?.len();
        let write = match fault::io_error("log-append-io-error") {
            Some(e) => Err(e),
            None => self
                .file
                .write_all(&self.pending)
                .and_then(|()| self.file.sync_data())
                .map_err(Error::from),
        };
        if let Err(e) = write {
            let rollback = self
                .file
                .set_len(old_len)
                .and_then(|()| self.file.sync_data());
            return Err(match rollback {
                Ok(()) => Error::Io(format!(
                    "command log group write failed (rolled back, retryable): {e}"
                )),
                Err(r) => {
                    self.poisoned = true;
                    Error::Recovery(format!(
                        "command log group write failed and rollback failed — log tail \
                         of unknown durability: write: {e}; rollback: {r}"
                    ))
                }
            });
        }
        self.bytes_written += self.pending.len() as u64;
        self.pending.clear();
        self.unsynced = 0;
        self.syncs += 1;
        Ok(())
    }

    /// True once a failed write rollback left the file tail of unknown
    /// durability. A poisoned log accepts no further appends; the owning
    /// partition should go down deliberately and be recovered from disk.
    pub fn poisoned(&self) -> bool {
        self.poisoned
    }

    /// Records appended over this log's lifetime.
    pub fn records_written(&self) -> u64 {
        self.records_written
    }

    /// fsyncs issued.
    pub fn syncs(&self) -> u64 {
        self.syncs
    }

    /// Bytes written to the file over this log's lifetime.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Truncate the log (after a snapshot covers everything in it).
    /// Buffered unsynced records are discarded along with the file
    /// contents; the log restarts empty in the *configured* format.
    pub fn truncate(&mut self) -> Result<()> {
        let path = self.config.log_path();
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&path)?;
        file.sync_all()?;
        self.file = OpenOptions::new().append(true).open(&path)?;
        self.pending.clear();
        self.unsynced = 0;
        self.active_format = self.config.format;
        if self.active_format == DurabilityFormat::Binary {
            codec::put_file_header(&mut self.pending, codec::LOG_MAGIC);
        }
        Ok(())
    }

    /// Upstream-backup garbage collection: rewrite the log dropping every
    /// record of a batch that is both **acked** (its workflow fully
    /// completed — no downstream work can still need the input) and
    /// **covered** by a snapshot (`batch <= covered` — replay skips it
    /// anyway). Unacked or newer records are kept verbatim, so the log
    /// stays replayable; at a quiescent point this degenerates to full
    /// truncation. The rewrite uses the *configured* format, migrating a
    /// sniffed legacy-JSON log to binary at the first retention point.
    ///
    /// Returns the number of records dropped.
    pub fn gc_acked_through(&mut self, covered: BatchId) -> Result<u64> {
        self.sync()?; // pending records must be visible to the reader
        let path = self.config.log_path();
        let records = read_log(&path)?;
        let acked: HashSet<u64> = records
            .iter()
            .filter_map(|r| match r {
                LogRecord::Ack { batch } => Some(batch.raw()),
                _ => None,
            })
            .collect();
        // Keep only the newest EdgeHighWater record: each one dumps the
        // full (monotone) mark map, so later records supersede earlier
        // ones — without this, every snapshot would leak one more.
        let last_hw = records
            .iter()
            .rposition(|r| matches!(r, LogRecord::EdgeHighWater { .. }));
        let keep: Vec<&LogRecord> = records
            .iter()
            .enumerate()
            .filter(|(i, r)| {
                if matches!(r, LogRecord::EdgeHighWater { .. }) {
                    return Some(*i) == last_hw;
                }
                let b = r.batch().raw();
                !(b <= covered.raw() && acked.contains(&b))
            })
            .map(|(_, r)| r)
            .collect();
        let dropped = (records.len() - keep.len()) as u64;
        if dropped == 0 && self.active_format == self.config.format {
            return Ok(0);
        }

        let mut buf = Vec::new();
        if self.config.format == DurabilityFormat::Binary {
            codec::put_file_header(&mut buf, codec::LOG_MAGIC);
        }
        for record in keep {
            encode_record_into(record, self.config.format, &mut buf)?;
        }
        let tmp = path.with_extension("rewrite");
        {
            let mut file = File::create(&tmp)?;
            file.write_all(&buf)?;
            file.sync_all()?;
        }
        fs::rename(&tmp, &path)?;
        self.file = OpenOptions::new().append(true).open(&path)?;
        self.pending.clear();
        self.unsynced = 0;
        self.active_format = self.config.format;
        Ok(dropped)
    }
}

impl Drop for CommandLog {
    /// Best-effort flush of the buffered group on clean shutdown, so a
    /// non-crash exit never loses the unsynced tail (crash durability is
    /// still bounded by `group_commit_n`, as before).
    fn drop(&mut self) {
        if std::thread::panicking() || self.poisoned {
            // A thread dying by panic (e.g. an injected kill) must not
            // flush the buffered group as if shutdown were clean — the
            // crash contract is that unsynced records are lost. A
            // poisoned log must not write past a tail of unknown
            // durability either.
            return;
        }
        let _ = self.sync();
    }
}

/// Encode one record in the given on-disk format: a CRC32 frame (binary)
/// or a JSON line. The single encoder behind both the append path and
/// the GC rewrite, so the two can never drift.
fn encode_record_into(
    record: &LogRecord,
    format: DurabilityFormat,
    out: &mut Vec<u8>,
) -> Result<()> {
    match format {
        DurabilityFormat::Binary => {
            let frame = codec::begin_frame(out);
            record.encode_binary(out);
            codec::end_frame(out, frame);
        }
        DurabilityFormat::Json => {
            let line =
                serde_json::to_string(record).map_err(|e| Error::Io(format!("log encode: {e}")))?;
            out.extend_from_slice(line.as_bytes());
            out.push(b'\n');
        }
    }
    Ok(())
}

/// Length of the intact record prefix when the file ends in a torn tail
/// that should be trimmed before appends resume; `None` when the file is
/// clean — or mid-stream corrupt, which is deliberately left untouched
/// so replay surfaces the error instead of appends destroying evidence.
fn intact_prefix_len(bytes: &[u8], format: DurabilityFormat) -> Option<usize> {
    match format {
        DurabilityFormat::Binary => {
            if bytes.len() < codec::FILE_HEADER_LEN {
                // The very first write tore inside the 8-byte header:
                // no record was ever durable, restart from scratch.
                return Some(0);
            }
            let mut r = codec::Reader::new(bytes);
            if codec::check_file_header(&mut r, codec::LOG_MAGIC).is_err() {
                // Complete header but wrong version — a compatibility
                // problem, not a torn write; let replay surface it.
                return None;
            }
            let mut valid_len = r.pos();
            loop {
                match codec::read_frame(&mut r) {
                    FrameRead::Frame(_) => valid_len = r.pos(),
                    FrameRead::Eof => return None,
                    FrameRead::Torn { .. } => return Some(valid_len),
                    FrameRead::Corrupt { .. } => return None,
                }
            }
        }
        DurabilityFormat::Json => {
            // Valid prefix = every parseable, newline-terminated line.
            // The writer always terminates lines, so an unterminated
            // final line — even a parseable one — is a torn write, and
            // appending after it would concatenate two records into one
            // unparseable line. Mirroring the binary arm's torn/corrupt
            // split: trim only when the bad region runs to end-of-file;
            // a parseable record *after* a bad line means in-place
            // corruption, which is left untouched (trimming would
            // silently destroy the intact, fsynced suffix).
            let mut valid_len = 0usize;
            let is_record = |line: &[u8]| {
                std::str::from_utf8(line)
                    .is_ok_and(|t| serde_json::from_str::<LogRecord>(t.trim_end()).is_ok())
            };
            let is_blank =
                |line: &[u8]| std::str::from_utf8(line).is_ok_and(|t| t.trim().is_empty());
            let mut lines = bytes.split_inclusive(|&b| b == b'\n');
            for line in lines.by_ref() {
                if line.last() != Some(&b'\n') || !(is_blank(line) || is_record(line)) {
                    let suffix_has_records =
                        lines.any(|l| l.last() == Some(&b'\n') && is_record(l));
                    return if suffix_has_records {
                        None // mid-file corruption, not a torn tail
                    } else {
                        Some(valid_len)
                    };
                }
                valid_len += line.len();
            }
            None
        }
    }
}

/// Sniff a log file's on-disk format from its first bytes. `None` for a
/// missing or empty file.
pub fn sniff_format(path: &Path) -> Result<Option<DurabilityFormat>> {
    let mut file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    let mut head = [0u8; 4];
    let mut read = 0;
    while read < 4 {
        match file.read(&mut head[read..])? {
            0 => break,
            n => read += n,
        }
    }
    if read == 0 {
        return Ok(None);
    }
    Ok(Some(if read == 4 && head == codec::LOG_MAGIC {
        DurabilityFormat::Binary
    } else {
        DurabilityFormat::Json
    }))
}

/// Read every record in a command log, in append order, sniffing the
/// format. A torn trailing record (incomplete write at crash) is dropped
/// with a warning; a checksum failure on a *complete* binary frame is
/// corruption and fails with a clear error instead of silently dropping
/// the suffix.
pub fn read_log(path: &Path) -> Result<Vec<LogRecord>> {
    let bytes = match fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(vec![]),
        Err(e) => return Err(e.into()),
    };
    if bytes.is_empty() {
        return Ok(vec![]);
    }
    if codec::has_magic(&bytes, codec::LOG_MAGIC) {
        read_binary_log(path, &bytes)
    } else {
        read_json_log(&bytes)
    }
}

fn read_binary_log(path: &Path, bytes: &[u8]) -> Result<Vec<LogRecord>> {
    let mut r = codec::Reader::new(bytes);
    codec::check_file_header(&mut r, codec::LOG_MAGIC)
        .map_err(|e| Error::Recovery(format!("command log header: {e}")))?;
    let mut out = Vec::new();
    loop {
        match codec::read_frame(&mut r) {
            FrameRead::Frame(payload) => {
                let mut pr = codec::Reader::new(payload);
                let record = LogRecord::decode_binary(&mut pr).map_err(|e| {
                    Error::Recovery(format!(
                        "command log: undecodable record in checksum-valid frame \
                         (record {}): {e}",
                        out.len()
                    ))
                })?;
                out.push(record);
            }
            FrameRead::Eof => break,
            FrameRead::Torn { offset } => {
                fault::note("log-torn-tail");
                sstore_common::slog!(
                    Warn;
                    "{}: dropping torn trailing frame at byte {offset} \
                     (incomplete write at crash); {} intact records replayed",
                    path.display(),
                    out.len()
                );
                break;
            }
            FrameRead::Corrupt { offset, detail } => {
                return Err(Error::Recovery(format!(
                    "command log corrupted at byte {offset}: {detail}; \
                     {} records before it are intact — replay stopped rather \
                     than silently dropping the suffix",
                    out.len()
                )));
            }
        }
    }
    Ok(out)
}

fn read_json_log(bytes: &[u8]) -> Result<Vec<LogRecord>> {
    let text = String::from_utf8_lossy(bytes);
    let mut out = Vec::new();
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str::<LogRecord>(line) {
            Ok(r) => out.push(r),
            // A torn tail is expected after a crash; anything before it
            // was fsynced and must parse. (The legacy format cannot
            // distinguish torn from corrupt — one reason it was replaced.)
            Err(_) => break,
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sstore_common::Value;

    fn tempdir(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("sstore-log-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).unwrap();
        p
    }

    fn batch_record(id: u64) -> LogRecord {
        LogRecord::BorderBatch {
            batch: BatchId::new(id),
            proc: "sp1".into(),
            rows: vec![vec![Value::Int(id as i64)].into()],
            ts: id as i64 * 10,
        }
    }

    fn json_config(dir: &Path) -> LogConfig {
        LogConfig::new(dir).with_format(DurabilityFormat::Json)
    }

    #[test]
    fn append_and_read_round_trip_both_formats() {
        for (tag, format) in [
            ("rt-bin", DurabilityFormat::Binary),
            ("rt-json", DurabilityFormat::Json),
        ] {
            let dir = tempdir(tag);
            let cfg = LogConfig::new(&dir).with_format(format);
            let mut log = CommandLog::open(cfg.clone()).unwrap();
            for i in 1..=3 {
                let synced = log.append(&batch_record(i)).unwrap();
                assert!(synced); // group_commit_n = 1
            }
            log.append(&LogRecord::Ack {
                batch: BatchId::new(1),
            })
            .unwrap();
            drop(log);
            assert_eq!(sniff_format(&cfg.log_path()).unwrap(), Some(format));
            let records = read_log(&cfg.log_path()).unwrap();
            assert_eq!(records.len(), 4);
            assert_eq!(records[0], batch_record(1));
            assert!(matches!(records[3], LogRecord::Ack { .. }));
            std::fs::remove_dir_all(dir).ok();
        }
    }

    #[test]
    fn binary_records_round_trip_all_value_types() {
        let record = LogRecord::Invocation {
            batch: BatchId::new(u64::MAX),
            proc: String::new(),
            rows: vec![
                Row::new(vec![
                    Value::Null,
                    Value::Int(i64::MIN),
                    Value::Float(-0.0),
                    Value::Text(String::new()),
                    Value::Bool(true),
                    Value::Timestamp(-1),
                ]),
                Row::new(vec![]),
            ],
            ts: i64::MIN,
        };
        let mut buf = Vec::new();
        record.encode_binary(&mut buf);
        let back = LogRecord::decode_binary(&mut codec::Reader::new(&buf)).unwrap();
        assert_eq!(back, record);
    }

    #[test]
    fn group_commit_defers_syncs_and_batches_writes() {
        let dir = tempdir("gc");
        let cfg = LogConfig::with_group_commit(&dir, 3);
        let mut log = CommandLog::open(cfg.clone()).unwrap();
        assert!(!log.append(&batch_record(1)).unwrap());
        // Nothing reached the file yet: the group is buffered in memory.
        assert_eq!(std::fs::metadata(cfg.log_path()).unwrap().len(), 0);
        assert!(!log.append(&batch_record(2)).unwrap());
        assert!(log.append(&batch_record(3)).unwrap());
        assert_eq!(log.syncs(), 1);
        // The whole group (header + 3 frames) landed in one write.
        let after_group = std::fs::metadata(cfg.log_path()).unwrap().len();
        assert_eq!(after_group, log.bytes_written());
        log.append(&batch_record(4)).unwrap();
        log.sync().unwrap();
        assert_eq!(log.syncs(), 2);
        // Unsynced-empty sync is a no-op.
        log.sync().unwrap();
        assert_eq!(log.syncs(), 2);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn torn_tail_tolerated_binary() {
        let dir = tempdir("torn-bin");
        let cfg = LogConfig::new(&dir);
        let mut log = CommandLog::open(cfg.clone()).unwrap();
        log.append(&batch_record(1)).unwrap();
        log.append(&batch_record(2)).unwrap();
        drop(log);
        // Simulate a torn write: a frame that never finished.
        let mut torn = Vec::new();
        let f = codec::begin_frame(&mut torn);
        batch_record(3).encode_binary(&mut torn);
        codec::end_frame(&mut torn, f);
        let mut file = OpenOptions::new()
            .append(true)
            .open(cfg.log_path())
            .unwrap();
        file.write_all(&torn[..torn.len() - 2]).unwrap();
        drop(file);
        let records = read_log(&cfg.log_path()).unwrap();
        assert_eq!(records.len(), 2);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn torn_tail_tolerated_json() {
        let dir = tempdir("torn-json");
        let cfg = json_config(&dir);
        let mut log = CommandLog::open(cfg.clone()).unwrap();
        log.append(&batch_record(1)).unwrap();
        log.append(&batch_record(2)).unwrap();
        drop(log);
        let mut f = OpenOptions::new()
            .append(true)
            .open(cfg.log_path())
            .unwrap();
        f.write_all(b"{\"BorderBatch\":{\"batch\":3,").unwrap();
        drop(f);
        let records = read_log(&cfg.log_path()).unwrap();
        assert_eq!(records.len(), 2);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn open_trims_torn_tail_before_appending() {
        for (tag, format) in [
            ("trim-bin", DurabilityFormat::Binary),
            ("trim-json", DurabilityFormat::Json),
        ] {
            let dir = tempdir(tag);
            let cfg = LogConfig::new(&dir).with_format(format);
            {
                let mut log = CommandLog::open(cfg.clone()).unwrap();
                log.append(&batch_record(1)).unwrap();
                log.append(&batch_record(2)).unwrap();
            }
            // Crash mid-append: a torn suffix after the intact records.
            let mut file = OpenOptions::new()
                .append(true)
                .open(cfg.log_path())
                .unwrap();
            match format {
                DurabilityFormat::Binary => {
                    let mut torn = Vec::new();
                    let f = codec::begin_frame(&mut torn);
                    batch_record(3).encode_binary(&mut torn);
                    codec::end_frame(&mut torn, f);
                    file.write_all(&torn[..torn.len() - 2]).unwrap();
                }
                DurabilityFormat::Json => {
                    file.write_all(b"{\"BorderBatch\":{\"batch\":3,").unwrap();
                }
            }
            drop(file);
            // Reopen + append: the torn bytes must be trimmed first, or
            // the new record would be unreachable on the next recovery.
            {
                let mut log = CommandLog::open(cfg.clone()).unwrap();
                log.append(&batch_record(4)).unwrap();
            }
            let records = read_log(&cfg.log_path()).unwrap();
            assert_eq!(
                records,
                vec![batch_record(1), batch_record(2), batch_record(4)],
                "{tag}: post-trim log must be prefix + new record"
            );
            std::fs::remove_dir_all(dir).ok();
        }
    }

    #[test]
    fn torn_header_restarts_the_log_empty() {
        // The very first write tore inside the 8-byte file header: no
        // record was ever durable, so open() restarts the file from
        // scratch instead of appending after the partial header (which
        // would make the log permanently unreadable).
        let dir = tempdir("torn-header");
        let cfg = LogConfig::new(&dir);
        let mut partial = Vec::new();
        codec::put_file_header(&mut partial, codec::LOG_MAGIC);
        std::fs::write(cfg.log_path(), &partial[..6]).unwrap();

        let mut log = CommandLog::open(cfg.clone()).unwrap();
        assert_eq!(log.active_format(), DurabilityFormat::Binary);
        log.append(&batch_record(1)).unwrap();
        drop(log);
        assert_eq!(read_log(&cfg.log_path()).unwrap(), vec![batch_record(1)]);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn open_leaves_mid_file_json_corruption_untouched() {
        // In-place corruption of a middle JSON line is NOT a torn tail:
        // trimming there would destroy the intact, fsynced records after
        // it. open() must leave the file alone (replay keeps the legacy
        // stop-at-bad-line behavior).
        let dir = tempdir("json-midcorrupt");
        let cfg = json_config(&dir);
        {
            let mut log = CommandLog::open(cfg.clone()).unwrap();
            for i in 1..=3 {
                log.append(&batch_record(i)).unwrap();
            }
        }
        let mut bytes = std::fs::read(cfg.log_path()).unwrap();
        // Corrupt a byte inside the SECOND line, keeping its newline.
        let first_nl = bytes.iter().position(|&b| b == b'\n').unwrap();
        bytes[first_nl + 5] = b'\x01';
        std::fs::write(cfg.log_path(), &bytes).unwrap();

        let log = CommandLog::open(cfg.clone()).unwrap();
        drop(log);
        assert_eq!(
            std::fs::metadata(cfg.log_path()).unwrap().len(),
            bytes.len() as u64,
            "open() must not truncate away intact records after corruption"
        );
        assert_eq!(read_log(&cfg.log_path()).unwrap(), vec![batch_record(1)]);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn mid_log_corruption_is_a_clear_error_not_a_panic() {
        let dir = tempdir("corrupt");
        let cfg = LogConfig::new(&dir);
        let mut log = CommandLog::open(cfg.clone()).unwrap();
        for i in 1..=5 {
            log.append(&batch_record(i)).unwrap();
        }
        drop(log);
        // Flip one payload byte inside the FIRST record's frame — valid
        // frames follow it, so this must classify as corruption.
        let mut bytes = std::fs::read(cfg.log_path()).unwrap();
        let mid = codec::FILE_HEADER_LEN + codec::FRAME_HEADER_LEN + 2;
        bytes[mid] ^= 0x20;
        std::fs::write(cfg.log_path(), &bytes).unwrap();
        let err = read_log(&cfg.log_path()).unwrap_err();
        assert_eq!(err.kind(), "recovery");
        assert!(err.to_string().contains("corrupted"), "{err}");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn missing_log_reads_empty() {
        let dir = tempdir("missing");
        let records = read_log(&dir.join("nope.log")).unwrap();
        assert!(records.is_empty());
        assert_eq!(sniff_format(&dir.join("nope.log")).unwrap(), None);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn truncate_empties_log() {
        let dir = tempdir("trunc");
        let cfg = LogConfig::new(&dir);
        let mut log = CommandLog::open(cfg.clone()).unwrap();
        log.append(&batch_record(1)).unwrap();
        log.truncate().unwrap();
        log.append(&batch_record(2)).unwrap();
        drop(log);
        let records = read_log(&cfg.log_path()).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0], batch_record(2));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn open_adopts_existing_format_until_truncate() {
        let dir = tempdir("adopt");
        // A legacy JSON log left by a pre-binary engine...
        {
            let mut log = CommandLog::open(json_config(&dir)).unwrap();
            log.append(&batch_record(1)).unwrap();
        }
        // ...opened by a binary-configured engine: appends stay JSON so
        // the file remains self-consistent.
        let cfg = LogConfig::new(&dir); // binary default
        let mut log = CommandLog::open(cfg.clone()).unwrap();
        assert_eq!(log.active_format(), DurabilityFormat::Json);
        log.append(&batch_record(2)).unwrap();
        assert_eq!(
            sniff_format(&cfg.log_path()).unwrap(),
            Some(DurabilityFormat::Json)
        );
        assert_eq!(read_log(&cfg.log_path()).unwrap().len(), 2);
        // Truncation switches the file to the configured (binary) format.
        log.truncate().unwrap();
        log.append(&batch_record(3)).unwrap();
        drop(log);
        assert_eq!(
            sniff_format(&cfg.log_path()).unwrap(),
            Some(DurabilityFormat::Binary)
        );
        assert_eq!(read_log(&cfg.log_path()).unwrap(), vec![batch_record(3)]);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn gc_drops_only_acked_covered_batches() {
        let dir = tempdir("gc-acked");
        let cfg = LogConfig::new(&dir);
        let mut log = CommandLog::open(cfg.clone()).unwrap();
        for i in 1..=4 {
            log.append(&batch_record(i)).unwrap();
        }
        // Batches 1 and 2 completed their workflows; 3 and 4 are still
        // in flight (no ack) — e.g. queued on another partition.
        for i in 1..=2 {
            log.append(&LogRecord::Ack {
                batch: BatchId::new(i),
            })
            .unwrap();
        }
        let before = std::fs::metadata(cfg.log_path()).unwrap().len();
        // A snapshot covers everything submitted so far...
        let dropped = log.gc_acked_through(BatchId::new(4)).unwrap();
        // ...but only the acked batches (and their acks) may go.
        assert_eq!(dropped, 4); // 2 batch records + 2 acks
        let after = std::fs::metadata(cfg.log_path()).unwrap().len();
        assert!(after < before, "log did not shrink: {before} -> {after}");
        let remaining = read_log(&cfg.log_path()).unwrap();
        assert_eq!(remaining, vec![batch_record(3), batch_record(4)]);
        // Idempotent: nothing more to drop.
        assert_eq!(log.gc_acked_through(BatchId::new(4)).unwrap(), 0);
        // The log keeps accepting appends after the rewrite.
        log.append(&batch_record(5)).unwrap();
        assert_eq!(read_log(&cfg.log_path()).unwrap().len(), 3);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn gc_migrates_legacy_json_logs_to_the_configured_format() {
        let dir = tempdir("gc-migrate");
        {
            let mut log = CommandLog::open(json_config(&dir)).unwrap();
            for i in 1..=3 {
                log.append(&batch_record(i)).unwrap();
            }
            log.append(&LogRecord::Ack {
                batch: BatchId::new(1),
            })
            .unwrap();
        }
        let cfg = LogConfig::new(&dir); // binary default
        let mut log = CommandLog::open(cfg.clone()).unwrap();
        assert_eq!(log.active_format(), DurabilityFormat::Json);
        let dropped = log.gc_acked_through(BatchId::new(3)).unwrap();
        assert_eq!(dropped, 2); // batch 1 + its ack
        assert_eq!(log.active_format(), DurabilityFormat::Binary);
        assert_eq!(
            sniff_format(&cfg.log_path()).unwrap(),
            Some(DurabilityFormat::Binary)
        );
        assert_eq!(
            read_log(&cfg.log_path()).unwrap(),
            vec![batch_record(2), batch_record(3)]
        );
        std::fs::remove_dir_all(dir).ok();
    }
}
