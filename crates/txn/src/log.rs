//! Command logging with group commit.
//!
//! S-Store "leverages H-Store's command logging mechanism to provide an
//! upstream backup based fault tolerance technique" (paper §2; Malviya et
//! al., ICDE 2014). We log *inputs*, not effects: each border batch (and,
//! in H-Store mode, each client invocation) is one record. Replaying the
//! log through the deterministic procedures reconstructs the state.
//!
//! Records are JSON lines. Group commit batches fsyncs: the log flushes
//! after every `group_commit_n` records (1 = sync per record).

use serde::{Deserialize, Serialize};
use sstore_common::{BatchId, Error, Result, Row};
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

/// One durable record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LogRecord {
    /// A border input batch entering a workflow (S-Store mode).
    BorderBatch {
        /// Batch id assigned at submission.
        batch: BatchId,
        /// Border procedure name.
        proc: String,
        /// The input tuples.
        rows: Vec<Row>,
        /// Logical submission time (µs) — replay pins the clock to this.
        ts: i64,
    },
    /// A direct client invocation (H-Store mode / OLTP requests). Carries
    /// its batch id so replay stamps identical `__batch` values.
    Invocation {
        /// Batch id assigned at submission.
        batch: BatchId,
        /// Procedure name.
        proc: String,
        /// Parameters-as-rows.
        rows: Vec<Row>,
        /// Logical submission time (µs).
        ts: i64,
    },
    /// The workflow for `batch` fully committed (upstream backup may
    /// discard the batch; used for log truncation and exactly-once checks).
    Ack {
        /// The completed batch.
        batch: BatchId,
    },
}

/// Automatic snapshot-then-truncate retention policy.
///
/// When configured (see `PeConfig::retention`), the partition writes a
/// snapshot and truncates the command log after every `every_n_commits`
/// committed TEs, at the next quiescent point (the scheduler queue is
/// empty between client calls, so the snapshot captures a workflow-
/// consistent state). Replay-after-truncate recovers from the snapshot
/// plus whatever the log accumulated since.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogRetention {
    /// Snapshot + truncate after this many committed TEs (min 1).
    pub every_n_commits: u64,
}

impl LogRetention {
    /// Policy firing every `n` commits (clamped to at least 1).
    pub fn every_n_commits(n: u64) -> Self {
        LogRetention {
            every_n_commits: n.max(1),
        }
    }
}

/// Durability settings.
#[derive(Debug, Clone)]
pub struct LogConfig {
    /// Directory holding `command.log` and snapshots.
    pub dir: PathBuf,
    /// fsync after this many records (group commit). 1 = every record.
    pub group_commit_n: usize,
}

impl LogConfig {
    /// Config with per-record sync.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        LogConfig {
            dir: dir.into(),
            group_commit_n: 1,
        }
    }

    /// Config with group commit every `n` records.
    pub fn with_group_commit(dir: impl Into<PathBuf>, n: usize) -> Self {
        LogConfig {
            dir: dir.into(),
            group_commit_n: n.max(1),
        }
    }

    /// Path of the command log file.
    pub fn log_path(&self) -> PathBuf {
        self.dir.join("command.log")
    }

    /// Path of the snapshot file.
    pub fn snapshot_path(&self) -> PathBuf {
        self.dir.join("snapshot.json")
    }
}

/// Append-only command log writer.
#[derive(Debug)]
pub struct CommandLog {
    writer: BufWriter<File>,
    config: LogConfig,
    unsynced: usize,
    records_written: u64,
    syncs: u64,
}

impl CommandLog {
    /// Open (creating or appending to) the log in `config.dir`.
    pub fn open(config: LogConfig) -> Result<CommandLog> {
        std::fs::create_dir_all(&config.dir)?;
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(config.log_path())?;
        Ok(CommandLog {
            writer: BufWriter::new(file),
            config,
            unsynced: 0,
            records_written: 0,
            syncs: 0,
        })
    }

    /// Append a record; flushes per group-commit policy. Returns true if
    /// this append triggered an fsync.
    pub fn append(&mut self, record: &LogRecord) -> Result<bool> {
        let line =
            serde_json::to_string(record).map_err(|e| Error::Io(format!("log encode: {e}")))?;
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.records_written += 1;
        self.unsynced += 1;
        if self.unsynced >= self.config.group_commit_n {
            self.sync()?;
            return Ok(true);
        }
        Ok(false)
    }

    /// Force an fsync of buffered records.
    pub fn sync(&mut self) -> Result<()> {
        if self.unsynced == 0 {
            return Ok(());
        }
        self.writer.flush()?;
        self.writer.get_ref().sync_data()?;
        self.unsynced = 0;
        self.syncs += 1;
        Ok(())
    }

    /// Records appended over this log's lifetime.
    pub fn records_written(&self) -> u64 {
        self.records_written
    }

    /// fsyncs issued.
    pub fn syncs(&self) -> u64 {
        self.syncs
    }

    /// Truncate the log (after a snapshot covers everything in it).
    /// Consumes buffered state; the log is reopened empty.
    pub fn truncate(&mut self) -> Result<()> {
        self.writer.flush()?;
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(self.config.log_path())?;
        file.sync_all()?;
        self.writer = BufWriter::new(
            OpenOptions::new()
                .append(true)
                .open(self.config.log_path())?,
        );
        self.unsynced = 0;
        Ok(())
    }
}

/// Read every record in a command log, in append order. Tolerates a
/// truncated final line (torn write at crash).
pub fn read_log(path: &Path) -> Result<Vec<LogRecord>> {
    let file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(vec![]),
        Err(e) => return Err(e.into()),
    };
    let reader = BufReader::new(file);
    let mut out = Vec::new();
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str::<LogRecord>(&line) {
            Ok(r) => out.push(r),
            // A torn tail is expected after a crash; anything before it
            // was fsynced and must parse.
            Err(_) => break,
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sstore_common::Value;

    fn tempdir(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("sstore-log-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).unwrap();
        p
    }

    fn batch_record(id: u64) -> LogRecord {
        LogRecord::BorderBatch {
            batch: BatchId::new(id),
            proc: "sp1".into(),
            rows: vec![vec![Value::Int(id as i64)].into()],
            ts: id as i64 * 10,
        }
    }

    #[test]
    fn append_and_read_round_trip() {
        let dir = tempdir("rt");
        let mut log = CommandLog::open(LogConfig::new(&dir)).unwrap();
        for i in 1..=3 {
            let synced = log.append(&batch_record(i)).unwrap();
            assert!(synced); // group_commit_n = 1
        }
        log.append(&LogRecord::Ack {
            batch: BatchId::new(1),
        })
        .unwrap();
        drop(log);
        let records = read_log(&LogConfig::new(&dir).log_path()).unwrap();
        assert_eq!(records.len(), 4);
        assert_eq!(records[0], batch_record(1));
        assert!(matches!(records[3], LogRecord::Ack { .. }));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn group_commit_defers_syncs() {
        let dir = tempdir("gc");
        let mut log = CommandLog::open(LogConfig::with_group_commit(&dir, 3)).unwrap();
        assert!(!log.append(&batch_record(1)).unwrap());
        assert!(!log.append(&batch_record(2)).unwrap());
        assert!(log.append(&batch_record(3)).unwrap());
        assert_eq!(log.syncs(), 1);
        log.append(&batch_record(4)).unwrap();
        log.sync().unwrap();
        assert_eq!(log.syncs(), 2);
        // Unsynced-empty sync is a no-op.
        log.sync().unwrap();
        assert_eq!(log.syncs(), 2);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn torn_tail_tolerated() {
        let dir = tempdir("torn");
        let cfg = LogConfig::new(&dir);
        let mut log = CommandLog::open(cfg.clone()).unwrap();
        log.append(&batch_record(1)).unwrap();
        log.append(&batch_record(2)).unwrap();
        drop(log);
        // Simulate a torn write.
        let mut f = OpenOptions::new()
            .append(true)
            .open(cfg.log_path())
            .unwrap();
        f.write_all(b"{\"BorderBatch\":{\"batch\":3,").unwrap();
        drop(f);
        let records = read_log(&cfg.log_path()).unwrap();
        assert_eq!(records.len(), 2);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn missing_log_reads_empty() {
        let dir = tempdir("missing");
        let records = read_log(&dir.join("nope.log")).unwrap();
        assert!(records.is_empty());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn truncate_empties_log() {
        let dir = tempdir("trunc");
        let cfg = LogConfig::new(&dir);
        let mut log = CommandLog::open(cfg.clone()).unwrap();
        log.append(&batch_record(1)).unwrap();
        log.truncate().unwrap();
        log.append(&batch_record(2)).unwrap();
        drop(log);
        let records = read_log(&cfg.log_path()).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0], batch_record(2));
        std::fs::remove_dir_all(dir).ok();
    }
}
