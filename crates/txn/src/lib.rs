//! # sstore-txn
//!
//! S-Store's **partition engine (PE)** — the upper layer of the paper's
//! two-layer architecture (Fig. 1). It owns the execution engine and adds:
//!
//! * **stored procedures** ([`procedure`]): parameterized control code
//!   (Rust closures standing in for H-Store's Java) around prepared SQL;
//! * the **stream-oriented transaction model** ([`partition`]): a
//!   transaction execution (TE) is `(procedure, batch)`; schedules preserve
//!   per-procedure TE order and per-batch workflow order, and run whole
//!   workflows serially when procedures share writable tables (paper §2);
//! * **workflows & PE triggers** ([`workflow`]): committed TEs whose
//!   output streams received tuples schedule the downstream procedure
//!   inside the PE — no client polling, no client↔PE round trips;
//! * **command logging + snapshots + upstream-backup recovery**
//!   ([`log`], [`recovery`]): border inputs are logged with group commit;
//!   recovery restores the latest snapshot and replays un-snapshotted
//!   batches through the same workflow code;
//! * an **H-Store compatibility mode**: PE triggers off, client-driven
//!   invocations only — the paper's baseline, which both loses the ordering
//!   guarantees (§3.1's anomalies) and pays extra round trips;
//! * **2PC participant hooks** ([`partition`]): a fragment of a
//!   multi-sited transaction executes at *prepare* with its undo log held
//!   open, commits or rolls back on the coordinator's decision, and
//!   leaves `PrepareMarker`/`Decision` records so recovery replays a
//!   consistent global prefix (in-doubt fragments presume abort);
//! * **cross-partition workflow edges** ([`workflow`]): streams declared
//!   remote route their emissions through the cluster runtime to the
//!   partition owning the downstream key, logged and deduplicated on
//!   arrival for ordered, exactly-once dataflow.

pub mod log;
pub mod partition;
pub mod procedure;
pub mod recovery;
pub mod stats;
pub mod transaction;
pub mod workflow;

pub use log::{LogConfig, LogRetention};
pub use partition::{ExecMode, Partition, PeConfig, RemoteForward};
pub use procedure::{ProcContext, ProcSpec};
pub use stats::PeStats;
pub use transaction::{Invocation, InvocationOrigin, TxnOutcome, TxnStatus};
pub use workflow::{CrossEdge, Workflow};
