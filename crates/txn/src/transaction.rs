//! Transaction-execution types.

use sstore_common::{Batch, ProcId, TxnId};
use sstore_sql::exec::QueryResult;

/// Why a TE was scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvocationOrigin {
    /// Submitted by a client (border procedure input, or any invocation in
    /// H-Store mode).
    Client,
    /// Scheduled by a PE trigger after the upstream TE committed.
    PeTrigger,
    /// Replayed from the command log during recovery.
    Recovery,
}

/// One pending transaction execution: a stored procedure plus the input
/// batch that defines it (paper §2: "An S-Store transaction is defined by
/// two things: a stored procedure definition and a batch of input tuples").
#[derive(Debug, Clone)]
pub struct Invocation {
    /// The procedure to run.
    pub proc: ProcId,
    /// Its input batch.
    pub batch: Batch,
    /// Provenance (client, PE trigger, recovery).
    pub origin: InvocationOrigin,
}

/// Terminal state of a TE.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnStatus {
    /// Input batch completely processed; effects durable.
    Committed,
    /// Rolled back by an explicit application abort.
    Aborted,
    /// Rolled back by an engine error.
    Failed,
}

/// The result of running one TE.
#[derive(Debug, Clone)]
pub struct TxnOutcome {
    /// Assigned transaction id (monotone; equals commit order).
    pub txn: TxnId,
    /// The procedure that ran.
    pub proc: ProcId,
    /// The input batch id.
    pub batch: sstore_common::BatchId,
    /// Terminal status.
    pub status: TxnStatus,
    /// Response rows for the client (OLTP-style invocations), if the
    /// procedure produced any via [`crate::procedure::ProcContext::respond`].
    pub response: Option<QueryResult>,
    /// Error message for non-committed outcomes.
    pub error: Option<String>,
}

impl TxnOutcome {
    /// True when the TE committed.
    pub fn is_committed(&self) -> bool {
        self.status == TxnStatus::Committed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sstore_common::BatchId;

    #[test]
    fn outcome_helpers() {
        let o = TxnOutcome {
            txn: TxnId::new(1),
            proc: ProcId::new(0),
            batch: BatchId::new(1),
            status: TxnStatus::Committed,
            response: None,
            error: None,
        };
        assert!(o.is_committed());
        let a = TxnOutcome {
            status: TxnStatus::Aborted,
            ..o
        };
        assert!(!a.is_committed());
    }
}
