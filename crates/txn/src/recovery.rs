//! Upstream-backup recovery.
//!
//! H-Store recovers from a snapshot plus a command log of inputs; S-Store
//! inherits this and extends it to workflows: because border inputs are the
//! *only* nondeterminism, replaying the logged batches through the same
//! deterministic procedures regenerates every interior stream, window, and
//! table exactly (paper §2, "upstream backup based fault tolerance").
//!
//! Procedures are Rust closures and therefore not serialized; like H-Store,
//! recovery **redeploys** the schema and procedures (the `setup` closure —
//! it must match the pre-crash deployment) and then restores data:
//!
//! 1. run `setup` on a fresh partition (DDL + procedure registration);
//! 2. load the latest snapshot, if any (replaces the database wholesale —
//!    valid because deterministic setup yields identical catalogs);
//! 3. replay log records with batch ids beyond the snapshot, pinning the
//!    logical clock to each record's timestamp.

use crate::log::{read_log, LogConfig};
use crate::partition::{Partition, PeConfig};
use sstore_common::Result;
use sstore_storage::snapshot::Snapshot;

/// Rebuild a partition from its durable state.
///
/// `setup` must recreate exactly the DDL, indexes, EE triggers, and
/// procedure registrations that the crashed partition had (deterministic
/// redeployment, as in H-Store).
pub fn recover(
    config: PeConfig,
    setup: impl FnOnce(&mut Partition) -> Result<()>,
) -> Result<Partition> {
    let log_cfg: LogConfig = config
        .log
        .clone()
        .ok_or_else(|| sstore_common::Error::Recovery("recovery requires a log dir".into()))?;

    let mut p = Partition::new(config)?;
    setup(&mut p)?;

    // Snapshot (optional).
    let snap_path = log_cfg.snapshot_path();
    let snapshot = if snap_path.exists() {
        Some(Snapshot::read_from(&snap_path)?)
    } else {
        None
    };
    p.restore_for_recovery(snapshot)?;

    // Replay the tail of the log.
    for record in read_log(&log_cfg.log_path())? {
        p.replay_record(record)?;
    }
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::LogConfig;
    use crate::procedure::ProcSpec;
    use sstore_common::Value;
    use std::path::PathBuf;

    fn tempdir(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("sstore-rec-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).unwrap();
        p
    }

    fn setup(p: &mut Partition) -> Result<()> {
        p.ddl("CREATE STREAM nums (v INT)")?;
        p.ddl("CREATE STREAM doubled (v INT)")?;
        p.ddl("CREATE TABLE sums (k INT NOT NULL, total INT NOT NULL, PRIMARY KEY (k))")?;
        // Seed through a border "init" procedure so it's in the log? No —
        // seed rows must come from setup DDL-equivalent deterministic code,
        // which recovery reruns identically.
        let mut sc = sstore_engine::TxnScratch::new(None, sstore_common::BatchId::new(0));
        p.engine_mut()
            .execute_sql("INSERT INTO sums VALUES (1, 0)", &[], &mut sc, 0)
            .unwrap();
        p.register(
            ProcSpec::new("double", |ctx| {
                for row in ctx.input().rows.clone() {
                    let v = row[0].as_int()?;
                    ctx.emit(vec![Value::Int(v * 2)])?;
                }
                Ok(())
            })
            .consumes("nums")
            .emits("doubled"),
        )?;
        p.register(
            ProcSpec::new("sum", |ctx| {
                let mut s = 0;
                for row in &ctx.input().rows {
                    s += row[0].as_int()?;
                }
                ctx.exec("add", &[Value::Int(s)])?;
                Ok(())
            })
            .consumes("doubled")
            .stmt("add", "UPDATE sums SET total = total + ? WHERE k = 1"),
        )?;
        Ok(())
    }

    fn config(dir: &PathBuf) -> PeConfig {
        PeConfig {
            log: Some(LogConfig::new(dir)),
            ..PeConfig::default()
        }
    }

    fn total(p: &mut Partition) -> i64 {
        p.query("SELECT total FROM sums WHERE k = 1", &[])
            .unwrap()
            .scalar_i64()
            .unwrap()
    }

    #[test]
    fn replay_from_log_only() {
        let dir = tempdir("logonly");
        {
            let mut p = Partition::new(config(&dir)).unwrap();
            setup(&mut p).unwrap();
            for i in 1..=5 {
                p.advance_clock(10);
                p.submit_batch("double", vec![vec![Value::Int(i)]]).unwrap();
            }
            assert_eq!(total(&mut p), 30); // 2*(1+..+5)
                                           // Crash: partition dropped without snapshot.
        }
        let mut r = recover(config(&dir), setup).unwrap();
        assert_eq!(total(&mut r), 30);
        // The recovered clock resumed past the last record.
        assert!(r.clock().now() >= 50);
        // And the system keeps working, with fresh batch ids.
        r.submit_batch("double", vec![vec![Value::Int(10)]])
            .unwrap();
        assert_eq!(total(&mut r), 50);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn replay_from_snapshot_plus_log() {
        let dir = tempdir("snaplog");
        {
            let mut p = Partition::new(config(&dir)).unwrap();
            setup(&mut p).unwrap();
            for i in 1..=3 {
                p.submit_batch("double", vec![vec![Value::Int(i)]]).unwrap();
            }
            p.snapshot().unwrap(); // covers batches 1-3, truncates log
            for i in 4..=5 {
                p.submit_batch("double", vec![vec![Value::Int(i)]]).unwrap();
            }
            assert_eq!(total(&mut p), 30);
        }
        let mut r = recover(config(&dir), setup).unwrap();
        assert_eq!(total(&mut r), 30);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn recovery_is_idempotent() {
        let dir = tempdir("idem");
        {
            let mut p = Partition::new(config(&dir)).unwrap();
            setup(&mut p).unwrap();
            p.submit_batch("double", vec![vec![Value::Int(7)]]).unwrap();
        }
        let mut r1 = recover(config(&dir), setup).unwrap();
        let v1 = total(&mut r1);
        drop(r1);
        let mut r2 = recover(config(&dir), setup).unwrap();
        assert_eq!(total(&mut r2), v1);
        assert_eq!(v1, 14);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn recovery_without_log_dir_errors() {
        let err = recover(PeConfig::default(), |_| Ok(())).unwrap_err();
        assert_eq!(err.kind(), "recovery");
    }

    #[test]
    fn hstore_invocations_replay_too() {
        let dir = tempdir("hstore");
        let cfg = || PeConfig {
            log: Some(LogConfig::new(&dir)),
            ..PeConfig::hstore()
        };
        let hsetup = |p: &mut Partition| -> Result<()> {
            p.ddl("CREATE TABLE acc (k INT NOT NULL, n INT NOT NULL, PRIMARY KEY (k))")?;
            let mut sc = sstore_engine::TxnScratch::new(None, sstore_common::BatchId::new(0));
            p.engine_mut()
                .execute_sql("INSERT INTO acc VALUES (1, 0)", &[], &mut sc, 0)
                .unwrap();
            p.register(
                ProcSpec::new("bump", |ctx| {
                    let d = ctx.input().rows[0][0].clone();
                    ctx.exec("u", &[d])?;
                    Ok(())
                })
                .stmt("u", "UPDATE acc SET n = n + ? WHERE k = 1"),
            )?;
            Ok(())
        };
        {
            let mut p = Partition::new(cfg()).unwrap();
            hsetup(&mut p).unwrap();
            for i in 1..=4 {
                p.invoke("bump", vec![vec![Value::Int(i)]]).unwrap();
            }
        }
        let mut r = recover(cfg(), hsetup).unwrap();
        assert_eq!(
            r.query("SELECT n FROM acc WHERE k = 1", &[])
                .unwrap()
                .scalar_i64()
                .unwrap(),
            10
        );
        std::fs::remove_dir_all(dir).ok();
    }
}
