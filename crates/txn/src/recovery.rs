//! Upstream-backup recovery.
//!
//! H-Store recovers from a snapshot plus a command log of inputs; S-Store
//! inherits this and extends it to workflows: because border inputs are the
//! *only* nondeterminism, replaying the logged batches through the same
//! deterministic procedures regenerates every interior stream, window, and
//! table exactly (paper §2, "upstream backup based fault tolerance").
//!
//! Procedures are Rust closures and therefore not serialized; like H-Store,
//! recovery **redeploys** the schema and procedures (the `setup` closure —
//! it must match the pre-crash deployment) and then restores data:
//!
//! 1. run `setup` on a fresh partition (DDL + procedure registration);
//! 2. load the latest snapshot, if any (replaces the database wholesale —
//!    valid because deterministic setup yields identical catalogs);
//! 3. replay log records with batch ids beyond the snapshot, pinning the
//!    logical clock to each record's timestamp.

use crate::log::{read_log, LogConfig, LogRecord};
use crate::partition::{Partition, PeConfig};
use sstore_common::{BatchId, Result};
use sstore_storage::snapshot::Snapshot;
use std::collections::HashMap;

/// Rebuild a partition from its durable state.
///
/// `setup` must recreate exactly the DDL, indexes, EE triggers, and
/// procedure registrations that the crashed partition had (deterministic
/// redeployment, as in H-Store).
///
/// Prepared-but-undecided 2PC fragments found in the log are aborted
/// deterministically (presumed abort) — use
/// [`recover_with_decisions`] to consult a coordinator decision log
/// instead.
pub fn recover(
    config: PeConfig,
    setup: impl FnOnce(&mut Partition) -> Result<()>,
) -> Result<Partition> {
    recover_with_decisions(config, setup, &HashMap::new())
}

/// [`recover`], resolving in-doubt 2PC fragments against a coordinator's
/// decision log (`gtid → commit?`).
///
/// Outcome resolution for each `PrepareMarker` in the log, in priority
/// order: a local `Decision` record (the participant learned the outcome
/// before the crash); the coordinator's decision log (the coordinator
/// decided but this participant crashed first); otherwise **presumed
/// abort** — the coordinator never logged a commit, so no participant can
/// have committed. Outcomes resolved from the coordinator (or presumed)
/// are appended as fresh local `Decision` records, making the next
/// recovery self-contained.
pub fn recover_with_decisions(
    config: PeConfig,
    setup: impl FnOnce(&mut Partition) -> Result<()>,
    coordinator: &HashMap<u64, bool>,
) -> Result<Partition> {
    let log_cfg: LogConfig = config
        .log
        .clone()
        .ok_or_else(|| sstore_common::Error::Recovery("recovery requires a log dir".into()))?;

    let mut p = Partition::new(config)?;
    setup(&mut p)?;

    // Snapshot (optional). The engine writes `snapshot.dat` (binary or
    // JSON content, sniffed by magic) plus any chained delta images
    // (`snapshot.d1.dat`, …); pre-binary durability dirs left a
    // `snapshot.json`, which is read transparently and superseded by the
    // next snapshot write. Deltas only ever chain onto `snapshot.dat`,
    // so the legacy path never walks a chain.
    let snap_path = log_cfg.snapshot_path();
    let legacy_path = log_cfg.legacy_snapshot_path();
    if snap_path.exists() {
        let (snapshot, chain_len) =
            Snapshot::read_chain(&snap_path, |k| log_cfg.delta_snapshot_path(k))?;
        p.restore_for_recovery(Some(snapshot), chain_len, true)?;
    } else if legacy_path.exists() {
        p.restore_for_recovery(Some(Snapshot::read_from(&legacy_path)?), 0, false)?;
    }

    // Replay the tail of the log.
    let replay_start = std::time::Instant::now();
    let records = read_log(&log_cfg.log_path())?;
    let acked: std::collections::HashSet<u64> = records
        .iter()
        .filter_map(|r| match r {
            LogRecord::Ack { batch } => Some(batch.raw()),
            _ => None,
        })
        .collect();
    let local_decisions: HashMap<u64, bool> = records
        .iter()
        .filter_map(|r| match r {
            LogRecord::Decision { gtid, commit, .. } => Some((*gtid, *commit)),
            _ => None,
        })
        .collect();
    let unacked: Vec<_> = records
        .iter()
        .filter(|r| r.is_input())
        .map(|r| r.batch())
        .filter(|b| !acked.contains(&b.raw()))
        .collect();
    let mut newly_decided: Vec<(u64, BatchId, bool)> = Vec::new();
    for record in records {
        // Kill point: a fault mid-replay (armed Panic) must surface as a
        // clean per-partition recovery error — the cluster's parallel
        // recovery catches the unwound thread — never a hang or a
        // half-replayed partition handed to a worker.
        sstore_common::fault::kill_point("recovery-mid-replay");
        // An emitted-envelope record of a fully acked batch: the edge
        // completed before the crash, nothing to re-forward.
        if let LogRecord::ForwardOut { batch, .. } = &record {
            if acked.contains(&batch.raw()) {
                continue;
            }
        }
        let decision = if let LogRecord::PrepareMarker { gtid, batch, .. } = &record {
            match local_decisions.get(gtid) {
                Some(&d) => Some(d),
                None => {
                    // In doubt locally: consult the coordinator; silence
                    // there means the commit point was never reached.
                    let d = coordinator.get(gtid).copied();
                    newly_decided.push((*gtid, *batch, d.unwrap_or(false)));
                    d
                }
            }
        } else {
            None
        };
        p.replay_record(record, decision)?;
    }
    p.append_decisions(&newly_decided)?;
    // Replay completed every logged workflow (and snapshot-covered ones
    // completed before the crash), but replay suppresses logging — so
    // batches whose Ack was lost to the torn tail get a fresh Ack now,
    // letting retention GC retire their input records. Batches still
    // holding references (an un-acked cross-partition forward the cluster
    // runtime will re-send) stay open.
    let unacked: Vec<_> = unacked
        .into_iter()
        .filter(|b| !p.has_pending_refs(*b))
        .collect();
    p.ack_batches(&unacked)?;
    sstore_common::obs::record_phase_ns(
        "recovery.log_replay",
        replay_start.elapsed().as_nanos() as u64,
    );
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::{read_log, LogConfig};
    use crate::procedure::ProcSpec;
    use sstore_common::Value;
    use std::path::PathBuf;

    fn tempdir(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("sstore-rec-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).unwrap();
        p
    }

    fn setup(p: &mut Partition) -> Result<()> {
        p.ddl("CREATE STREAM nums (v INT)")?;
        p.ddl("CREATE STREAM doubled (v INT)")?;
        p.ddl("CREATE TABLE sums (k INT NOT NULL, total INT NOT NULL, PRIMARY KEY (k))")?;
        // Seed through a border "init" procedure so it's in the log? No —
        // seed rows must come from setup DDL-equivalent deterministic code,
        // which recovery reruns identically.
        let mut sc = sstore_engine::TxnScratch::new(None, sstore_common::BatchId::new(0));
        p.engine_mut()
            .execute_sql("INSERT INTO sums VALUES (1, 0)", &[], &mut sc, 0)
            .unwrap();
        p.register(
            ProcSpec::new("double", |ctx| {
                for row in ctx.input().rows.clone() {
                    let v = row[0].as_int()?;
                    ctx.emit(vec![Value::Int(v * 2)])?;
                }
                Ok(())
            })
            .consumes("nums")
            .emits("doubled"),
        )?;
        p.register(
            ProcSpec::new("sum", |ctx| {
                let mut s = 0;
                for row in &ctx.input().rows {
                    s += row[0].as_int()?;
                }
                ctx.exec("add", &[Value::Int(s)])?;
                Ok(())
            })
            .consumes("doubled")
            .stmt("add", "UPDATE sums SET total = total + ? WHERE k = 1"),
        )?;
        Ok(())
    }

    fn config(dir: &PathBuf) -> PeConfig {
        PeConfig {
            log: Some(LogConfig::new(dir)),
            ..PeConfig::default()
        }
    }

    fn total(p: &mut Partition) -> i64 {
        p.query("SELECT total FROM sums WHERE k = 1", &[])
            .unwrap()
            .scalar_i64()
            .unwrap()
    }

    #[test]
    fn replay_from_log_only() {
        let dir = tempdir("logonly");
        {
            let mut p = Partition::new(config(&dir)).unwrap();
            setup(&mut p).unwrap();
            for i in 1..=5 {
                p.advance_clock(10);
                p.submit_batch("double", vec![vec![Value::Int(i)]]).unwrap();
            }
            assert_eq!(total(&mut p), 30); // 2*(1+..+5)
                                           // Crash: partition dropped without snapshot.
        }
        let mut r = recover(config(&dir), setup).unwrap();
        assert_eq!(total(&mut r), 30);
        // The recovered clock resumed past the last record.
        assert!(r.clock().now() >= 50);
        // And the system keeps working, with fresh batch ids.
        r.submit_batch("double", vec![vec![Value::Int(10)]])
            .unwrap();
        assert_eq!(total(&mut r), 50);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn replay_from_snapshot_plus_log() {
        let dir = tempdir("snaplog");
        {
            let mut p = Partition::new(config(&dir)).unwrap();
            setup(&mut p).unwrap();
            for i in 1..=3 {
                p.submit_batch("double", vec![vec![Value::Int(i)]]).unwrap();
            }
            p.snapshot().unwrap(); // covers batches 1-3, truncates log
            for i in 4..=5 {
                p.submit_batch("double", vec![vec![Value::Int(i)]]).unwrap();
            }
            assert_eq!(total(&mut p), 30);
        }
        let mut r = recover(config(&dir), setup).unwrap();
        assert_eq!(total(&mut r), 30);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn recovery_is_idempotent() {
        let dir = tempdir("idem");
        {
            let mut p = Partition::new(config(&dir)).unwrap();
            setup(&mut p).unwrap();
            p.submit_batch("double", vec![vec![Value::Int(7)]]).unwrap();
        }
        let mut r1 = recover(config(&dir), setup).unwrap();
        let v1 = total(&mut r1);
        drop(r1);
        let mut r2 = recover(config(&dir), setup).unwrap();
        assert_eq!(total(&mut r2), v1);
        assert_eq!(v1, 14);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn recovery_without_log_dir_errors() {
        let err = recover(PeConfig::default(), |_| Ok(())).unwrap_err();
        assert_eq!(err.kind(), "recovery");
    }

    /// A durability dir written by the pre-binary engine — JSON-lines
    /// command log plus a `snapshot.json` envelope — recovers through the
    /// back-compat path under the default (binary) configuration, and the
    /// next snapshot migrates the dir to the binary layout.
    #[test]
    fn pre_binary_json_dir_recovers_through_back_compat() {
        use crate::log::sniff_format;
        use sstore_common::DurabilityFormat;

        let dir = tempdir("backcompat");
        // Produce the legacy layout: run with the JSON format, snapshot
        // mid-stream, then move the snapshot to its pre-binary name.
        let json_config = PeConfig {
            log: Some(LogConfig::new(&dir).with_format(DurabilityFormat::Json)),
            ..PeConfig::default()
        };
        {
            let mut p = Partition::new(json_config).unwrap();
            setup(&mut p).unwrap();
            for i in 1..=3 {
                p.submit_batch("double", vec![vec![Value::Int(i)]]).unwrap();
            }
            p.snapshot().unwrap();
            for i in 4..=5 {
                p.submit_batch("double", vec![vec![Value::Int(i)]]).unwrap();
            }
            assert_eq!(total(&mut p), 30);
        }
        let cfg = LogConfig::new(&dir);
        std::fs::rename(cfg.snapshot_path(), cfg.legacy_snapshot_path()).unwrap();
        assert_eq!(
            sniff_format(&cfg.log_path()).unwrap(),
            Some(DurabilityFormat::Json)
        );

        // Recover with the binary-default config: JSON log + legacy
        // snapshot replay transparently.
        let mut r = recover(config(&dir), setup).unwrap();
        assert_eq!(total(&mut r), 30);
        // The partition keeps working; its next snapshot migrates the dir
        // to the binary layout and retires the legacy snapshot name.
        r.submit_batch("double", vec![vec![Value::Int(10)]])
            .unwrap();
        r.snapshot().unwrap();
        assert!(cfg.snapshot_path().exists());
        assert!(!cfg.legacy_snapshot_path().exists());
        assert_eq!(
            sniff_format(&cfg.log_path()).unwrap(),
            Some(DurabilityFormat::Binary)
        );
        drop(r);
        let mut r2 = recover(config(&dir), setup).unwrap();
        assert_eq!(total(&mut r2), 50);
        std::fs::remove_dir_all(dir).ok();
    }

    /// A bit flip mid-log fails recovery with a clear recovery error —
    /// no panic, no silent truncation of the suffix.
    #[test]
    fn corrupted_log_fails_recovery_cleanly() {
        let dir = tempdir("corrupt");
        {
            let mut p = Partition::new(config(&dir)).unwrap();
            setup(&mut p).unwrap();
            for i in 1..=6 {
                p.submit_batch("double", vec![vec![Value::Int(i)]]).unwrap();
            }
        }
        let log_path = LogConfig::new(&dir).log_path();
        let mut bytes = std::fs::read(&log_path).unwrap();
        // Inside the first record's frame payload: later frames are
        // intact, so this is corruption, not a torn tail.
        let mid =
            sstore_common::codec::FILE_HEADER_LEN + sstore_common::codec::FRAME_HEADER_LEN + 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&log_path, &bytes).unwrap();
        let err = recover(config(&dir), setup).unwrap_err();
        assert_eq!(err.kind(), "recovery");
        assert!(err.to_string().contains("corrupted"), "{err}");
        std::fs::remove_dir_all(dir).ok();
    }

    /// An Ack lost to the torn tail is re-appended after replay, so
    /// retention GC can still retire the batch's input record (the log
    /// drains to empty at the next snapshot instead of leaking the
    /// record forever).
    #[test]
    fn lost_ack_is_reissued_after_replay_so_gc_drains() {
        use crate::log::{read_log, LogRecord};

        let dir = tempdir("lostack");
        {
            let mut p = Partition::new(config(&dir)).unwrap();
            setup(&mut p).unwrap();
            for i in 1..=3 {
                p.submit_batch("double", vec![vec![Value::Int(i)]]).unwrap();
            }
        }
        // Tear the final Ack off the log (its batch record stays).
        let log_path = LogConfig::new(&dir).log_path();
        let records = read_log(&log_path).unwrap();
        assert!(matches!(records.last(), Some(LogRecord::Ack { .. })));
        let mut bytes = std::fs::read(&log_path).unwrap();
        // Last frame = header (8) + ack payload; recompute its size.
        let mut ack_frame = Vec::new();
        let f = sstore_common::codec::begin_frame(&mut ack_frame);
        records.last().unwrap().encode_binary(&mut ack_frame);
        sstore_common::codec::end_frame(&mut ack_frame, f);
        bytes.truncate(bytes.len() - ack_frame.len());
        std::fs::write(&log_path, &bytes).unwrap();

        let mut r = recover(config(&dir), setup).unwrap();
        assert_eq!(total(&mut r), 12);
        // The re-issued Ack lets the retention GC drain the whole log.
        r.snapshot().unwrap();
        assert!(
            read_log(&log_path).unwrap().is_empty(),
            "GC must retire the re-acked batch"
        );
        std::fs::remove_dir_all(dir).ok();
    }

    /// Full crash cycle: crash with a torn tail, recover, keep running,
    /// crash again, recover again. The torn bytes must be trimmed when
    /// the recovered partition reopens the log, or the second recovery
    /// would misread the boundary between old and new records as
    /// corruption and lose everything logged after the first crash.
    #[test]
    fn recover_after_torn_tail_then_crash_again() {
        let dir = tempdir("torncycle");
        {
            let mut p = Partition::new(config(&dir)).unwrap();
            setup(&mut p).unwrap();
            for i in 1..=3 {
                p.submit_batch("double", vec![vec![Value::Int(i)]]).unwrap();
            }
        }
        let log_path = LogConfig::new(&dir).log_path();
        let bytes = std::fs::read(&log_path).unwrap();
        std::fs::write(&log_path, &bytes[..bytes.len() - 3]).unwrap();

        let mut r1 = recover(config(&dir), setup).unwrap();
        let after_first = total(&mut r1);
        // Keep running past the crash point; these records append to the
        // (trimmed) log.
        r1.submit_batch("double", vec![vec![Value::Int(100)]])
            .unwrap();
        assert_eq!(total(&mut r1), after_first + 200);
        drop(r1); // second crash

        let mut r2 = recover(config(&dir), setup).unwrap();
        assert_eq!(
            total(&mut r2),
            after_first + 200,
            "records logged after the first recovery must replay"
        );
        std::fs::remove_dir_all(dir).ok();
    }

    /// A torn trailing frame (simulating a crash mid-group-commit) is
    /// dropped; everything fsynced before it replays.
    #[test]
    fn torn_binary_tail_recovers_prefix() {
        let dir = tempdir("torntail");
        {
            let mut p = Partition::new(config(&dir)).unwrap();
            setup(&mut p).unwrap();
            for i in 1..=4 {
                p.submit_batch("double", vec![vec![Value::Int(i)]]).unwrap();
            }
        }
        let log_path = LogConfig::new(&dir).log_path();
        let bytes = std::fs::read(&log_path).unwrap();
        // Cut the file mid-way through the final frame.
        std::fs::write(&log_path, &bytes[..bytes.len() - 3]).unwrap();
        let mut r = recover(config(&dir), setup).unwrap();
        // The torn record was the ack of batch 4 or its tail; at minimum
        // batches 1-3 (2*(1+2+3) = 12) are present, and the state is a
        // consistent prefix.
        let recovered = total(&mut r);
        assert!(
            recovered == 12 || recovered == 20,
            "unexpected recovered total {recovered}"
        );
        std::fs::remove_dir_all(dir).ok();
    }

    // ---- 2PC crash-point tests -------------------------------------------
    //
    // Each test kills the run at one stage boundary of the two-phase
    // commit protocol (by dropping the partition with the durable state of
    // that moment) and proves recovery converges to a consistent global
    // decision. CI runs these by name.

    /// Crash **between participant prepare and the coordinator decision**:
    /// the log holds a PrepareMarker with no Decision anywhere. The
    /// fragment is in doubt and must abort deterministically (presumed
    /// abort) — and the recovery must write the abort down so the next
    /// recovery agrees.
    #[test]
    fn crash_between_prepare_and_decide_presumes_abort() {
        let dir = tempdir("2pc-indoubt");
        {
            let mut p = Partition::new(config(&dir)).unwrap();
            setup(&mut p).unwrap();
            p.submit_batch("double", vec![vec![Value::Int(1)]]).unwrap();
            p.prepare_fragment(42, "double", vec![vec![Value::Int(100)]])
                .unwrap();
            // Crash: prepared, voted yes, decision never arrived.
        }
        let mut r = recover(config(&dir), setup).unwrap();
        assert_eq!(total(&mut r), 2, "in-doubt fragment must not commit");
        assert_eq!(r.stats().twopc_in_doubt_aborts, 1);
        assert_eq!(r.prepared_gtid(), None);
        // The presumed abort was logged: a second recovery replays the
        // same outcome without consulting anything.
        drop(r);
        let records = read_log(&LogConfig::new(&dir).log_path()).unwrap();
        assert!(
            records.iter().any(|rec| matches!(
                rec,
                LogRecord::Decision {
                    gtid: 42,
                    commit: false,
                    ..
                }
            )),
            "recovery must append the presumed-abort decision"
        );
        let mut r2 = recover(config(&dir), setup).unwrap();
        assert_eq!(total(&mut r2), 2);
        assert_eq!(r2.stats().twopc_in_doubt_aborts, 0, "no longer in doubt");
        std::fs::remove_dir_all(dir).ok();
    }

    /// Crash **after the coordinator logged commit but before this
    /// participant logged its Decision**: locally in doubt, but the
    /// coordinator's decision log says commit — recovery must commit the
    /// fragment and run its downstream workflow.
    #[test]
    fn crash_after_coordinator_commit_replays_fragment() {
        let dir = tempdir("2pc-coordcommit");
        {
            let mut p = Partition::new(config(&dir)).unwrap();
            setup(&mut p).unwrap();
            p.prepare_fragment(7, "double", vec![vec![Value::Int(10)]])
                .unwrap();
            // Crash after the coordinator's commit record became durable,
            // before the participant heard about it.
        }
        let decisions = HashMap::from([(7u64, true)]);
        let mut r = recover_with_decisions(config(&dir), setup, &decisions).unwrap();
        assert_eq!(
            total(&mut r),
            20,
            "coordinator-committed fragment must replay"
        );
        assert_eq!(r.stats().twopc_commits, 1);
        // The learned decision is now local: recovery without the
        // coordinator converges to the same state.
        drop(r);
        let mut r2 = recover(config(&dir), setup).unwrap();
        assert_eq!(total(&mut r2), 20);
        std::fs::remove_dir_all(dir).ok();
    }

    /// Crash **after the participant logged its commit Decision**: the
    /// local log alone resolves the fragment; no coordinator needed.
    #[test]
    fn crash_after_participant_decision_replays_locally() {
        let dir = tempdir("2pc-localdecision");
        {
            let mut p = Partition::new(config(&dir)).unwrap();
            setup(&mut p).unwrap();
            p.prepare_fragment(5, "double", vec![vec![Value::Int(3)]])
                .unwrap();
            let outcomes = p.decide_fragment(5, true).unwrap();
            assert!(outcomes.iter().all(|o| o.is_committed()));
            assert_eq!(total(&mut p), 6);
        }
        let mut r = recover(config(&dir), setup).unwrap();
        assert_eq!(total(&mut r), 6);
        // And the system keeps working with fresh ids.
        r.submit_batch("double", vec![vec![Value::Int(1)]]).unwrap();
        assert_eq!(total(&mut r), 8);
        std::fs::remove_dir_all(dir).ok();
    }

    /// Crash **after an aborted decision**: replay consumes the same
    /// batch/txn ids without re-running the body, so batches logged after
    /// the abort replay onto identical ids.
    #[test]
    fn crash_after_abort_decision_keeps_later_batches_aligned() {
        let dir = tempdir("2pc-abortalign");
        let reference;
        {
            let mut p = Partition::new(config(&dir)).unwrap();
            setup(&mut p).unwrap();
            p.prepare_fragment(11, "double", vec![vec![Value::Int(50)]])
                .unwrap();
            p.decide_fragment(11, false).unwrap();
            p.submit_batch("double", vec![vec![Value::Int(4)]]).unwrap();
            reference = total(&mut p);
            assert_eq!(reference, 8);
        }
        let mut r = recover(config(&dir), setup).unwrap();
        assert_eq!(total(&mut r), reference);
        assert_eq!(r.stats().twopc_aborts, 1);
        std::fs::remove_dir_all(dir).ok();
    }

    /// Crash on the **receiving side of a cross-partition edge** after the
    /// forward was logged: replay re-executes it, and a re-forward of the
    /// same edge instance (the sender's recovery resending) is deduped —
    /// exactly-once across the crash.
    #[test]
    fn crash_after_forward_log_replays_exactly_once() {
        let dir = tempdir("2pc-forward");
        {
            let mut p = Partition::new(config(&dir)).unwrap();
            setup(&mut p).unwrap();
            // The upstream half lives on another partition; this one
            // receives `doubled` rows over the edge.
            p.accept_forward("doubled", 0, 3, vec![vec![Value::Int(8)].into()])
                .unwrap();
            p.run_queued().unwrap();
            assert_eq!(total(&mut p), 8);
        }
        let mut r = recover(config(&dir), setup).unwrap();
        assert_eq!(total(&mut r), 8, "forwarded batch must replay");
        // The sender's recovery re-forwards the same edge instance.
        assert!(r
            .accept_forward("doubled", 0, 3, vec![vec![Value::Int(8)].into()])
            .unwrap()
            .is_none());
        assert_eq!(total(&mut r), 8, "re-forward must dedupe");
        assert_eq!(r.stats().forwards_deduped, 1);
        // A genuinely new edge instance still lands.
        assert!(r
            .accept_forward("doubled", 0, 4, vec![vec![Value::Int(1)].into()])
            .unwrap()
            .is_some());
        r.run_queued().unwrap();
        assert_eq!(total(&mut r), 9);
        std::fs::remove_dir_all(dir).ok();
    }

    /// Edge high-water marks survive snapshot + log GC: after the forward
    /// record is GC'd, a re-forward is still deduped on the recovered
    /// partition (the EdgeHighWater record carries the mark).
    #[test]
    fn edge_dedup_survives_snapshot_and_log_gc() {
        let dir = tempdir("2pc-edgehw");
        {
            let mut p = Partition::new(config(&dir)).unwrap();
            setup(&mut p).unwrap();
            p.accept_forward("doubled", 2, 9, vec![vec![Value::Int(5)].into()])
                .unwrap();
            p.run_queued().unwrap();
            p.snapshot().unwrap(); // GC drops the acked Forward record
            let records = read_log(&LogConfig::new(&dir).log_path()).unwrap();
            assert!(
                !records
                    .iter()
                    .any(|r| matches!(r, LogRecord::Forward { .. })),
                "forward record should be GC'd"
            );
            assert!(
                records
                    .iter()
                    .any(|r| matches!(r, LogRecord::EdgeHighWater { .. })),
                "high-water record must survive GC"
            );
        }
        let mut r = recover(config(&dir), setup).unwrap();
        assert_eq!(total(&mut r), 5);
        assert!(r
            .accept_forward("doubled", 2, 9, vec![vec![Value::Int(5)].into()])
            .unwrap()
            .is_none());
        assert_eq!(total(&mut r), 5);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn hstore_invocations_replay_too() {
        let dir = tempdir("hstore");
        let cfg = || PeConfig {
            log: Some(LogConfig::new(&dir)),
            ..PeConfig::hstore()
        };
        let hsetup = |p: &mut Partition| -> Result<()> {
            p.ddl("CREATE TABLE acc (k INT NOT NULL, n INT NOT NULL, PRIMARY KEY (k))")?;
            let mut sc = sstore_engine::TxnScratch::new(None, sstore_common::BatchId::new(0));
            p.engine_mut()
                .execute_sql("INSERT INTO acc VALUES (1, 0)", &[], &mut sc, 0)
                .unwrap();
            p.register(
                ProcSpec::new("bump", |ctx| {
                    let d = ctx.input().rows[0][0].clone();
                    ctx.exec("u", &[d])?;
                    Ok(())
                })
                .stmt("u", "UPDATE acc SET n = n + ? WHERE k = 1"),
            )?;
            Ok(())
        };
        {
            let mut p = Partition::new(cfg()).unwrap();
            hsetup(&mut p).unwrap();
            for i in 1..=4 {
                p.invoke("bump", vec![vec![Value::Int(i)]]).unwrap();
            }
        }
        let mut r = recover(cfg(), hsetup).unwrap();
        assert_eq!(
            r.query("SELECT n FROM acc WHERE k = 1", &[])
                .unwrap()
                .scalar_i64()
                .unwrap(),
            10
        );
        std::fs::remove_dir_all(dir).ok();
    }
}
