//! Upstream-backup recovery.
//!
//! H-Store recovers from a snapshot plus a command log of inputs; S-Store
//! inherits this and extends it to workflows: because border inputs are the
//! *only* nondeterminism, replaying the logged batches through the same
//! deterministic procedures regenerates every interior stream, window, and
//! table exactly (paper §2, "upstream backup based fault tolerance").
//!
//! Procedures are Rust closures and therefore not serialized; like H-Store,
//! recovery **redeploys** the schema and procedures (the `setup` closure —
//! it must match the pre-crash deployment) and then restores data:
//!
//! 1. run `setup` on a fresh partition (DDL + procedure registration);
//! 2. load the latest snapshot, if any (replaces the database wholesale —
//!    valid because deterministic setup yields identical catalogs);
//! 3. replay log records with batch ids beyond the snapshot, pinning the
//!    logical clock to each record's timestamp.

use crate::log::{read_log, LogConfig, LogRecord};
use crate::partition::{Partition, PeConfig};
use sstore_common::Result;
use sstore_storage::snapshot::Snapshot;

/// Rebuild a partition from its durable state.
///
/// `setup` must recreate exactly the DDL, indexes, EE triggers, and
/// procedure registrations that the crashed partition had (deterministic
/// redeployment, as in H-Store).
pub fn recover(
    config: PeConfig,
    setup: impl FnOnce(&mut Partition) -> Result<()>,
) -> Result<Partition> {
    let log_cfg: LogConfig = config
        .log
        .clone()
        .ok_or_else(|| sstore_common::Error::Recovery("recovery requires a log dir".into()))?;

    let mut p = Partition::new(config)?;
    setup(&mut p)?;

    // Snapshot (optional). The engine writes `snapshot.dat` (binary or
    // JSON content, sniffed by magic); pre-binary durability dirs left a
    // `snapshot.json`, which is read transparently and superseded by the
    // next snapshot write.
    let snap_path = log_cfg.snapshot_path();
    let legacy_path = log_cfg.legacy_snapshot_path();
    let snapshot = if snap_path.exists() {
        Some(Snapshot::read_from(&snap_path)?)
    } else if legacy_path.exists() {
        Some(Snapshot::read_from(&legacy_path)?)
    } else {
        None
    };
    p.restore_for_recovery(snapshot)?;

    // Replay the tail of the log.
    let records = read_log(&log_cfg.log_path())?;
    let acked: std::collections::HashSet<u64> = records
        .iter()
        .filter_map(|r| match r {
            LogRecord::Ack { batch } => Some(batch.raw()),
            _ => None,
        })
        .collect();
    let unacked: Vec<_> = records
        .iter()
        .filter(|r| !matches!(r, LogRecord::Ack { .. }))
        .map(|r| r.batch())
        .filter(|b| !acked.contains(&b.raw()))
        .collect();
    for record in records {
        p.replay_record(record)?;
    }
    // Replay completed every logged workflow (and snapshot-covered ones
    // completed before the crash), but replay suppresses logging — so
    // batches whose Ack was lost to the torn tail get a fresh Ack now,
    // letting retention GC retire their input records.
    p.ack_batches(&unacked)?;
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::LogConfig;
    use crate::procedure::ProcSpec;
    use sstore_common::Value;
    use std::path::PathBuf;

    fn tempdir(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("sstore-rec-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).unwrap();
        p
    }

    fn setup(p: &mut Partition) -> Result<()> {
        p.ddl("CREATE STREAM nums (v INT)")?;
        p.ddl("CREATE STREAM doubled (v INT)")?;
        p.ddl("CREATE TABLE sums (k INT NOT NULL, total INT NOT NULL, PRIMARY KEY (k))")?;
        // Seed through a border "init" procedure so it's in the log? No —
        // seed rows must come from setup DDL-equivalent deterministic code,
        // which recovery reruns identically.
        let mut sc = sstore_engine::TxnScratch::new(None, sstore_common::BatchId::new(0));
        p.engine_mut()
            .execute_sql("INSERT INTO sums VALUES (1, 0)", &[], &mut sc, 0)
            .unwrap();
        p.register(
            ProcSpec::new("double", |ctx| {
                for row in ctx.input().rows.clone() {
                    let v = row[0].as_int()?;
                    ctx.emit(vec![Value::Int(v * 2)])?;
                }
                Ok(())
            })
            .consumes("nums")
            .emits("doubled"),
        )?;
        p.register(
            ProcSpec::new("sum", |ctx| {
                let mut s = 0;
                for row in &ctx.input().rows {
                    s += row[0].as_int()?;
                }
                ctx.exec("add", &[Value::Int(s)])?;
                Ok(())
            })
            .consumes("doubled")
            .stmt("add", "UPDATE sums SET total = total + ? WHERE k = 1"),
        )?;
        Ok(())
    }

    fn config(dir: &PathBuf) -> PeConfig {
        PeConfig {
            log: Some(LogConfig::new(dir)),
            ..PeConfig::default()
        }
    }

    fn total(p: &mut Partition) -> i64 {
        p.query("SELECT total FROM sums WHERE k = 1", &[])
            .unwrap()
            .scalar_i64()
            .unwrap()
    }

    #[test]
    fn replay_from_log_only() {
        let dir = tempdir("logonly");
        {
            let mut p = Partition::new(config(&dir)).unwrap();
            setup(&mut p).unwrap();
            for i in 1..=5 {
                p.advance_clock(10);
                p.submit_batch("double", vec![vec![Value::Int(i)]]).unwrap();
            }
            assert_eq!(total(&mut p), 30); // 2*(1+..+5)
                                           // Crash: partition dropped without snapshot.
        }
        let mut r = recover(config(&dir), setup).unwrap();
        assert_eq!(total(&mut r), 30);
        // The recovered clock resumed past the last record.
        assert!(r.clock().now() >= 50);
        // And the system keeps working, with fresh batch ids.
        r.submit_batch("double", vec![vec![Value::Int(10)]])
            .unwrap();
        assert_eq!(total(&mut r), 50);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn replay_from_snapshot_plus_log() {
        let dir = tempdir("snaplog");
        {
            let mut p = Partition::new(config(&dir)).unwrap();
            setup(&mut p).unwrap();
            for i in 1..=3 {
                p.submit_batch("double", vec![vec![Value::Int(i)]]).unwrap();
            }
            p.snapshot().unwrap(); // covers batches 1-3, truncates log
            for i in 4..=5 {
                p.submit_batch("double", vec![vec![Value::Int(i)]]).unwrap();
            }
            assert_eq!(total(&mut p), 30);
        }
        let mut r = recover(config(&dir), setup).unwrap();
        assert_eq!(total(&mut r), 30);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn recovery_is_idempotent() {
        let dir = tempdir("idem");
        {
            let mut p = Partition::new(config(&dir)).unwrap();
            setup(&mut p).unwrap();
            p.submit_batch("double", vec![vec![Value::Int(7)]]).unwrap();
        }
        let mut r1 = recover(config(&dir), setup).unwrap();
        let v1 = total(&mut r1);
        drop(r1);
        let mut r2 = recover(config(&dir), setup).unwrap();
        assert_eq!(total(&mut r2), v1);
        assert_eq!(v1, 14);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn recovery_without_log_dir_errors() {
        let err = recover(PeConfig::default(), |_| Ok(())).unwrap_err();
        assert_eq!(err.kind(), "recovery");
    }

    /// A durability dir written by the pre-binary engine — JSON-lines
    /// command log plus a `snapshot.json` envelope — recovers through the
    /// back-compat path under the default (binary) configuration, and the
    /// next snapshot migrates the dir to the binary layout.
    #[test]
    fn pre_binary_json_dir_recovers_through_back_compat() {
        use crate::log::sniff_format;
        use sstore_common::DurabilityFormat;

        let dir = tempdir("backcompat");
        // Produce the legacy layout: run with the JSON format, snapshot
        // mid-stream, then move the snapshot to its pre-binary name.
        let json_config = PeConfig {
            log: Some(LogConfig::new(&dir).with_format(DurabilityFormat::Json)),
            ..PeConfig::default()
        };
        {
            let mut p = Partition::new(json_config).unwrap();
            setup(&mut p).unwrap();
            for i in 1..=3 {
                p.submit_batch("double", vec![vec![Value::Int(i)]]).unwrap();
            }
            p.snapshot().unwrap();
            for i in 4..=5 {
                p.submit_batch("double", vec![vec![Value::Int(i)]]).unwrap();
            }
            assert_eq!(total(&mut p), 30);
        }
        let cfg = LogConfig::new(&dir);
        std::fs::rename(cfg.snapshot_path(), cfg.legacy_snapshot_path()).unwrap();
        assert_eq!(
            sniff_format(&cfg.log_path()).unwrap(),
            Some(DurabilityFormat::Json)
        );

        // Recover with the binary-default config: JSON log + legacy
        // snapshot replay transparently.
        let mut r = recover(config(&dir), setup).unwrap();
        assert_eq!(total(&mut r), 30);
        // The partition keeps working; its next snapshot migrates the dir
        // to the binary layout and retires the legacy snapshot name.
        r.submit_batch("double", vec![vec![Value::Int(10)]])
            .unwrap();
        r.snapshot().unwrap();
        assert!(cfg.snapshot_path().exists());
        assert!(!cfg.legacy_snapshot_path().exists());
        assert_eq!(
            sniff_format(&cfg.log_path()).unwrap(),
            Some(DurabilityFormat::Binary)
        );
        drop(r);
        let mut r2 = recover(config(&dir), setup).unwrap();
        assert_eq!(total(&mut r2), 50);
        std::fs::remove_dir_all(dir).ok();
    }

    /// A bit flip mid-log fails recovery with a clear recovery error —
    /// no panic, no silent truncation of the suffix.
    #[test]
    fn corrupted_log_fails_recovery_cleanly() {
        let dir = tempdir("corrupt");
        {
            let mut p = Partition::new(config(&dir)).unwrap();
            setup(&mut p).unwrap();
            for i in 1..=6 {
                p.submit_batch("double", vec![vec![Value::Int(i)]]).unwrap();
            }
        }
        let log_path = LogConfig::new(&dir).log_path();
        let mut bytes = std::fs::read(&log_path).unwrap();
        // Inside the first record's frame payload: later frames are
        // intact, so this is corruption, not a torn tail.
        let mid =
            sstore_common::codec::FILE_HEADER_LEN + sstore_common::codec::FRAME_HEADER_LEN + 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&log_path, &bytes).unwrap();
        let err = recover(config(&dir), setup).unwrap_err();
        assert_eq!(err.kind(), "recovery");
        assert!(err.to_string().contains("corrupted"), "{err}");
        std::fs::remove_dir_all(dir).ok();
    }

    /// An Ack lost to the torn tail is re-appended after replay, so
    /// retention GC can still retire the batch's input record (the log
    /// drains to empty at the next snapshot instead of leaking the
    /// record forever).
    #[test]
    fn lost_ack_is_reissued_after_replay_so_gc_drains() {
        use crate::log::{read_log, LogRecord};

        let dir = tempdir("lostack");
        {
            let mut p = Partition::new(config(&dir)).unwrap();
            setup(&mut p).unwrap();
            for i in 1..=3 {
                p.submit_batch("double", vec![vec![Value::Int(i)]]).unwrap();
            }
        }
        // Tear the final Ack off the log (its batch record stays).
        let log_path = LogConfig::new(&dir).log_path();
        let records = read_log(&log_path).unwrap();
        assert!(matches!(records.last(), Some(LogRecord::Ack { .. })));
        let mut bytes = std::fs::read(&log_path).unwrap();
        // Last frame = header (8) + ack payload; recompute its size.
        let mut ack_frame = Vec::new();
        let f = sstore_common::codec::begin_frame(&mut ack_frame);
        records.last().unwrap().encode_binary(&mut ack_frame);
        sstore_common::codec::end_frame(&mut ack_frame, f);
        bytes.truncate(bytes.len() - ack_frame.len());
        std::fs::write(&log_path, &bytes).unwrap();

        let mut r = recover(config(&dir), setup).unwrap();
        assert_eq!(total(&mut r), 12);
        // The re-issued Ack lets the retention GC drain the whole log.
        r.snapshot().unwrap();
        assert!(
            read_log(&log_path).unwrap().is_empty(),
            "GC must retire the re-acked batch"
        );
        std::fs::remove_dir_all(dir).ok();
    }

    /// Full crash cycle: crash with a torn tail, recover, keep running,
    /// crash again, recover again. The torn bytes must be trimmed when
    /// the recovered partition reopens the log, or the second recovery
    /// would misread the boundary between old and new records as
    /// corruption and lose everything logged after the first crash.
    #[test]
    fn recover_after_torn_tail_then_crash_again() {
        let dir = tempdir("torncycle");
        {
            let mut p = Partition::new(config(&dir)).unwrap();
            setup(&mut p).unwrap();
            for i in 1..=3 {
                p.submit_batch("double", vec![vec![Value::Int(i)]]).unwrap();
            }
        }
        let log_path = LogConfig::new(&dir).log_path();
        let bytes = std::fs::read(&log_path).unwrap();
        std::fs::write(&log_path, &bytes[..bytes.len() - 3]).unwrap();

        let mut r1 = recover(config(&dir), setup).unwrap();
        let after_first = total(&mut r1);
        // Keep running past the crash point; these records append to the
        // (trimmed) log.
        r1.submit_batch("double", vec![vec![Value::Int(100)]])
            .unwrap();
        assert_eq!(total(&mut r1), after_first + 200);
        drop(r1); // second crash

        let mut r2 = recover(config(&dir), setup).unwrap();
        assert_eq!(
            total(&mut r2),
            after_first + 200,
            "records logged after the first recovery must replay"
        );
        std::fs::remove_dir_all(dir).ok();
    }

    /// A torn trailing frame (simulating a crash mid-group-commit) is
    /// dropped; everything fsynced before it replays.
    #[test]
    fn torn_binary_tail_recovers_prefix() {
        let dir = tempdir("torntail");
        {
            let mut p = Partition::new(config(&dir)).unwrap();
            setup(&mut p).unwrap();
            for i in 1..=4 {
                p.submit_batch("double", vec![vec![Value::Int(i)]]).unwrap();
            }
        }
        let log_path = LogConfig::new(&dir).log_path();
        let bytes = std::fs::read(&log_path).unwrap();
        // Cut the file mid-way through the final frame.
        std::fs::write(&log_path, &bytes[..bytes.len() - 3]).unwrap();
        let mut r = recover(config(&dir), setup).unwrap();
        // The torn record was the ack of batch 4 or its tail; at minimum
        // batches 1-3 (2*(1+2+3) = 12) are present, and the state is a
        // consistent prefix.
        let recovered = total(&mut r);
        assert!(
            recovered == 12 || recovered == 20,
            "unexpected recovered total {recovered}"
        );
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn hstore_invocations_replay_too() {
        let dir = tempdir("hstore");
        let cfg = || PeConfig {
            log: Some(LogConfig::new(&dir)),
            ..PeConfig::hstore()
        };
        let hsetup = |p: &mut Partition| -> Result<()> {
            p.ddl("CREATE TABLE acc (k INT NOT NULL, n INT NOT NULL, PRIMARY KEY (k))")?;
            let mut sc = sstore_engine::TxnScratch::new(None, sstore_common::BatchId::new(0));
            p.engine_mut()
                .execute_sql("INSERT INTO acc VALUES (1, 0)", &[], &mut sc, 0)
                .unwrap();
            p.register(
                ProcSpec::new("bump", |ctx| {
                    let d = ctx.input().rows[0][0].clone();
                    ctx.exec("u", &[d])?;
                    Ok(())
                })
                .stmt("u", "UPDATE acc SET n = n + ? WHERE k = 1"),
            )?;
            Ok(())
        };
        {
            let mut p = Partition::new(cfg()).unwrap();
            hsetup(&mut p).unwrap();
            for i in 1..=4 {
                p.invoke("bump", vec![vec![Value::Int(i)]]).unwrap();
            }
        }
        let mut r = recover(cfg(), hsetup).unwrap();
        assert_eq!(
            r.query("SELECT n FROM acc WHERE k = 1", &[])
                .unwrap()
                .scalar_i64()
                .unwrap(),
            10
        );
        std::fs::remove_dir_all(dir).ok();
    }
}
