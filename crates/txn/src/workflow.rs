//! Workflow graphs.
//!
//! A workflow is a DAG of stored procedures connected by streams: an edge
//! `P → Q` exists when `Q.input_stream == P.output_stream`. Border stored
//! procedures (BSPs) have no upstream producer; all others are interior
//! (ISPs) and are only ever invoked by PE triggers (paper §2).
//!
//! # Cross-partition edges
//!
//! A stream may be declared **remote** ([`Workflow::declare_remote`],
//! driven by `Cluster::declare_cross_edge`): tuples a TE emits onto it are
//! not consumed by this partition's PE triggers but routed — by a declared
//! key column — to the partitions owning the downstream keys, where the
//! consuming procedures run as forwarded TEs. This is how a PE trigger
//! firing on partition p0 schedules a downstream TE on p1 while keeping
//! S-Store's ordered, exactly-once dataflow guarantee: forwards travel
//! per-source FIFO and are logged (and deduplicated by high-water mark)
//! on the receiving partition before execution.

use crate::procedure::Procedure;
use sstore_common::{Error, ProcId, Result, TableId};
use std::collections::{HashMap, HashSet};

/// Declaration of one cross-partition workflow edge: tuples emitted onto
/// `stream` are routed to the partition owning `key_col` instead of being
/// consumed locally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrossEdge {
    /// The stream carrying the edge.
    pub stream: TableId,
    /// Visible column of the emitted tuples that routes them.
    pub key_col: usize,
}

/// The workflow structure derived from registered procedures.
#[derive(Debug, Clone, Default)]
pub struct Workflow {
    /// For each stream: the procedures consuming it.
    consumers: HashMap<TableId, Vec<ProcId>>,
    /// For each stream: the procedure producing it (at most one; S-Store
    /// workflows connect one upstream output to downstream inputs).
    producer: HashMap<TableId, ProcId>,
    /// Procedures in registration order with their stream endpoints.
    nodes: Vec<(ProcId, Option<TableId>, Option<TableId>)>,
    /// True when some pair of distinct procedures shares a writable table —
    /// the condition under which the paper requires serial execution of the
    /// whole workflow per batch.
    shared_writables: bool,
    /// Streams declared as cross-partition edges: stream → routing column.
    remote: HashMap<TableId, usize>,
}

impl Workflow {
    /// Build the workflow from the registered procedures.
    pub fn build(procs: &[Procedure]) -> Result<Workflow> {
        let mut wf = Workflow::default();
        for p in procs {
            if let Some(out) = p.output_stream {
                if let Some(prev) = wf.producer.insert(out, p.id) {
                    return Err(Error::Schedule(format!(
                        "stream {out} has two producers ({prev} and {})",
                        p.id
                    )));
                }
            }
        }
        for p in procs {
            if let Some(input) = p.input_stream {
                wf.consumers.entry(input).or_default().push(p.id);
            }
            wf.nodes.push((p.id, p.input_stream, p.output_stream));
        }
        wf.check_acyclic(procs)?;
        wf.shared_writables = Self::compute_shared_writables(procs);
        Ok(wf)
    }

    fn check_acyclic(&self, procs: &[Procedure]) -> Result<()> {
        // Kahn's algorithm over proc nodes.
        let mut indeg: HashMap<ProcId, usize> = HashMap::new();
        let mut edges: HashMap<ProcId, Vec<ProcId>> = HashMap::new();
        for p in procs {
            indeg.entry(p.id).or_insert(0);
            if let Some(input) = p.input_stream {
                if let Some(&up) = self.producer.get(&input) {
                    edges.entry(up).or_default().push(p.id);
                    *indeg.entry(p.id).or_insert(0) += 1;
                }
            }
        }
        let mut ready: Vec<ProcId> = indeg
            .iter()
            .filter(|(_, &d)| d == 0)
            .map(|(&p, _)| p)
            .collect();
        let mut seen = 0;
        while let Some(p) = ready.pop() {
            seen += 1;
            for &q in edges.get(&p).map(Vec::as_slice).unwrap_or(&[]) {
                let d = indeg.get_mut(&q).expect("node registered");
                *d -= 1;
                if *d == 0 {
                    ready.push(q);
                }
            }
        }
        if seen != indeg.len() {
            return Err(Error::Schedule("workflow graph contains a cycle".into()));
        }
        Ok(())
    }

    fn compute_shared_writables(procs: &[Procedure]) -> bool {
        for (i, a) in procs.iter().enumerate() {
            for b in &procs[i + 1..] {
                // Streams connecting the workflow don't count — only shared
                // *table* state forces whole-workflow serialization.
                let a_streams: HashSet<_> = a
                    .input_stream
                    .iter()
                    .chain(a.output_stream.iter())
                    .copied()
                    .collect();
                for t in a.write_set.intersection(
                    &b.write_set
                        .union(&b.read_set)
                        .copied()
                        .collect::<HashSet<_>>(),
                ) {
                    if !a_streams.contains(t)
                        && b.input_stream != Some(*t)
                        && b.output_stream != Some(*t)
                    {
                        return true;
                    }
                }
                for t in b.write_set.intersection(&a.read_set) {
                    if !a_streams.contains(t)
                        && b.input_stream != Some(*t)
                        && b.output_stream != Some(*t)
                    {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Procedures consuming `stream`.
    pub fn consumers_of(&self, stream: TableId) -> &[ProcId] {
        self.consumers
            .get(&stream)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The producer of `stream` (None when it's a border input).
    pub fn producer_of(&self, stream: TableId) -> Option<ProcId> {
        self.producer.get(&stream).copied()
    }

    /// Is `proc` a border stored procedure (no upstream producer)?
    pub fn is_border(&self, proc: ProcId) -> bool {
        self.nodes
            .iter()
            .find(|(p, _, _)| *p == proc)
            .map(|(_, input, _)| match input {
                Some(s) => self.producer_of(*s).is_none(),
                None => true,
            })
            .unwrap_or(true)
    }

    /// Whether distinct procedures share writable (non-stream) tables —
    /// the serial-execution condition from the paper.
    pub fn has_shared_writables(&self) -> bool {
        self.shared_writables
    }

    /// Declare `stream` a cross-partition edge routed by `key_col` (see
    /// the module docs). Emissions onto it are forwarded through the
    /// cluster router instead of firing local PE triggers.
    pub fn declare_remote(&mut self, edge: CrossEdge) {
        self.remote.insert(edge.stream, edge.key_col);
    }

    /// The routing column of `stream` when it is a declared cross-partition
    /// edge, `None` for ordinary (local) streams.
    pub fn remote_key_col(&self, stream: TableId) -> Option<usize> {
        self.remote.get(&stream).copied()
    }

    /// All declared cross-partition edges.
    pub fn remote_edges(&self) -> impl Iterator<Item = CrossEdge> + '_ {
        self.remote
            .iter()
            .map(|(&stream, &key_col)| CrossEdge { stream, key_col })
    }

    /// Number of procedures in the workflow.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no procedures are registered.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::procedure::ProcHandler;
    use std::collections::HashMap as Map;
    use std::sync::Arc;

    fn handler() -> ProcHandler {
        Arc::new(|_| Ok(()))
    }

    fn proc(
        id: u32,
        input: Option<u32>,
        output: Option<u32>,
        reads: &[u32],
        writes: &[u32],
    ) -> Procedure {
        Procedure {
            id: ProcId::new(id),
            name: format!("sp{id}"),
            input_stream: input.map(TableId::new),
            output_stream: output.map(TableId::new),
            statements: Map::new(),
            read_set: reads.iter().map(|&t| TableId::new(t)).collect(),
            write_set: writes.iter().map(|&t| TableId::new(t)).collect(),
            multi_partition: false,
            handler: handler(),
        }
    }

    #[test]
    fn linear_workflow_structure() {
        // streams: 10 -> sp0 -> 11 -> sp1 -> 12 -> sp2
        let procs = vec![
            proc(0, Some(10), Some(11), &[], &[]),
            proc(1, Some(11), Some(12), &[], &[]),
            proc(2, Some(12), None, &[], &[]),
        ];
        let wf = Workflow::build(&procs).unwrap();
        assert!(wf.is_border(ProcId::new(0)));
        assert!(!wf.is_border(ProcId::new(1)));
        assert_eq!(wf.consumers_of(TableId::new(11)), &[ProcId::new(1)]);
        assert_eq!(wf.producer_of(TableId::new(12)), Some(ProcId::new(1)));
        assert_eq!(wf.len(), 3);
        assert!(!wf.has_shared_writables());
    }

    #[test]
    fn shared_writable_table_detected() {
        // Both write table 50 (not a stream endpoint).
        let procs = vec![
            proc(0, Some(10), Some(11), &[], &[50]),
            proc(1, Some(11), None, &[50], &[50]),
        ];
        let wf = Workflow::build(&procs).unwrap();
        assert!(wf.has_shared_writables());
    }

    #[test]
    fn writer_reader_pair_detected() {
        // sp0 writes 50; sp1 reads 50.
        let procs = vec![
            proc(0, Some(10), Some(11), &[], &[50]),
            proc(1, Some(11), None, &[50], &[]),
        ];
        let wf = Workflow::build(&procs).unwrap();
        assert!(wf.has_shared_writables());
    }

    #[test]
    fn disjoint_write_sets_not_flagged() {
        let procs = vec![
            proc(0, Some(10), Some(11), &[60], &[50]),
            proc(1, Some(11), None, &[61], &[51]),
        ];
        let wf = Workflow::build(&procs).unwrap();
        assert!(!wf.has_shared_writables());
    }

    #[test]
    fn two_producers_rejected() {
        let procs = vec![
            proc(0, Some(10), Some(11), &[], &[]),
            proc(1, Some(12), Some(11), &[], &[]),
        ];
        assert!(Workflow::build(&procs).is_err());
    }

    #[test]
    fn cycle_rejected() {
        let procs = vec![
            proc(0, Some(11), Some(12), &[], &[]),
            proc(1, Some(12), Some(11), &[], &[]),
        ];
        let err = Workflow::build(&procs).unwrap_err();
        assert_eq!(err.kind(), "schedule");
    }

    #[test]
    fn fan_out_consumers() {
        let procs = vec![
            proc(0, Some(10), Some(11), &[], &[]),
            proc(1, Some(11), None, &[], &[]),
            proc(2, Some(11), None, &[], &[]),
        ];
        let wf = Workflow::build(&procs).unwrap();
        assert_eq!(wf.consumers_of(TableId::new(11)).len(), 2);
    }
}
