//! The partition executor — S-Store's stream-oriented transaction model.
//!
//! One [`Partition`] owns an [`ExecutionEngine`], a procedure registry, the
//! derived [`Workflow`], the command log, and the scheduling queue. The
//! paper demos the single-sited case; this is that site.
//!
//! **Scheduling invariants** (paper §2):
//! 1. *TE order*: the i-th TE of procedure SPk precedes its (i+1)-th —
//!    guaranteed because batches enter each procedure's pipeline in batch-id
//!    order and the queue is FIFO per procedure.
//! 2. *Workflow order*: for a given batch, upstream TEs commit before
//!    downstream TEs are even scheduled (PE triggers fire at commit).
//! 3. *Serial workflows*: when procedures share writable tables, the whole
//!    workflow for batch *b* runs before any TE of batch *b+1* (downstream
//!    work is scheduled ahead of queued border batches).
//!
//! **H-Store mode** disables PE triggers and workflow awareness: every
//! invocation comes from the client and executes in arrival order. That is
//! the paper's baseline; §3.1's anomalies come precisely from the client's
//! delayed polling racing with new input.

use crate::log::{CommandLog, LogConfig, LogRecord, LogRetention};
use crate::procedure::{simulate_cost, stmt_effects, ProcContext, ProcSpec, Procedure};
use crate::stats::PeStats;
use crate::transaction::{Invocation, InvocationOrigin, TxnOutcome, TxnStatus};
use crate::workflow::{CrossEdge, Workflow};
use sstore_common::fault;
use sstore_common::obs::{self, Stage, TraceCtx};
use sstore_common::{
    Batch, BatchId, Clock, Error, PartitionId, ProcId, Result, Row, TableId, TxnId, Value,
};
use sstore_engine::{EeConfig, ExecutionEngine, TxnScratch};
use sstore_sql::exec::QueryResult;
use sstore_storage::snapshot::{Snapshot, SnapshotDelta, SnapshotKey};
use std::collections::{HashMap, VecDeque};

/// A fragment of a multi-sited transaction, executed at *prepare* time
/// with its undo log held open until the coordinator's decision arrives.
/// Shared-nothing serial execution means at most one fragment is ever
/// prepared per partition — the worker blocks (deferring queued jobs)
/// between prepare and decide, so no other TE can observe the fragment's
/// uncommitted writes.
struct PreparedFragment {
    /// Coordinator-assigned global transaction id.
    gtid: u64,
    /// Local transaction id consumed by the fragment body.
    txn: TxnId,
    /// Local batch id assigned at prepare.
    batch: BatchId,
    /// The fragmented procedure.
    proc: ProcId,
    /// Wall-clock start, for commit latency accounting.
    start: std::time::Instant,
    /// The open undo log: dropped on commit, applied on abort.
    undo: sstore_storage::UndoLog,
    /// Stream rows the body emitted (released to PE triggers on commit).
    appended: Vec<(TableId, Row)>,
    /// Client response assembled by the body.
    response: Option<QueryResult>,
}

/// One batch bound for another partition over a cross-partition workflow
/// edge. Produced by [`Partition::take_outbox`] after a TE commits onto a
/// declared remote stream; the cluster runtime routes the rows by
/// `key_col` and delivers them as forwarded TEs.
#[derive(Debug, Clone)]
pub struct RemoteForward {
    /// Stream name (stream ids are deployment-deterministic, but names
    /// survive the trip between differently-built partitions).
    pub stream: String,
    /// Visible column routing each row to its owning partition.
    pub key_col: usize,
    /// The emitting partition's batch id (the edge-instance identity,
    /// together with the source partition and stream).
    pub batch: BatchId,
    /// The emitted rows (shared handles — no copies on the way out).
    pub rows: Vec<Row>,
    /// Lifecycle trace of the emitting border batch, when one was
    /// attached at submission (recovery-rebuilt envelopes carry `None`).
    pub trace: Option<TraceCtx>,
}

/// Which system the partition behaves as.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Full S-Store: PE triggers push batches through workflows; scheduling
    /// preserves the stream transaction model's ordering guarantees.
    SStore,
    /// The paper's baseline: no PE triggers, no workflow awareness; the
    /// client drives every invocation (polling), and invocations execute
    /// in client-arrival order.
    HStore,
}

/// Partition configuration.
#[derive(Debug, Clone)]
pub struct PeConfig {
    /// S-Store vs H-Store behaviour.
    pub mode: ExecMode,
    /// This partition's site id (p0 standalone; the cluster runtime
    /// assigns one id per worker so stats and metrics stay attributable).
    pub partition: PartitionId,
    /// Automatic snapshot-then-truncate policy (requires `log`). `None`
    /// leaves truncation manual, as before.
    pub retention: Option<LogRetention>,
    /// PE triggers (ablation E3a; forced off in H-Store mode).
    pub pe_triggers_enabled: bool,
    /// Override the serial-workflow decision (None = derive from shared
    /// writable tables, per the paper).
    pub serial_workflow: Option<bool>,
    /// Simulated client↔PE round-trip cost in µs (busy-wait per trip).
    pub client_trip_cost_micros: u64,
    /// Simulated PE↔EE dispatch cost in µs (busy-wait per statement).
    pub ee_trip_cost_micros: u64,
    /// Simulated PE↔EE dispatch latency in µs (sleep per statement;
    /// overlappable across partition workers, unlike the busy-wait).
    pub ee_trip_latency_micros: u64,
    /// Command logging (None = durability off).
    pub log: Option<LogConfig>,
    /// Execution-engine tunables.
    pub ee: EeConfig,
}

impl Default for PeConfig {
    fn default() -> Self {
        PeConfig {
            mode: ExecMode::SStore,
            partition: PartitionId::new(0),
            retention: None,
            pe_triggers_enabled: true,
            serial_workflow: None,
            client_trip_cost_micros: 0,
            ee_trip_cost_micros: 0,
            ee_trip_latency_micros: 0,
            log: None,
            ee: EeConfig::default(),
        }
    }
}

impl PeConfig {
    /// The paper's H-Store baseline configuration.
    pub fn hstore() -> Self {
        PeConfig {
            mode: ExecMode::HStore,
            pe_triggers_enabled: false,
            ..PeConfig::default()
        }
    }
}

/// One partition: engine + procedures + workflow + scheduler + durability.
///
/// `Debug` prints a summary (procedures hold closures).
pub struct Partition {
    engine: ExecutionEngine,
    procs: Vec<Procedure>,
    by_name: HashMap<String, ProcId>,
    workflow: Workflow,
    clock: Clock,
    log: Option<CommandLog>,
    stats: PeStats,
    config: PeConfig,
    queue: VecDeque<Invocation>,
    next_txn: u64,
    next_batch: u64,
    /// Outstanding TEs per batch (for completion acks).
    batch_refs: HashMap<u64, usize>,
    /// Remaining consumers per (stream, batch) before GC may run.
    gc_pending: HashMap<(TableId, u64), usize>,
    /// Committed TEs since the last snapshot (drives `LogRetention`).
    commits_since_snapshot: u64,
    /// True while replaying the log (suppresses re-logging).
    replaying: bool,
    /// Output rows of the TE that just committed, handed from `run_te` to
    /// `post_te` without cloning.
    pending_outputs: Vec<(TableId, Row)>,
    /// The 2PC fragment currently held between prepare and decision.
    prepared: Option<PreparedFragment>,
    /// True while a verified-disjoint TE runs under early-prepare
    /// speculation ([`Partition::submit_batch_speculative`]) — the one
    /// case `drain` may run with a fragment held.
    speculating: bool,
    /// Declared cross-partition edges by stream name (re-applied to the
    /// workflow whenever it is rebuilt by `register`).
    cross_edges: Vec<(String, usize)>,
    /// Batches emitted onto remote streams, awaiting pickup by the
    /// cluster runtime ([`Partition::take_outbox`]).
    outbox: Vec<RemoteForward>,
    /// Exactly-once dedup state per incoming edge: highest source batch
    /// id already accepted from `(source partition, stream)`.
    edge_high_water: HashMap<(u32, String), u64>,
    /// Incoming edges with an unfilled hole: `(source partition, stream)
    /// → the lowest source batch whose forward was refused` (its log
    /// write failed). The high-water dedupe is sound only if forwards
    /// from a source are accepted in order with no holes — accepting a
    /// *younger* batch after a refusal would advance the mark past the
    /// hole, and the sender's eventual re-forward of the refused batch
    /// would then look like a duplicate and be dropped. Until the hole
    /// is refilled (the refused batch re-forwarded and durably logged),
    /// every younger forward on that edge is refused too; their acks
    /// stay withheld upstream, so recovery re-forwards them in order.
    edge_gaps: HashMap<(u32, String), u64>,
    /// Highest gtid this partition has ever prepared (live or replayed).
    /// The cluster's coordinator resumes *past* every partition's mark so
    /// a recovered cluster can never reuse an in-doubt gtid — reuse would
    /// let a later commit of the recycled id retroactively commit the
    /// old aborted fragment on the next recovery.
    max_gtid_seen: u64,
    /// During recovery: highest batch id the restored snapshot covers.
    /// Replay skips execution of covered batches, so a covered
    /// `ForwardOut` record must rebuild its envelope from the log.
    replay_covered: u64,
    /// Identity of the last snapshot image written or restored (base or
    /// delta); the next delta chains onto it. `None` until the first
    /// image exists.
    last_snapshot_key: Option<SnapshotKey>,
    /// Number of deltas chained onto the current base image.
    snapshot_chain_len: u64,
    /// Set when a durability write failed *after* a commit point (a 2PC
    /// decision record, a post-commit `ForwardOut` emission record): the
    /// failed record was dropped cleanly from the log buffer, but
    /// in-memory state now holds effects the log will never reflect. The
    /// only safe continuation is a rebuild from disk
    /// ([`Self::durability_poisoned`] tells a supervisor to do exactly
    /// that); anything else — including a retention snapshot — would
    /// capture the divergence.
    state_diverged: bool,
    /// Lifecycle traces handed in by [`Partition::push_pending_trace`],
    /// consumed FIFO by the next batch-creating entry points (border
    /// enqueue, 2PC prepare, accepted forward) — order matches batch-id
    /// assignment, including within a coalesced group.
    pending_traces: VecDeque<TraceCtx>,
    /// Live batch id → lifecycle trace, for attributing later stages
    /// (fsync, forward emission, edge ack) back to the submission.
    /// Entries die with the batch's last reference.
    batch_traces: HashMap<u64, TraceCtx>,
    /// Traces whose border/prepare record sits in the group-commit
    /// buffer: flushed to the `Fsynced` stage when a sync covers them.
    unsynced_traces: Vec<TraceCtx>,
}

impl std::fmt::Debug for Partition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Partition")
            .field("mode", &self.config.mode)
            .field("procedures", &self.procs.len())
            .field("next_txn", &self.next_txn)
            .field("next_batch", &self.next_batch)
            .field("queued", &self.queue.len())
            .finish()
    }
}

impl Partition {
    /// Create a partition. Opens the command log when configured.
    pub fn new(config: PeConfig) -> Result<Partition> {
        let log = match &config.log {
            Some(cfg) => Some(CommandLog::open(cfg.clone())?),
            None => None,
        };
        let stats = PeStats {
            partition: config.partition,
            ..PeStats::new()
        };
        Ok(Partition {
            engine: ExecutionEngine::with_config(config.ee.clone()),
            procs: Vec::new(),
            by_name: HashMap::new(),
            workflow: Workflow::default(),
            clock: Clock::new(),
            log,
            stats,
            config,
            queue: VecDeque::new(),
            next_txn: 1,
            next_batch: 0,
            batch_refs: HashMap::new(),
            gc_pending: HashMap::new(),
            commits_since_snapshot: 0,
            replaying: false,
            pending_outputs: Vec::new(),
            prepared: None,
            speculating: false,
            cross_edges: Vec::new(),
            outbox: Vec::new(),
            edge_high_water: HashMap::new(),
            edge_gaps: HashMap::new(),
            max_gtid_seen: 0,
            replay_covered: 0,
            last_snapshot_key: None,
            snapshot_chain_len: 0,
            state_diverged: false,
            pending_traces: VecDeque::new(),
            batch_traces: HashMap::new(),
            unsynced_traces: Vec::new(),
        })
    }

    // ---- setup ---------------------------------------------------------------

    /// Run DDL (CREATE TABLE/STREAM/WINDOW).
    pub fn ddl(&mut self, sql: &str) -> Result<TableId> {
        self.engine.ddl_sql(sql)
    }

    /// Create a secondary index.
    pub fn create_index(
        &mut self,
        table: &str,
        name: &str,
        columns: &[&str],
        unique: bool,
    ) -> Result<()> {
        self.engine
            .create_index(table, name, columns, unique, false)
    }

    /// Register an EE trigger (delegates to the engine).
    pub fn create_ee_trigger(
        &mut self,
        name: &str,
        on_table: &str,
        event: sstore_engine::TriggerEvent,
        statements: &[&str],
    ) -> Result<()> {
        self.engine
            .create_trigger(name, on_table, event, statements)
    }

    /// Register a stored procedure and rebuild the workflow.
    pub fn register(&mut self, spec: ProcSpec) -> Result<ProcId> {
        if self.by_name.contains_key(&spec.name) {
            return Err(Error::AlreadyExists(format!("procedure `{}`", spec.name)));
        }
        let id = ProcId::new(self.procs.len() as u32);
        let input_stream = spec
            .input_stream
            .as_deref()
            .map(|s| self.engine.db().resolve(s))
            .transpose()?;
        let output_stream = spec
            .output_stream
            .as_deref()
            .map(|s| self.engine.db().resolve(s))
            .transpose()?;
        for s in [input_stream, output_stream].into_iter().flatten() {
            if !self.engine.db().kind(s)?.is_stream() {
                return Err(Error::Constraint(format!(
                    "procedure `{}` endpoint {s} is not a stream",
                    spec.name
                )));
            }
        }
        let mut statements = HashMap::new();
        let mut read_set = std::collections::HashSet::new();
        let mut write_set = std::collections::HashSet::new();
        for (name, sql) in &spec.statements {
            let planned = self.engine.prepare(sql)?;
            let (r, w) = stmt_effects(&planned);
            read_set.extend(r);
            write_set.extend(w);
            if statements.insert(name.clone(), planned).is_some() {
                return Err(Error::AlreadyExists(format!(
                    "statement `{name}` in `{}`",
                    spec.name
                )));
            }
        }
        // Emissions write the output stream.
        if let Some(out) = output_stream {
            write_set.insert(out);
        }
        if let Some(inp) = input_stream {
            read_set.insert(inp);
        }
        for w in &spec.windows {
            self.engine.bind_window_owner(w, id)?;
            let wid = self.engine.db().resolve(w)?;
            read_set.insert(wid);
            write_set.insert(wid);
        }
        self.procs.push(Procedure {
            id,
            name: spec.name.clone(),
            input_stream,
            output_stream,
            statements,
            read_set,
            write_set,
            multi_partition: spec.multi_partition,
            handler: spec.handler,
        });
        self.by_name.insert(spec.name, id);
        self.workflow = Workflow::build(&self.procs)?;
        self.reapply_cross_edges()?;
        Ok(id)
    }

    /// Declare `stream` a cross-partition workflow edge: tuples emitted
    /// onto it are not consumed by this partition's PE triggers but
    /// buffered in the outbox ([`Partition::take_outbox`]) for the
    /// cluster runtime to route by `key_col` to the owning partitions.
    /// Survives workflow rebuilds; redeclaring a stream replaces its
    /// routing column.
    pub fn declare_cross_edge(&mut self, stream: &str, key_col: usize) -> Result<()> {
        let sid = self.engine.db().resolve(stream)?;
        if !self.engine.db().kind(sid)?.is_stream() {
            return Err(Error::Constraint(format!(
                "`{stream}` is not a stream; cross-partition edges ride streams"
            )));
        }
        let arity = self
            .engine
            .db()
            .catalog()
            .meta(sid)
            .map(|m| m.visible_schema.arity())
            .unwrap_or(0);
        if key_col >= arity {
            return Err(Error::Constraint(format!(
                "cross-edge key column {key_col} out of range for `{stream}` (arity {arity})"
            )));
        }
        self.cross_edges.retain(|(s, _)| s != stream);
        self.cross_edges.push((stream.to_string(), key_col));
        self.workflow.declare_remote(CrossEdge {
            stream: sid,
            key_col,
        });
        Ok(())
    }

    /// Re-apply declared cross edges after `Workflow::build` replaced the
    /// graph (registration order and edge declaration order commute).
    fn reapply_cross_edges(&mut self) -> Result<()> {
        for (name, key_col) in self.cross_edges.clone() {
            let sid = self.engine.db().resolve(&name)?;
            self.workflow.declare_remote(CrossEdge {
                stream: sid,
                key_col,
            });
        }
        Ok(())
    }

    // ---- accessors -----------------------------------------------------------

    /// The execution engine (read).
    pub fn engine(&self) -> &ExecutionEngine {
        &self.engine
    }

    /// The execution engine (setup/test mutation — not the txn path).
    pub fn engine_mut(&mut self) -> &mut ExecutionEngine {
        &mut self.engine
    }

    /// Partition counters (an owned snapshot; the row-sharing metrics in
    /// it are process-wide, captured at call time).
    pub fn stats(&self) -> PeStats {
        let mut s = self.stats.clone();
        s.rows = sstore_common::RowMetrics::snapshot();
        s
    }

    /// True when live state and the durable log can no longer be
    /// reconciled in place: either the command log was poisoned by a
    /// failed write rollback (the durable tail is of unknown length), or
    /// a post-commit-point record (2PC decision, emission envelope)
    /// failed to log while its effects are already applied in memory.
    /// The owning worker should take the partition down deliberately and
    /// recover it from disk — replay reconstructs the consistent state,
    /// including re-emitting lost cross-partition envelopes (destination
    /// dedupe keeps them exactly-once).
    pub fn durability_poisoned(&self) -> bool {
        self.state_diverged || self.log.as_ref().is_some_and(|l| l.poisoned())
    }

    /// Reset PE and EE counters (the partition id is preserved).
    pub fn reset_stats(&mut self) {
        self.stats = PeStats {
            partition: self.config.partition,
            ..PeStats::new()
        };
        self.engine.reset_stats();
    }

    /// This partition's site id.
    pub fn id(&self) -> PartitionId {
        self.config.partition
    }

    /// The logical clock.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Advance logical time by `micros`.
    pub fn advance_clock(&self, micros: i64) {
        self.clock.advance(micros);
    }

    /// The derived workflow.
    pub fn workflow(&self) -> &Workflow {
        &self.workflow
    }

    /// Which system this partition behaves as.
    pub fn mode(&self) -> ExecMode {
        self.config.mode
    }

    /// Resolve a procedure name.
    pub fn proc_id(&self, name: &str) -> Result<ProcId> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| Error::NotFound(format!("procedure `{name}`")))
    }

    /// Run one statement during deployment (seeding reference data).
    /// Commits immediately, is not logged, and must therefore only be used
    /// from deterministic setup code that recovery re-runs identically —
    /// the same contract as DDL.
    pub fn setup_sql(&mut self, sql: &str, params: &[Value]) -> Result<QueryResult> {
        let mut scratch = TxnScratch::new(None, BatchId::new(0));
        let now = self.clock.now();
        match self.engine.execute_sql(sql, params, &mut scratch, now) {
            Ok(result) => {
                scratch.undo.commit();
                Ok(result)
            }
            Err(e) => {
                // Statement atomicity: a failed statement (e.g. a
                // duplicate key midway through a multi-row INSERT) must
                // leave nothing behind.
                scratch.undo.rollback(self.engine.db_mut())?;
                Err(e)
            }
        }
    }

    /// Run a read-only query outside any transaction (dashboard/test path;
    /// one client↔PE round trip).
    pub fn query(&mut self, sql: &str, params: &[Value]) -> Result<QueryResult> {
        self.stats.client_pe_trips += 1;
        simulate_cost(self.config.client_trip_cost_micros);
        let mut scratch = TxnScratch::new(None, BatchId::new(0));
        let now = self.clock.now();
        let result = self.engine.execute_sql(sql, params, &mut scratch, now)?;
        if !scratch.undo.is_empty() {
            // Must stay read-only: roll anything back and refuse.
            scratch.undo.rollback(self.engine.db_mut())?;
            return Err(Error::Txn(
                "query() is read-only; use a procedure for writes".into(),
            ));
        }
        Ok(result)
    }

    // ---- the transaction path -------------------------------------------------

    /// Submit one border input batch (S-Store mode's only client entry
    /// point). Runs the batch through the workflow to completion and
    /// returns every TE outcome, workflow order.
    pub fn submit_batch<R: Into<Row>>(
        &mut self,
        proc: &str,
        rows: Vec<R>,
    ) -> Result<Vec<TxnOutcome>> {
        self.submit_batch_async(proc, rows)?;
        self.run_queued()
    }

    /// Enqueue a border batch without draining (an asynchronous client:
    /// more input arrives before earlier batches finish). Pair with
    /// [`Partition::run_queued`]. With several batches queued, the
    /// scheduling policy becomes observable: serial workflows run
    /// batch-major; pipelined ones let batch *b+1*'s border TE run before
    /// batch *b*'s interior TEs.
    pub fn submit_batch_async<R: Into<Row>>(
        &mut self,
        proc: &str,
        rows: Vec<R>,
    ) -> Result<BatchId> {
        let pid = self.border_proc_id(proc)?;
        self.stats.client_pe_trips += 1;
        simulate_cost(self.config.client_trip_cost_micros);
        self.enqueue_border(pid, proc, rows.into_iter().map(Into::into).collect())
    }

    /// Submit a *group* of border batches for one procedure in a single
    /// scheduler pass: one client↔PE round trip for the whole group, all
    /// records logged back-to-back (group commit amortizes the fsyncs),
    /// then one drain. This is the PE-boundary saving the cluster runtime
    /// exploits when its ingest queue holds several batches for the same
    /// procedure.
    ///
    /// Returns one result **per submission**, in submission order: `Ok`
    /// with that batch's TEs (execution order) when it ran, `Err` when it
    /// was never enqueued (e.g. a log write failed). Earlier batches of a
    /// partially-failed group still execute — they are already durably
    /// logged, so running them keeps live state identical to what
    /// recovery would replay — and resolve `Ok` exactly as they would
    /// have uncoalesced. The outer `Err` is reserved for whole-group
    /// rejection (unknown/interior procedure, empty group is `Ok(vec![])`)
    /// and engine-level drain failures — the latter means an engine
    /// invariant broke mid-drain (rollback failure), the partition's
    /// state is indeterminate, and *every* member of the group reports
    /// the error even if its own TEs committed first.
    ///
    /// Determinism: batch ids are assigned in submission order and the
    /// scheduler sees exactly the state it would have seen under
    /// [`Partition::submit_batch_async`] calls followed by one
    /// [`Partition::run_queued`] — final state is identical to submitting
    /// the batches one by one.
    #[allow(clippy::type_complexity)]
    pub fn submit_batch_group<R: Into<Row>>(
        &mut self,
        proc: &str,
        batches: Vec<Vec<R>>,
    ) -> Result<Vec<Result<Vec<TxnOutcome>>>> {
        if batches.is_empty() {
            return Ok(Vec::new());
        }
        let pid = self.border_proc_id(proc)?;
        self.stats.client_pe_trips += 1;
        simulate_cost(self.config.client_trip_cost_micros);
        self.stats.group_submissions += 1;
        self.stats.batches_coalesced += batches.len() as u64;
        let n = batches.len();
        let mut ids = Vec::with_capacity(n);
        let mut enqueue_err: Option<Error> = None;
        for rows in batches {
            match self.enqueue_border(pid, proc, rows.into_iter().map(Into::into).collect()) {
                Ok(id) => ids.push(id),
                Err(e) => {
                    // This submission (and the rest of the group) was
                    // never enqueued; the already-enqueued prefix still
                    // runs below.
                    enqueue_err = Some(e);
                    break;
                }
            }
        }
        let outcomes = self.drain()?;
        // Attribute execution-order outcomes back to their border batch
        // (downstream TEs carry the border batch's id).
        let index: HashMap<u64, usize> =
            ids.iter().enumerate().map(|(i, b)| (b.raw(), i)).collect();
        let mut groups: Vec<Vec<TxnOutcome>> = ids.iter().map(|_| Vec::new()).collect();
        for o in outcomes {
            if let Some(&i) = index.get(&o.batch.raw()) {
                groups[i].push(o);
            }
        }
        let mut results: Vec<Result<Vec<TxnOutcome>>> = groups.into_iter().map(Ok).collect();
        while results.len() < n {
            results.push(Err(enqueue_err.clone().unwrap_or_else(|| {
                Error::Internal("group submission not enqueued".into())
            })));
        }
        Ok(results)
    }

    /// Resolve `proc`, enforcing the border-procedure rule in S-Store mode.
    fn border_proc_id(&self, proc: &str) -> Result<ProcId> {
        let pid = self.proc_id(proc)?;
        if self.config.mode == ExecMode::SStore && !self.workflow.is_border(pid) {
            return Err(Error::Schedule(format!(
                "`{proc}` is an interior procedure; only PE triggers may invoke it"
            )));
        }
        Ok(pid)
    }

    /// Assign the next batch id, log the border record, and enqueue the
    /// invocation. No round-trip accounting — callers decide how many
    /// client↔PE trips the submission cost.
    fn enqueue_border(&mut self, pid: ProcId, proc: &str, rows: Vec<Row>) -> Result<BatchId> {
        let trace = self.pending_traces.pop_front();
        self.next_batch += 1;
        let batch = BatchId::new(self.next_batch);
        let synced = self.log_record(&LogRecord::BorderBatch {
            batch,
            proc: proc.to_string(),
            rows: rows.clone(),
            ts: self.clock.now(),
        })?;
        self.note_batch_logged(batch, trace, synced);
        self.stats.batches_submitted += 1;
        self.batch_refs.insert(batch.raw(), 1);
        self.queue.push_back(Invocation {
            proc: pid,
            batch: Batch::new(batch, rows),
            origin: if self.replaying {
                InvocationOrigin::Recovery
            } else {
                InvocationOrigin::Client
            },
        });
        Ok(batch)
    }

    /// Run every queued TE (and the TEs their commits trigger) to
    /// completion, returning outcomes in execution order.
    pub fn run_queued(&mut self) -> Result<Vec<TxnOutcome>> {
        self.drain()
    }

    /// Directly invoke a procedure (H-Store mode requests, and OLTP-style
    /// requests in either mode). One TE; returns its outcome.
    pub fn invoke<R: Into<Row>>(&mut self, proc: &str, rows: Vec<R>) -> Result<TxnOutcome> {
        let pid = self.proc_id(proc)?;
        let rows: Vec<Row> = rows.into_iter().map(Into::into).collect();
        self.stats.client_pe_trips += 1;
        simulate_cost(self.config.client_trip_cost_micros);
        self.next_batch += 1;
        let batch = BatchId::new(self.next_batch);
        self.log_record(&LogRecord::Invocation {
            batch,
            proc: proc.to_string(),
            rows: rows.clone(),
            ts: self.clock.now(),
        })?;
        self.batch_refs.insert(batch.raw(), 1);
        self.queue.push_back(Invocation {
            proc: pid,
            batch: Batch::new(batch, rows),
            origin: if self.replaying {
                InvocationOrigin::Recovery
            } else {
                InvocationOrigin::Client
            },
        });
        let outcomes = self.drain()?;
        outcomes
            .into_iter()
            .next()
            .ok_or_else(|| Error::Internal("invoke produced no outcome".into()))
    }

    // ---- cross-partition transactions (2PC participant) ----------------------

    /// Phase 1 of two-phase commit: execute this partition's fragment of
    /// multi-sited transaction `gtid` and **hold its undo log open**.
    /// The fragment's input is logged (and fsynced) *before* the body
    /// runs, so a yes-vote is a durable promise: after a crash the
    /// fragment replays against the coordinator's decision.
    ///
    /// Returns the fragment's local batch id on a yes-vote. On `Err` the
    /// participant has voted no: the body's effects are already rolled
    /// back and a local abort [`LogRecord::Decision`] is durable — the
    /// coordinator's abort round is then a no-op here.
    ///
    /// Serial execution discipline: at most one fragment may be prepared
    /// at a time, and the caller (the partition worker) must not run any
    /// other TE between prepare and [`Partition::decide_fragment`] — the
    /// fragment's uncommitted writes are visible in storage.
    pub fn prepare_fragment<R: Into<Row>>(
        &mut self,
        gtid: u64,
        proc: &str,
        rows: Vec<R>,
    ) -> Result<BatchId> {
        let rows: Vec<Row> = rows.into_iter().map(Into::into).collect();
        if let Some(frag) = &self.prepared {
            return Err(Error::Txn(format!(
                "partition {} already holds prepared fragment gtid {}",
                self.config.partition, frag.gtid
            )));
        }
        let pid = self.border_proc_id(proc)?;
        let trace = self.pending_traces.pop_front();
        self.max_gtid_seen = self.max_gtid_seen.max(gtid);
        self.stats.twopc_prepares += 1;
        self.next_batch += 1;
        let batch = BatchId::new(self.next_batch);
        let synced = self.log_record(&LogRecord::PrepareMarker {
            gtid,
            batch,
            proc: proc.to_string(),
            rows: rows.clone(),
            ts: self.clock.now(),
        })?;
        self.note_batch_logged(batch, trace, synced);
        self.log_sync()?; // the yes-vote must be durable before it is cast
        if !self.replaying {
            // Kill point: the durable promise exists, the vote has not
            // been cast. Recovery must resolve this fragment in doubt.
            fault::kill_point("prepare-logged");
        }
        self.stats.batches_submitted += 1;
        self.batch_refs.insert(batch.raw(), 1);

        let start = std::time::Instant::now();
        let txn = TxnId::new(self.next_txn);
        self.next_txn += 1;
        let now = self.clock.now();
        let p = &self.procs[pid.raw() as usize];
        let handler = p.handler.clone();
        let output_stream = p.output_stream;
        let input = Batch::new(batch, rows);
        let mut scratch = TxnScratch::new(Some(pid), batch);
        let mut ctx = ProcContext {
            engine: &mut self.engine,
            scratch: &mut scratch,
            statements: &p.statements,
            input: &input,
            now,
            output_stream,
            response: None,
            ee_trip_cost_micros: self.config.ee_trip_cost_micros,
            ee_trip_latency_micros: self.config.ee_trip_latency_micros,
        };
        let result = handler(&mut ctx);
        let response = ctx.response.take();
        match result {
            Ok(()) => {
                self.prepared = Some(PreparedFragment {
                    gtid,
                    txn,
                    batch,
                    proc: pid,
                    start,
                    undo: scratch.undo,
                    appended: scratch.appended,
                    response,
                });
                Ok(batch)
            }
            Err(e) => {
                // Vote no: unilateral abort, decided (and logged) locally.
                scratch.undo.rollback(self.engine.db_mut())?;
                self.log_record(&LogRecord::Decision {
                    gtid,
                    batch,
                    commit: false,
                })?;
                self.log_sync()?;
                self.stats.twopc_aborts += 1;
                if e.is_user_abort() {
                    self.stats.user_aborts += 1;
                } else {
                    self.stats.failed += 1;
                }
                self.complete_batch(batch)?;
                Err(e)
            }
        }
    }

    /// Phase 2 of two-phase commit: apply the coordinator's decision to
    /// the held fragment. Commit drops the undo log, fires PE triggers on
    /// the fragment's emissions (scheduling local downstream TEs and/or
    /// cross-partition forwards), and drains; abort applies the undo log.
    /// Returns the fragment's outcome followed by any downstream TEs'.
    pub fn decide_fragment(&mut self, gtid: u64, commit: bool) -> Result<Vec<TxnOutcome>> {
        let frag = match self.prepared.take() {
            Some(f) if f.gtid == gtid => f,
            Some(f) => {
                let held = f.gtid;
                self.prepared = Some(f);
                return Err(Error::Txn(format!(
                    "decision for gtid {gtid} but partition {} holds gtid {held}",
                    self.config.partition
                )));
            }
            None => {
                return Err(Error::Txn(format!(
                    "no prepared fragment for gtid {gtid} on partition {}",
                    self.config.partition
                )))
            }
        };
        if let Err(e) = self
            .log_record(&LogRecord::Decision {
                gtid,
                batch: frag.batch,
                commit,
            })
            .and_then(|_| self.log_sync())
        {
            // The failed record was dropped from the log buffer, so
            // nothing of the decision is durable and nothing has been
            // applied — but the decision is already final at the
            // coordinator, and this partition can no longer make it
            // durable. Put the fragment back untouched and mark the
            // partition for a rebuild from disk: recovery resolves the
            // held fragment against the coordinator's decision map and
            // re-emits whatever the decision implies, exactly once.
            self.prepared = Some(frag);
            self.state_diverged = true;
            return Err(e);
        }
        if !self.replaying {
            // Kill point: the decision reached this participant and is
            // durable locally, but has not been applied. Replay must
            // finish the job from the log alone.
            fault::kill_point("decide-delivered");
        }
        let inv = Invocation {
            proc: frag.proc,
            batch: Batch::empty(frag.batch),
            origin: InvocationOrigin::Client,
        };
        let outcome = if commit {
            frag.undo.commit();
            self.stats.committed += 1;
            self.stats.twopc_commits += 1;
            self.commits_since_snapshot += 1;
            self.stats.record_latency(frag.start.elapsed().as_nanos());
            self.pending_outputs = frag.appended;
            TxnOutcome {
                txn: frag.txn,
                proc: frag.proc,
                batch: frag.batch,
                status: TxnStatus::Committed,
                response: frag.response,
                error: None,
            }
        } else {
            frag.undo.rollback(self.engine.db_mut())?;
            self.stats.twopc_aborts += 1;
            self.pending_outputs = Vec::new();
            TxnOutcome {
                txn: frag.txn,
                proc: frag.proc,
                batch: frag.batch,
                status: TxnStatus::Aborted,
                response: None,
                error: Some(format!("aborted by 2PC coordinator (gtid {gtid})")),
            }
        };
        self.post_te(&inv, &outcome)?;
        let mut outcomes = vec![outcome];
        outcomes.extend(self.drain()?);
        Ok(outcomes)
    }

    /// The gtid of the currently held fragment, if any.
    pub fn prepared_gtid(&self) -> Option<u64> {
        self.prepared.as_ref().map(|f| f.gtid)
    }

    /// Highest gtid ever prepared here (live or during replay). Cluster
    /// recovery resumes the coordinator's sequence past every
    /// partition's mark — gtids are never reused.
    pub fn max_gtid_seen(&self) -> u64 {
        self.max_gtid_seen
    }

    /// True when `proc` may run to completion while the currently held
    /// 2PC fragment awaits its decision, without observing or disturbing
    /// the fragment's uncommitted writes: the transitive workflow
    /// closures of the two procedures (own read/write sets plus every
    /// procedure their emissions can trigger) touch **disjoint** table
    /// sets. Disjointness makes the interleaving serializable in either
    /// order and keeps the fragment's undo independent, so a later abort
    /// rolls back cleanly past the speculated commit — and replay, which
    /// applies the fragment's decision at its log marker *before* the
    /// speculated invocation, converges to the identical state.
    pub fn speculation_safe(&self, proc: &str) -> bool {
        let Some(frag) = &self.prepared else {
            return false;
        };
        let Some(&pid) = self.by_name.get(proc) else {
            return false;
        };
        if self.procs[pid.raw() as usize].multi_partition {
            return false;
        }
        self.closure_tables(pid)
            .is_disjoint(&self.closure_tables(frag.proc))
    }

    /// Every table in the transitive workflow closure of `root`: its own
    /// read/write sets plus those of every procedure reachable through
    /// PE triggers on the streams it writes.
    fn closure_tables(&self, root: ProcId) -> std::collections::HashSet<TableId> {
        let mut seen = vec![false; self.procs.len()];
        let mut stack = vec![root];
        let mut tables = std::collections::HashSet::new();
        while let Some(pid) = stack.pop() {
            let i = pid.raw() as usize;
            if std::mem::replace(&mut seen[i], true) {
                continue;
            }
            let p = &self.procs[i];
            tables.extend(p.read_set.iter().copied());
            tables.extend(p.write_set.iter().copied());
            for &t in &p.write_set {
                stack.extend(self.workflow.consumers_of(t).iter().copied());
            }
        }
        tables
    }

    /// Early-prepare speculation: run a border batch verified
    /// [`Partition::speculation_safe`] against the held fragment while
    /// the 2PC decision is still in flight. The log orders the
    /// fragment's marker before this invocation, and replay resolves the
    /// marker (commit or abort) before replaying it — state convergence
    /// follows from the closure disjointness the safety check proved.
    /// Retention snapshots stay suppressed until the fragment resolves
    /// (an image must not capture uncommitted writes).
    pub fn submit_batch_speculative<R: Into<Row>>(
        &mut self,
        proc: &str,
        rows: Vec<R>,
    ) -> Result<Vec<TxnOutcome>> {
        if !self.speculation_safe(proc) {
            return Err(Error::Txn(format!(
                "`{proc}` conflicts with the prepared 2PC fragment; cannot speculate"
            )));
        }
        let pid = self.border_proc_id(proc)?;
        self.stats.client_pe_trips += 1;
        simulate_cost(self.config.client_trip_cost_micros);
        self.enqueue_border(pid, proc, rows.into_iter().map(Into::into).collect())?;
        self.speculating = true;
        let result = self.drain();
        self.speculating = false;
        let outcomes = result?;
        self.stats.speculative_tes += outcomes.len() as u64;
        Ok(outcomes)
    }

    // ---- cross-partition workflow edges ---------------------------------------

    /// Accept a batch forwarded over a cross-partition edge. Logs the
    /// forward (durably — the edge ack that releases the sender's
    /// upstream backup is only sent once this returns), deduplicates by
    /// `(src_partition, stream)` high-water mark, and enqueues one TE per
    /// consuming procedure. Returns the local batch id, or `None` when
    /// the forward was a duplicate (replay / re-forwarding after
    /// recovery). Call [`Partition::run_queued`] to execute.
    pub fn accept_forward(
        &mut self,
        stream: &str,
        src_partition: u32,
        src_batch: u64,
        rows: Vec<Row>,
    ) -> Result<Option<BatchId>> {
        // Consume the delivery's trace unconditionally: a dupe or a
        // refusal drops it (the re-forward brings a fresh push).
        let trace = self.pending_traces.pop_front();
        let sid = self.engine.db().resolve(stream)?;
        if !self.engine.db().kind(sid)?.is_stream() {
            return Err(Error::Constraint(format!("`{stream}` is not a stream")));
        }
        let key = (src_partition, stream.to_string());
        if src_batch <= self.edge_high_water.get(&key).copied().unwrap_or(0) {
            self.stats.forwards_deduped += 1;
            return Ok(None);
        }
        if let Some(&gap) = self.edge_gaps.get(&key) {
            if src_batch > gap {
                // Accepting this younger batch would advance the
                // high-water past the refused one and turn its eventual
                // re-forward into a "duplicate" — a silently lost batch.
                return Err(Error::Io(format!(
                    "edge `{stream}` from partition {src_partition} has an unfilled \
                     hole at source batch {gap}; refusing younger batch {src_batch} \
                     to preserve in-order exactly-once delivery"
                )));
            }
        }
        self.next_batch += 1;
        let batch = BatchId::new(self.next_batch);
        if let Err(e) = self
            .log_record(&LogRecord::Forward {
                batch,
                stream: stream.to_string(),
                src_partition,
                src_batch,
                rows: rows.clone(),
                ts: self.clock.now(),
            })
            .and_then(|_| self.log_sync())
        {
            // The forward is not durable here: leave the high-water
            // untouched (the ack is withheld, the sender re-forwards)
            // and mark the hole so no younger batch can leapfrog it.
            let gap = self.edge_gaps.entry(key).or_insert(src_batch);
            *gap = (*gap).min(src_batch);
            return Err(e);
        }
        self.edge_gaps.remove(&key);
        if !self.replaying {
            // Kill point: the forward is durable here but the edge ack
            // has not been sent — the sender must keep its upstream
            // backup and re-forward; dedupe makes that exactly-once.
            fault::kill_point("forward-logged");
        }
        self.edge_high_water.insert(key, src_batch);
        self.stats.forwards_in += 1;
        let consumers = self.workflow.consumers_of(sid).to_vec();
        if consumers.is_empty() {
            // No consumer deployed here: the forward is terminally
            // consumed on arrival (still logged + deduped, so replay and
            // the sender's upstream backup stay correct).
            self.stats.batches_completed += 1;
            self.log_record(&LogRecord::Ack { batch })?;
            return Ok(Some(batch));
        }
        self.batch_refs.insert(batch.raw(), consumers.len());
        if let Some(t) = trace {
            // Keep the originating submission's trace attached to the
            // local batch so onward hops (forwards emitted by this
            // batch's TEs) stay attributable to it.
            self.batch_traces.insert(batch.raw(), t);
        }
        for consumer in consumers {
            self.stats.pe_trigger_firings += 1;
            self.queue.push_back(Invocation {
                proc: consumer,
                batch: Batch::new(batch, rows.clone()),
                origin: InvocationOrigin::PeTrigger,
            });
        }
        Ok(Some(batch))
    }

    /// The receiving partition durably logged a forward of `batch`:
    /// release the edge's share of the emitting batch's upstream backup.
    /// When the last reference drops, the batch is acked and its input
    /// record becomes GC-eligible.
    pub fn edge_acked(&mut self, batch: BatchId) -> Result<()> {
        if let Some(&t) = self.batch_traces.get(&batch.raw()) {
            obs::record(Stage::Acked, t);
        }
        self.complete_batch(batch)
    }

    /// Drain the outbox of batches bound for other partitions.
    pub fn take_outbox(&mut self) -> Vec<RemoteForward> {
        std::mem::take(&mut self.outbox)
    }

    /// True when `batch` still has outstanding references (e.g. an edge
    /// forward whose receiver has not acked). Recovery must not blanket-
    /// ack such batches.
    pub fn has_pending_refs(&self, batch: BatchId) -> bool {
        self.batch_refs.contains_key(&batch.raw())
    }

    /// Names of procedures declared `multi_partition` (the cluster
    /// coordinator routes their border submissions through 2PC).
    pub fn multi_partition_procs(&self) -> Vec<String> {
        self.procs
            .iter()
            .filter(|p| p.multi_partition)
            .map(|p| p.name.clone())
            .collect()
    }

    /// Decrement `batch`'s reference count; ack it at zero.
    fn complete_batch(&mut self, batch: BatchId) -> Result<()> {
        if let Some(refs) = self.batch_refs.get_mut(&batch.raw()) {
            *refs -= 1;
            if *refs == 0 {
                self.batch_refs.remove(&batch.raw());
                self.batch_traces.remove(&batch.raw());
                self.stats.batches_completed += 1;
                self.log_record(&LogRecord::Ack { batch })?;
            }
        }
        Ok(())
    }

    /// Drain the ready queue, running TEs serially. At quiescence (the
    /// queue is empty again) the retention policy may snapshot + truncate.
    fn drain(&mut self) -> Result<Vec<TxnOutcome>> {
        if let Some(frag) = &self.prepared {
            // Serial-execution invariant: the prepared fragment's
            // uncommitted writes are sitting in storage; running another
            // TE now could read them and make an abort un-rollbackable.
            // The one exception is a speculative TE whose workflow
            // closure was proven disjoint from the fragment's.
            if !self.speculating {
                return Err(Error::Txn(format!(
                    "cannot run TEs while 2PC fragment gtid {} awaits its decision",
                    frag.gtid
                )));
            }
        }
        let mut outcomes = Vec::new();
        while let Some(inv) = self.queue.pop_front() {
            let outcome = self.run_te(&inv)?;
            self.post_te(&inv, &outcome)?;
            outcomes.push(outcome);
        }
        self.maybe_snapshot_for_retention();
        Ok(outcomes)
    }

    /// Apply `LogRetention`: when enough commits accumulated since the
    /// last snapshot, write one and truncate the log. Only at quiescence
    /// (callers guarantee the queue is empty) and never during replay.
    /// A failed snapshot must not fail the batch that just committed —
    /// the log still covers everything, so durability is intact; the
    /// failure is counted and the policy retries at the next quiescent
    /// point (`commits_since_snapshot` keeps accumulating).
    fn maybe_snapshot_for_retention(&mut self) {
        // A held fragment's uncommitted writes must never reach an image
        // (reachable only via speculative drains); retry once resolved.
        if self.replaying || self.log.is_none() || self.prepared.is_some() {
            return;
        }
        let Some(retention) = self.config.retention else {
            return;
        };
        if self.commits_since_snapshot >= retention.every_n_commits && self.snapshot().is_err() {
            self.stats.retention_failures += 1;
        }
    }

    fn serial_workflow(&self) -> bool {
        self.config
            .serial_workflow
            .unwrap_or_else(|| self.workflow.has_shared_writables())
    }

    /// Run one TE: execute the procedure body over its batch, commit or
    /// roll back atomically.
    fn run_te(&mut self, inv: &Invocation) -> Result<TxnOutcome> {
        let start = std::time::Instant::now();
        let txn = TxnId::new(self.next_txn);
        self.next_txn += 1;
        let now = self.clock.now();

        let proc = &self.procs[inv.proc.raw() as usize];
        let handler = proc.handler.clone();
        let output_stream = proc.output_stream;

        let mut scratch = TxnScratch::new(Some(inv.proc), inv.batch.id);
        let mut ctx = ProcContext {
            engine: &mut self.engine,
            scratch: &mut scratch,
            statements: &proc.statements,
            input: &inv.batch,
            now,
            output_stream,
            response: None,
            ee_trip_cost_micros: self.config.ee_trip_cost_micros,
            ee_trip_latency_micros: self.config.ee_trip_latency_micros,
        };
        let result = handler(&mut ctx);
        let response = ctx.response.take();

        let outcome = match result {
            Ok(()) => {
                scratch.undo.commit();
                self.stats.committed += 1;
                self.commits_since_snapshot += 1;
                self.stats.record_latency(start.elapsed().as_nanos());
                TxnOutcome {
                    txn,
                    proc: inv.proc,
                    batch: inv.batch.id,
                    status: TxnStatus::Committed,
                    response,
                    error: None,
                }
            }
            Err(e) => {
                scratch.undo.rollback(self.engine.db_mut())?;
                scratch.appended.clear();
                let status = if e.is_user_abort() {
                    self.stats.user_aborts += 1;
                    TxnStatus::Aborted
                } else {
                    self.stats.failed += 1;
                    TxnStatus::Failed
                };
                TxnOutcome {
                    txn,
                    proc: inv.proc,
                    batch: inv.batch.id,
                    status,
                    response: None,
                    error: Some(e.to_string()),
                }
            }
        };

        // Stash outputs for post_te (committed TEs only).
        self.pending_outputs = if outcome.is_committed() {
            scratch.appended
        } else {
            Vec::new()
        };
        Ok(outcome)
    }

    /// Post-commit bookkeeping: PE triggers, GC, batch completion acks.
    fn post_te(&mut self, inv: &Invocation, outcome: &TxnOutcome) -> Result<()> {
        let appended = std::mem::take(&mut self.pending_outputs);
        let b = inv.batch.id;

        if outcome.is_committed() {
            // Group emitted rows by stream, preserving first-append order.
            let mut order: Vec<TableId> = Vec::new();
            let mut by_stream: HashMap<TableId, Vec<Row>> = HashMap::new();
            for (stream, row) in appended {
                if !by_stream.contains_key(&stream) {
                    order.push(stream);
                }
                by_stream.entry(stream).or_default().push(row);
            }

            if self.config.pe_triggers_enabled && self.config.mode == ExecMode::SStore {
                let serial = self.serial_workflow();
                let mut to_schedule: Vec<Invocation> = Vec::new();
                for stream in &order {
                    let rows = &by_stream[stream];
                    // A declared cross-partition edge: buffer the batch in
                    // the outbox for the cluster router instead of firing
                    // local PE triggers. The emitting batch stays open
                    // (one extra ref) until the receiving partition has
                    // durably logged the forward — upstream backup across
                    // the edge.
                    if let Some(key_col) = self.workflow.remote_key_col(*stream) {
                        let name = self
                            .engine
                            .db()
                            .catalog()
                            .meta(*stream)
                            .map(|m| m.name.clone())
                            .ok_or_else(|| Error::NotFound(format!("stream {stream}")))?;
                        self.stats.forwards_out += 1;
                        *self.batch_refs.entry(b.raw()).or_insert(0) += 1;
                        // Source half of the edge's upstream backup: if a
                        // retention snapshot covers batch `b` before the
                        // edge ack arrives, replay will skip `b` — this
                        // record is then the only source of the envelope.
                        if let Err(e) = self.log_record(&LogRecord::ForwardOut {
                            batch: b,
                            stream: name.clone(),
                            key_col: key_col as u32,
                            rows: rows.clone(),
                        }) {
                            // Post-commit-point failure: the emitting
                            // batch is durable and applied, but its
                            // envelope can never be logged (the failed
                            // record was dropped from the buffer). Live
                            // state has diverged from what replay will
                            // produce — go down for a rebuild from disk,
                            // which re-runs the batch and re-creates the
                            // envelope.
                            self.state_diverged = true;
                            return Err(e);
                        }
                        self.outbox.push(RemoteForward {
                            stream: name,
                            key_col,
                            batch: b,
                            rows: rows.clone(),
                            trace: self.batch_traces.get(&b.raw()).copied(),
                        });
                        // The envelope holds shared row handles; the
                        // emitted tuples are terminally consumed locally.
                        self.engine.gc_stream(*stream, b)?;
                        continue;
                    }
                    let consumers = self.workflow.consumers_of(*stream).to_vec();
                    if !consumers.is_empty() {
                        self.gc_pending.insert((*stream, b.raw()), consumers.len());
                    }
                    for consumer in consumers {
                        self.stats.pe_trigger_firings += 1;
                        *self.batch_refs.entry(b.raw()).or_insert(0) += 1;
                        to_schedule.push(Invocation {
                            proc: consumer,
                            batch: Batch::new(b, rows.clone()),
                            origin: InvocationOrigin::PeTrigger,
                        });
                    }
                }
                if serial {
                    // Downstream of this batch runs before anything queued
                    // (whole-workflow serial execution).
                    for inv in to_schedule.into_iter().rev() {
                        self.queue.push_front(inv);
                    }
                } else {
                    self.queue.extend(to_schedule);
                }
            }
        }

        // GC this TE's *input* stream once all consumers are done. This
        // runs for aborted TEs too: the batch is terminally consumed either
        // way (upstream backup, not the stream table, is the replay source).
        if let Some(input) = self.procs[inv.proc.raw() as usize].input_stream {
            if let Some(remaining) = self.gc_pending.get_mut(&(input, b.raw())) {
                *remaining -= 1;
                if *remaining == 0 {
                    self.gc_pending.remove(&(input, b.raw()));
                    self.engine.gc_stream(input, b)?;
                }
            }
        }

        // Batch completion accounting.
        self.complete_batch(b)?;
        Ok(())
    }

    /// Append `record` to the command log. Returns whether the append
    /// triggered a group-commit fsync (so callers can resolve the
    /// `Fsynced` trace stage for everything the sync covered).
    fn log_record(&mut self, record: &LogRecord) -> Result<bool> {
        if self.replaying {
            return Ok(false);
        }
        if let Some(log) = &mut self.log {
            let synced = log.append(record)?;
            self.stats.log_records += 1;
            self.stats.log_syncs = log.syncs();
            return Ok(synced);
        }
        Ok(false)
    }

    /// Force the command log's buffered group down (2PC votes and edge
    /// acks must not sit in the group-commit buffer: the peer acts on
    /// them immediately).
    fn log_sync(&mut self) -> Result<()> {
        if self.replaying {
            return Ok(());
        }
        if let Some(log) = &mut self.log {
            log.sync()?;
            self.stats.log_syncs = log.syncs();
            self.flush_fsynced_traces();
        }
        Ok(())
    }

    // ---- batch lifecycle tracing ----------------------------------------------

    /// Attach a lifecycle trace to the next batch this partition creates
    /// (border enqueue, 2PC prepare, or accepted forward). Traces are
    /// consumed FIFO, so pushing one per batch before a group submission
    /// attributes them in batch-id order.
    pub fn push_pending_trace(&mut self, trace: TraceCtx) {
        self.pending_traces.push_back(trace);
    }

    /// The lifecycle trace attached to a live batch, if any.
    pub fn batch_trace(&self, batch: BatchId) -> Option<TraceCtx> {
        self.batch_traces.get(&batch.raw()).copied()
    }

    /// Bookkeeping after a batch's input record hit the log: record the
    /// `Logged` stage, remember the trace for the batch's later stages,
    /// and resolve `Fsynced` when the append triggered a group commit.
    fn note_batch_logged(&mut self, batch: BatchId, trace: Option<TraceCtx>, synced: bool) {
        if let Some(t) = trace {
            if self.log.is_some() && !self.replaying {
                obs::record(Stage::Logged, t);
                self.unsynced_traces.push(t);
            }
            self.batch_traces.insert(batch.raw(), t);
        }
        if synced {
            self.flush_fsynced_traces();
        }
    }

    /// A durable fsync just covered every buffered record: resolve the
    /// `Fsynced` stage for the traces that were waiting on it.
    fn flush_fsynced_traces(&mut self) {
        for t in self.unsynced_traces.drain(..) {
            obs::record(Stage::Fsynced, t);
        }
    }

    /// Read rows currently buffered in a sink stream (a stream with no
    /// consuming procedure), returning the visible columns and deleting the
    /// consumed tuples — the client-side tap of the demo dashboards.
    pub fn drain_sink(&mut self, stream: &str) -> Result<Vec<Row>> {
        self.stats.client_pe_trips += 1;
        simulate_cost(self.config.client_trip_cost_micros);
        let sid = self.engine.db().resolve(stream)?;
        if !self.engine.db().kind(sid)?.is_stream() {
            return Err(Error::Constraint(format!("`{stream}` is not a stream")));
        }
        if !self.workflow.consumers_of(sid).is_empty() {
            return Err(Error::Schedule(format!(
                "`{stream}` has workflow consumers; draining it would steal their input"
            )));
        }
        let meta = self
            .engine
            .db()
            .catalog()
            .meta(sid)
            .ok_or_else(|| Error::NotFound(format!("stream `{stream}`")))?;
        let visible_arity = meta.visible_schema.arity();
        let rows: Vec<Row> = self
            .engine
            .db()
            .table(sid)?
            .scan()
            .map(|(_, r)| r.prefix(visible_arity))
            .collect();
        // Everything in a sink stream is by definition consumed now.
        self.engine.gc_stream(sid, BatchId::new(self.next_batch))?;
        Ok(rows)
    }

    // ---- durability ------------------------------------------------------------

    /// Write a snapshot and garbage-collect the command log. Must be
    /// called at quiescence (drain() is synchronous, so any time between
    /// client calls).
    ///
    /// The log GC drops every record of a batch that is both acked and
    /// covered by the fresh snapshot ([`CommandLog::gc_acked_through`]);
    /// at quiescence that empties the log, but unacked records — possible
    /// once workflows span partitions — are always kept replayable. The
    /// rewrite also migrates a sniffed legacy-JSON log to the configured
    /// format.
    pub fn snapshot(&mut self) -> Result<()> {
        if self.durability_poisoned() {
            // Live state no longer matches what the log will replay; a
            // snapshot here would make the divergence durable.
            return Err(Error::Recovery(
                "cannot snapshot: durability is poisoned — rebuild the \
                 partition from disk first"
                    .into(),
            ));
        }
        if let Some(frag) = &self.prepared {
            return Err(Error::Txn(format!(
                "cannot snapshot while 2PC fragment gtid {} awaits its decision \
                 (uncommitted writes are in storage)",
                frag.gtid
            )));
        }
        let cfg = self
            .config
            .log
            .clone()
            .ok_or_else(|| Error::Io("snapshots require a log directory".into()))?;
        let last_txn = Some(TxnId::new(self.next_txn.saturating_sub(1)));
        let last_batch = Some(BatchId::new(self.next_batch));
        let clock_micros = self.clock.now();
        // An incremental delta is written when the previous image exists
        // (its key is the chain link), the chain is under its cap, the
        // format is binary (the JSON envelope stays full-image), and the
        // operator hasn't forced full images (`SSTORE_SNAPSHOT=full`).
        let use_delta = cfg.format == sstore_common::DurabilityFormat::Binary
            && !delta_snapshots_disabled()
            && self.snapshot_chain_len < cfg.delta_chain_cap
            && self.last_snapshot_key.is_some();
        if use_delta {
            let base = self.last_snapshot_key.expect("checked above");
            let k = self.snapshot_chain_len + 1;
            let delta = SnapshotDelta::capture(
                self.engine.db(),
                base,
                k,
                last_txn,
                last_batch,
                clock_micros,
            );
            delta.write_to(&cfg.delta_snapshot_path(k))?;
            self.snapshot_chain_len = k;
            self.stats.snapshots_delta += 1;
        } else {
            let snap = Snapshot::capture(self.engine.db(), last_txn, last_batch, clock_micros);
            snap.write_to(&cfg.snapshot_path(), cfg.format)?;
            // A pre-binary snapshot under the legacy name is now
            // superseded; leaving it would let a future recovery read
            // stale state.
            let _ = std::fs::remove_file(cfg.legacy_snapshot_path());
            // Deltas of the superseded chain are harmless (their base key
            // no longer matches) but delete them for disk hygiene. A
            // crash mid-deletion leaves strays the chain walk rejects.
            let mut k = 1;
            while std::fs::remove_file(cfg.delta_snapshot_path(k)).is_ok() {
                k += 1;
            }
            self.snapshot_chain_len = 0;
            self.stats.snapshots_full += 1;
        }
        self.last_snapshot_key = Some(SnapshotKey {
            last_txn,
            last_batch,
            clock_micros,
        });
        // Fresh journals: the next delta describes changes since *this*
        // image (works after both branches — a delta lands the full
        // current state in the chain too). Skipped entirely when deltas
        // can never be cut, so full-only configs pay no tracking cost.
        if cfg.format == sstore_common::DurabilityFormat::Binary
            && !delta_snapshots_disabled()
            && cfg.delta_chain_cap > 0
        {
            self.engine.db_mut().enable_change_tracking();
        }
        if let Some(log) = &mut self.log {
            self.stats.log_gc_dropped += log.gc_acked_through(BatchId::new(self.next_batch))?;
        }
        // Persist the edge high-water marks past the GC: a forwarded
        // batch's record may just have been dropped (acked + covered), and
        // without the marks a post-recovery re-forward from an upstream
        // partition would execute twice.
        if !self.edge_high_water.is_empty() {
            let mut entries: Vec<(u32, String, u64)> = self
                .edge_high_water
                .iter()
                .map(|((src, stream), &hw)| (*src, stream.clone(), hw))
                .collect();
            entries.sort();
            self.log_record(&LogRecord::EdgeHighWater { entries })?;
            self.log_sync()?;
        }
        self.commits_since_snapshot = 0;
        Ok(())
    }

    /// Internal: used by recovery to restore state and replay.
    /// `chain_len` is the number of deltas the loaded snapshot chain
    /// already carries: when `continue_chain` is set, the next retention
    /// point extends the chain from there (the restored key is the link)
    /// instead of forcing a full rewrite. Recovery clears the flag when
    /// the image came from the legacy JSON path — deltas only ever chain
    /// onto `snapshot.dat`.
    pub(crate) fn restore_for_recovery(
        &mut self,
        snapshot: Option<Snapshot>,
        chain_len: u64,
        continue_chain: bool,
    ) -> Result<()> {
        if let Some(snap) = snapshot {
            self.next_batch = snap.last_batch.map(BatchId::raw).unwrap_or(0);
            self.next_txn = snap.last_txn.map(|t| t.raw() + 1).unwrap_or(1);
            self.clock = Clock::starting_at(snap.clock_micros);
            self.replay_covered = self.next_batch;
            if continue_chain {
                self.last_snapshot_key = Some(snap.key());
                self.snapshot_chain_len = chain_len;
            }
            self.engine.restore_db(snap.database);
            // Track replayed mutations: they are exactly the changes
            // since the chain tail, so the next image can be a delta.
            if continue_chain
                && self.config.log.as_ref().is_some_and(|c| {
                    c.format == sstore_common::DurabilityFormat::Binary && c.delta_chain_cap > 0
                })
                && !delta_snapshots_disabled()
            {
                self.engine.db_mut().enable_change_tracking();
            }
        }
        Ok(())
    }

    /// Internal: append fresh Ack records for `batches` (recovery path).
    /// Replay suppresses re-logging, so a batch whose pre-crash Ack was
    /// lost in a torn tail would otherwise stay unacked forever and its
    /// input record would survive every retention GC.
    pub(crate) fn ack_batches(&mut self, batches: &[BatchId]) -> Result<()> {
        for &batch in batches {
            self.log_record(&LogRecord::Ack { batch })?;
        }
        Ok(())
    }

    /// Internal: replay one log record (recovery path). `decision` is the
    /// resolved global outcome for [`LogRecord::PrepareMarker`] records
    /// (from the local log's Decision records, or the coordinator's
    /// decision log) — `None` means in doubt, which aborts
    /// deterministically (presumed abort).
    pub(crate) fn replay_record(
        &mut self,
        record: LogRecord,
        decision: Option<bool>,
    ) -> Result<()> {
        match record {
            LogRecord::BorderBatch {
                batch,
                proc,
                rows,
                ts,
            } => {
                if batch.raw() <= self.next_batch {
                    return Ok(()); // covered by the snapshot
                }
                self.clock.advance_to(ts);
                self.replaying = true;
                self.next_batch = batch.raw() - 1; // submit_batch re-increments
                let r = self.submit_batch(&proc, rows);
                self.replaying = false;
                r.map(|_| ())
            }
            LogRecord::Invocation {
                batch,
                proc,
                rows,
                ts,
            } => {
                if batch.raw() <= self.next_batch {
                    return Ok(());
                }
                self.clock.advance_to(ts);
                self.replaying = true;
                self.next_batch = batch.raw() - 1;
                let r = self.invoke(&proc, rows);
                self.replaying = false;
                r.map(|_| ())
            }
            LogRecord::PrepareMarker {
                gtid,
                batch,
                proc,
                rows,
                ts,
            } => {
                self.max_gtid_seen = self.max_gtid_seen.max(gtid);
                if batch.raw() <= self.next_batch {
                    return Ok(());
                }
                self.clock.advance_to(ts);
                match decision {
                    Some(true) => {
                        // Re-run the fragment exactly as live execution
                        // did: prepare (undo held) then commit + triggers.
                        self.replaying = true;
                        self.next_batch = batch.raw() - 1;
                        let r = self
                            .prepare_fragment(gtid, &proc, rows)
                            .and_then(|_| self.decide_fragment(gtid, true));
                        self.replaying = false;
                        r.map(|_| ())
                    }
                    aborted => {
                        // Aborted (or in doubt → presumed abort): the
                        // pre-crash execution had zero net state effect;
                        // consume the same batch/txn ids and move on.
                        self.next_batch = batch.raw();
                        self.next_txn += 1;
                        if aborted.is_none() {
                            self.stats.twopc_in_doubt_aborts += 1;
                        }
                        self.stats.twopc_aborts += 1;
                        Ok(())
                    }
                }
            }
            // Effects of decisions are applied at their PrepareMarker
            // (the caller resolves them by lookahead); only the gtid
            // sequencing mark advances here.
            LogRecord::Decision { gtid, .. } => {
                self.max_gtid_seen = self.max_gtid_seen.max(gtid);
                Ok(())
            }
            LogRecord::Forward {
                batch,
                stream,
                src_partition,
                src_batch,
                rows,
                ts,
            } => {
                if batch.raw() <= self.next_batch {
                    // Snapshot-covered: the execution is in the image, but
                    // the dedup mark must still advance.
                    let hw = self
                        .edge_high_water
                        .entry((src_partition, stream))
                        .or_insert(0);
                    *hw = (*hw).max(src_batch);
                    return Ok(());
                }
                self.clock.advance_to(ts);
                self.replaying = true;
                self.next_batch = batch.raw() - 1;
                let r = self
                    .accept_forward(&stream, src_partition, src_batch, rows)
                    .and_then(|_| self.run_queued());
                self.replaying = false;
                r.map(|_| ())
            }
            LogRecord::EdgeHighWater { entries } => {
                for (src, stream, hw) in entries {
                    let mark = self.edge_high_water.entry((src, stream)).or_insert(0);
                    *mark = (*mark).max(hw);
                }
                Ok(())
            }
            LogRecord::ForwardOut {
                batch,
                stream,
                key_col,
                rows,
            } => {
                if batch.raw() > self.replay_covered {
                    // The emitting batch was replayed above and its
                    // execution already rebuilt this envelope (and its
                    // upstream-backup reference).
                    return Ok(());
                }
                // Snapshot-covered emitter: replay skipped it, so the
                // envelope exists only here. Rebuild it for the cluster
                // runtime to re-forward — the receiver's high-water
                // dedupe makes delivery exactly-once even if the
                // original send arrived. The reference keeps recovery
                // from blanket-acking the batch before the edge acks.
                *self.batch_refs.entry(batch.raw()).or_insert(0) += 1;
                self.outbox.push(RemoteForward {
                    stream,
                    key_col: key_col as usize,
                    batch,
                    rows,
                    trace: None,
                });
                Ok(())
            }
            LogRecord::Ack { .. } => Ok(()),
        }
    }

    /// Internal: append fresh Decision records (recovery path) for
    /// fragments whose outcome was resolved from the coordinator's
    /// decision log (or by presumed abort), so the next recovery is
    /// self-contained.
    pub(crate) fn append_decisions(&mut self, decisions: &[(u64, BatchId, bool)]) -> Result<()> {
        for &(gtid, batch, commit) in decisions {
            self.log_record(&LogRecord::Decision {
                gtid,
                batch,
                commit,
            })?;
        }
        self.log_sync()
    }
}

/// `SSTORE_SNAPSHOT=full` forces every retention point to write a full
/// base image (the pre-delta behavior), for A/B measurement and as an
/// operational escape hatch. Any other value (or unset) allows deltas.
fn delta_snapshots_disabled() -> bool {
    matches!(
        std::env::var("SSTORE_SNAPSHOT").as_deref(),
        Ok("full") | Ok("FULL")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::procedure::ProcSpec;

    /// votes_in -> validate -> validated -> count
    /// `validate` drops negative values; `count` bumps a counter table.
    /// Deployment is a standalone function so recovery can redeploy it.
    fn deploy_pipeline(p: &mut Partition) -> Result<()> {
        p.ddl("CREATE STREAM votes_in (v INT)")?;
        p.ddl("CREATE STREAM validated (v INT)")?;
        p.ddl("CREATE TABLE totals (k INT NOT NULL, n INT NOT NULL, PRIMARY KEY (k))")?;
        let mut sc = TxnScratch::new(None, BatchId::new(0));
        p.engine_mut()
            .execute_sql("INSERT INTO totals VALUES (1, 0)", &[], &mut sc, 0)?;

        p.register(
            ProcSpec::new("validate", |ctx| {
                let rows = ctx.input().rows.clone();
                for row in rows {
                    if row[0].as_int()? >= 0 {
                        ctx.emit(row)?;
                    }
                }
                Ok(())
            })
            .consumes("votes_in")
            .emits("validated"),
        )?;

        p.register(
            ProcSpec::new("count", |ctx| {
                let n = ctx.input().len() as i64;
                ctx.exec("bump", &[Value::Int(n)])?;
                Ok(())
            })
            .consumes("validated")
            .stmt("bump", "UPDATE totals SET n = n + ? WHERE k = 1"),
        )?;
        Ok(())
    }

    fn pipeline(config: PeConfig) -> Partition {
        let mut p = Partition::new(config).unwrap();
        deploy_pipeline(&mut p).unwrap();
        p
    }

    fn total(p: &mut Partition) -> i64 {
        p.query("SELECT n FROM totals WHERE k = 1", &[])
            .unwrap()
            .scalar_i64()
            .unwrap()
    }

    #[test]
    fn workflow_pushes_batches_downstream() {
        let mut p = pipeline(PeConfig::default());
        let outcomes = p
            .submit_batch(
                "validate",
                vec![
                    vec![Value::Int(1)],
                    vec![Value::Int(-5)],
                    vec![Value::Int(2)],
                ],
            )
            .unwrap();
        // Two TEs: validate then count, same batch id.
        assert_eq!(outcomes.len(), 2);
        assert!(outcomes.iter().all(|o| o.is_committed()));
        assert_eq!(outcomes[0].batch, outcomes[1].batch);
        assert_eq!(total(&mut p), 2);
        assert_eq!(p.stats().pe_trigger_firings, 1);
        assert_eq!(p.stats().batches_completed, 1);
    }

    #[test]
    fn empty_output_skips_downstream() {
        let mut p = pipeline(PeConfig::default());
        let outcomes = p
            .submit_batch("validate", vec![vec![Value::Int(-1)]])
            .unwrap();
        assert_eq!(outcomes.len(), 1);
        assert_eq!(total(&mut p), 0);
        assert_eq!(p.stats().batches_completed, 1);
    }

    #[test]
    fn interior_procs_rejected_from_clients_in_sstore_mode() {
        let mut p = pipeline(PeConfig::default());
        let err = p.submit_batch::<Row>("count", vec![]).unwrap_err();
        assert_eq!(err.kind(), "schedule");
    }

    #[test]
    fn hstore_mode_requires_client_driving() {
        let mut p = pipeline(PeConfig::hstore());
        // Client invokes validate; downstream does NOT fire.
        p.invoke("validate", vec![vec![Value::Int(1)]]).unwrap();
        assert_eq!(total(&mut p), 0);
        assert_eq!(p.stats().pe_trigger_firings, 0);
        // Client must poll/invoke downstream itself.
        p.invoke("count", vec![vec![Value::Int(1)]]).unwrap();
        assert_eq!(total(&mut p), 1);
        // That cost two extra client trips (one per invocation) plus the
        // query trips.
        assert!(p.stats().client_pe_trips >= 2);
    }

    #[test]
    fn aborted_te_has_no_effects_and_no_downstream() {
        let mut p = Partition::new(PeConfig::default()).unwrap();
        p.ddl("CREATE STREAM s_in (v INT)").unwrap();
        p.ddl("CREATE STREAM s_out (v INT)").unwrap();
        p.ddl("CREATE TABLE t (id INT NOT NULL, PRIMARY KEY (id))")
            .unwrap();
        p.register(
            ProcSpec::new("flaky", |ctx| {
                ctx.exec("ins", &[Value::Int(1)])?;
                ctx.emit(vec![Value::Int(9)])?;
                Err(ctx.abort("changed my mind"))
            })
            .consumes("s_in")
            .emits("s_out")
            .stmt("ins", "INSERT INTO t VALUES (?)"),
        )
        .unwrap();
        p.register(ProcSpec::new("sink_proc", |_ctx| Ok(())).consumes("s_out"))
            .unwrap();

        let outcomes = p.submit_batch("flaky", vec![vec![Value::Int(1)]]).unwrap();
        assert_eq!(outcomes.len(), 1);
        assert_eq!(outcomes[0].status, TxnStatus::Aborted);
        // Table write rolled back; stream append rolled back; no trigger.
        assert_eq!(
            p.query("SELECT COUNT(*) FROM t", &[])
                .unwrap()
                .scalar_i64()
                .unwrap(),
            0
        );
        assert_eq!(p.stats().pe_trigger_firings, 0);
        assert_eq!(p.stats().user_aborts, 1);
    }

    #[test]
    fn te_order_and_batch_order_preserved() {
        // Record (proc, batch) execution order via a table.
        let mut p = Partition::new(PeConfig::default()).unwrap();
        p.ddl("CREATE STREAM a_in (v INT)").unwrap();
        p.ddl("CREATE STREAM a_mid (v INT)").unwrap();
        p.ddl("CREATE TABLE trace (seq INT NOT NULL, tag VARCHAR, b INT, PRIMARY KEY (seq))")
            .unwrap();
        p.ddl("CREATE TABLE seqgen (k INT NOT NULL, n INT NOT NULL, PRIMARY KEY (k))")
            .unwrap();
        let mut sc = TxnScratch::new(None, BatchId::new(0));
        p.engine_mut()
            .execute_sql("INSERT INTO seqgen VALUES (1, 0)", &[], &mut sc, 0)
            .unwrap();

        let trace = |tag: &'static str| {
            move |ctx: &mut ProcContext<'_>| {
                ctx.sql("UPDATE seqgen SET n = n + 1 WHERE k = 1", &[])?;
                let seq = ctx
                    .sql("SELECT n FROM seqgen WHERE k = 1", &[])?
                    .scalar_i64()?;
                let b = ctx.input().id.raw() as i64;
                ctx.sql(
                    "INSERT INTO trace VALUES (?, ?, ?)",
                    &[Value::Int(seq), Value::Text(tag.into()), Value::Int(b)],
                )?;
                if tag == "first" {
                    for row in ctx.input().rows.clone() {
                        ctx.emit(row)?;
                    }
                }
                Ok(())
            }
        };
        p.register(
            ProcSpec::new("first", trace("first"))
                .consumes("a_in")
                .emits("a_mid"),
        )
        .unwrap();
        p.register(ProcSpec::new("second", trace("second")).consumes("a_mid"))
            .unwrap();

        for i in 0..3 {
            p.submit_batch::<Row>("a_in_is_wrong", vec![]).err(); // wrong name ignored
            p.submit_batch("first", vec![vec![Value::Int(i)]]).unwrap();
        }
        let r = p
            .query("SELECT tag, b FROM trace ORDER BY seq", &[])
            .unwrap();
        // Workflow order per batch: first(b) before second(b); batch order
        // per proc: b strictly increasing for each tag.
        let mut first_batches = vec![];
        let mut second_batches = vec![];
        let mut seen_first: HashMap<i64, usize> = HashMap::new();
        for (i, row) in r.rows.iter().enumerate() {
            let tag = row[0].as_text().unwrap().to_string();
            let b = row[1].as_int().unwrap();
            if tag == "first" {
                seen_first.insert(b, i);
                first_batches.push(b);
            } else {
                assert!(seen_first[&b] < i, "workflow order violated");
                second_batches.push(b);
            }
        }
        let mut sorted = first_batches.clone();
        sorted.sort_unstable();
        assert_eq!(first_batches, sorted, "TE order violated for `first`");
        let mut sorted = second_batches.clone();
        sorted.sort_unstable();
        assert_eq!(second_batches, sorted, "TE order violated for `second`");
    }

    #[test]
    fn grouped_submission_matches_one_by_one_with_fewer_trips() {
        let batches: Vec<Vec<Row>> = (0..6)
            .map(|i| vec![vec![Value::Int(i)].into(), vec![Value::Int(-i)].into()])
            .collect();

        // Reference: one submission at a time.
        let mut one_by_one = pipeline(PeConfig::default());
        for b in batches.clone() {
            one_by_one.submit_batch("validate", b).unwrap();
        }
        let reference = total(&mut one_by_one);
        let reference_trips = one_by_one.stats().client_pe_trips;

        // Coalesced: the whole group in one scheduler pass.
        let mut grouped = pipeline(PeConfig::default());
        let results = grouped
            .submit_batch_group("validate", batches.clone())
            .unwrap();
        assert_eq!(results.len(), batches.len());
        // Each submission resolves to its own workflow TEs (validate +
        // count when anything passed validation), committed, same batch.
        for result in &results {
            let group = result.as_ref().unwrap();
            assert!(!group.is_empty());
            assert!(group.iter().all(|o| o.is_committed()));
            assert!(group.iter().all(|o| o.batch == group[0].batch));
        }
        assert_eq!(total(&mut grouped), reference);
        assert_eq!(grouped.stats().group_submissions, 1);
        assert_eq!(grouped.stats().batches_coalesced, 6);
        // The whole group cost ONE client trip; one-by-one cost six.
        // (Both also paid query trips from `total`.)
        assert_eq!(reference_trips - grouped.stats().client_pe_trips, 5);
    }

    #[test]
    fn grouped_submission_rejects_interior_procs_and_empty_is_noop() {
        let mut p = pipeline(PeConfig::default());
        let err = p
            .submit_batch_group("count", vec![vec![vec![Value::Int(1)]]])
            .unwrap_err();
        assert_eq!(err.kind(), "schedule");
        assert!(p
            .submit_batch_group::<Row>("validate", vec![])
            .unwrap()
            .is_empty());
    }

    #[test]
    fn retention_truncates_log_and_recovery_still_works() {
        use crate::log::{read_log, LogRetention};
        use crate::recovery::recover;

        let dir = std::env::temp_dir().join(format!("sstore-retention-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let config = PeConfig {
            log: Some(LogConfig::new(&dir)),
            retention: Some(LogRetention::every_n_commits(4)),
            ..PeConfig::default()
        };
        let mut p = pipeline(config.clone());
        for i in 0..10 {
            p.submit_batch("validate", vec![vec![Value::Int(i)]])
                .unwrap();
        }
        let reference = total(&mut p);
        assert_eq!(reference, 10);

        // Each accepted batch commits 2 TEs (validate + count); the policy
        // fired multiple times, so the log holds far fewer than the 10
        // submitted border records, and a snapshot exists.
        let tail = read_log(&LogConfig::new(&dir).log_path()).unwrap();
        assert!(
            tail.len() < 10,
            "retention never truncated: {} records",
            tail.len()
        );
        assert!(LogConfig::new(&dir).snapshot_path().exists());

        // Crash + recover: snapshot + log tail reproduce the state. The
        // redeploy closure rebuilds the same schema and procedures.
        drop(p);
        let mut recovered = recover(config, deploy_pipeline).unwrap();
        assert_eq!(total(&mut recovered), reference);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn consumed_stream_batches_are_garbage_collected() {
        let mut p = pipeline(PeConfig::default());
        p.submit_batch("validate", vec![vec![Value::Int(1)], vec![Value::Int(2)]])
            .unwrap();
        // The intermediate stream is empty after consumption.
        let validated = p.engine().db().resolve("validated").unwrap();
        assert_eq!(p.engine().db().table(validated).unwrap().len(), 0);
        assert!(p.engine().stats().rows_gcd >= 2);
    }

    #[test]
    fn drain_sink_reads_and_clears() {
        let mut p = Partition::new(PeConfig::default()).unwrap();
        p.ddl("CREATE STREAM in_s (v INT)").unwrap();
        p.ddl("CREATE STREAM alerts (v INT)").unwrap();
        p.register(
            ProcSpec::new("alerting", |ctx| {
                for row in ctx.input().rows.clone() {
                    ctx.emit(row)?;
                }
                Ok(())
            })
            .consumes("in_s")
            .emits("alerts"),
        )
        .unwrap();
        p.submit_batch("alerting", vec![vec![Value::Int(7)]])
            .unwrap();
        let rows = p.drain_sink("alerts").unwrap();
        assert_eq!(rows, vec![vec![Value::Int(7)]]);
        assert!(p.drain_sink("alerts").unwrap().is_empty());
        // Draining a consumed stream is refused.
        let mut p2 = pipeline(PeConfig::default());
        assert!(p2.drain_sink("validated").is_err());
    }

    #[test]
    fn prepared_fragment_commits_on_decision_and_fires_triggers() {
        let mut p = pipeline(PeConfig::default());
        let b = p
            .prepare_fragment(
                7,
                "validate",
                vec![vec![Value::Int(1)], vec![Value::Int(2)]],
            )
            .unwrap();
        // Held open: nothing committed yet, no downstream TE ran.
        assert_eq!(p.prepared_gtid(), Some(7));
        assert_eq!(p.stats().committed, 0);
        let outcomes = p.decide_fragment(7, true).unwrap();
        // Fragment TE + downstream count TE, same batch.
        assert_eq!(outcomes.len(), 2);
        assert!(outcomes.iter().all(|o| o.is_committed()));
        assert_eq!(outcomes[0].batch, b);
        assert_eq!(total(&mut p), 2);
        let s = p.stats();
        assert_eq!(s.twopc_prepares, 1);
        assert_eq!(s.twopc_commits, 1);
        assert_eq!(s.batches_completed, 1);
        assert_eq!(p.prepared_gtid(), None);
    }

    #[test]
    fn prepared_fragment_aborts_on_decision_with_no_effects() {
        let mut p = pipeline(PeConfig::default());
        p.prepare_fragment(9, "validate", vec![vec![Value::Int(5)]])
            .unwrap();
        let outcomes = p.decide_fragment(9, false).unwrap();
        assert_eq!(outcomes.len(), 1);
        assert_eq!(outcomes[0].status, TxnStatus::Aborted);
        assert_eq!(total(&mut p), 0);
        assert_eq!(p.stats().twopc_aborts, 1);
        assert_eq!(p.stats().pe_trigger_firings, 0);
        // The partition keeps working normally afterwards.
        p.submit_batch("validate", vec![vec![Value::Int(1)]])
            .unwrap();
        assert_eq!(total(&mut p), 1);
    }

    #[test]
    fn failing_fragment_votes_no_and_rolls_back() {
        let mut p = Partition::new(PeConfig::default()).unwrap();
        p.ddl("CREATE STREAM s_in (v INT)").unwrap();
        p.ddl("CREATE TABLE t (id INT NOT NULL, PRIMARY KEY (id))")
            .unwrap();
        p.register(
            ProcSpec::new("boom", |ctx| {
                ctx.exec("ins", &[Value::Int(1)])?;
                Err(ctx.abort("no thanks"))
            })
            .consumes("s_in")
            .stmt("ins", "INSERT INTO t VALUES (?)"),
        )
        .unwrap();
        let err = p
            .prepare_fragment(3, "boom", vec![vec![Value::Int(1)]])
            .unwrap_err();
        assert!(err.is_user_abort());
        assert_eq!(p.prepared_gtid(), None);
        assert_eq!(
            p.query("SELECT COUNT(*) FROM t", &[])
                .unwrap()
                .scalar_i64()
                .unwrap(),
            0
        );
        // The abort is decided locally; a later coordinator abort round
        // has nothing to do.
        assert!(p.decide_fragment(3, false).is_err());
        assert_eq!(p.stats().twopc_aborts, 1);
    }

    #[test]
    fn mismatched_decision_is_rejected_and_fragment_survives() {
        let mut p = pipeline(PeConfig::default());
        p.prepare_fragment(1, "validate", vec![vec![Value::Int(1)]])
            .unwrap();
        assert!(p.decide_fragment(2, true).is_err());
        assert_eq!(p.prepared_gtid(), Some(1));
        // A second prepare while one is held is refused.
        assert!(p
            .prepare_fragment(3, "validate", vec![vec![Value::Int(1)]])
            .is_err());
        p.decide_fragment(1, true).unwrap();
        assert_eq!(total(&mut p), 1);
    }

    /// audit_in -> audit -> audit_log: a workflow whose closure is disjoint
    /// from the validate/count pipeline, so it can run speculatively while
    /// a `validate` fragment is prepared.
    fn deploy_audit(p: &mut Partition) -> Result<()> {
        p.ddl("CREATE STREAM audit_in (v INT)")?;
        p.ddl("CREATE TABLE audit_log (k INT NOT NULL, n INT NOT NULL, PRIMARY KEY (k))")?;
        let mut sc = TxnScratch::new(None, BatchId::new(0));
        p.engine_mut()
            .execute_sql("INSERT INTO audit_log VALUES (1, 0)", &[], &mut sc, 0)?;
        p.register(
            ProcSpec::new("audit", |ctx| {
                let n = ctx.input().len() as i64;
                ctx.exec("bump", &[Value::Int(n)])?;
                Ok(())
            })
            .consumes("audit_in")
            .stmt("bump", "UPDATE audit_log SET n = n + ? WHERE k = 1"),
        )?;
        Ok(())
    }

    fn audit_total(p: &mut Partition) -> i64 {
        p.query("SELECT n FROM audit_log WHERE k = 1", &[])
            .unwrap()
            .scalar_i64()
            .unwrap()
    }

    #[test]
    fn speculation_requires_disjoint_closure() {
        let mut p = pipeline(PeConfig::default());
        deploy_audit(&mut p).unwrap();
        // No fragment prepared: nothing to speculate past.
        assert!(!p.speculation_safe("audit"));
        p.prepare_fragment(5, "validate", vec![vec![Value::Int(1)]])
            .unwrap();
        // Disjoint workflow may run; the fragment's own pipeline may not.
        assert!(p.speculation_safe("audit"));
        assert!(!p.speculation_safe("validate"));
        assert!(!p.speculation_safe("no_such_proc"));
        let err = p
            .submit_batch_speculative("validate", vec![vec![Value::Int(2)]])
            .unwrap_err();
        assert_eq!(err.kind(), "txn");
        // Plain submission stays refused while the fragment is held.
        assert!(p.submit_batch("audit", vec![vec![Value::Int(1)]]).is_err());
        p.decide_fragment(5, true).unwrap();
    }

    #[test]
    fn speculative_te_commits_and_survives_fragment_abort() {
        let mut p = pipeline(PeConfig::default());
        deploy_audit(&mut p).unwrap();
        p.prepare_fragment(8, "validate", vec![vec![Value::Int(3)]])
            .unwrap();
        let outcomes = p
            .submit_batch_speculative("audit", vec![vec![Value::Int(1)], vec![Value::Int(2)]])
            .unwrap();
        assert!(outcomes.iter().all(|o| o.is_committed()));
        assert_eq!(audit_total(&mut p), 2);
        assert_eq!(p.stats().speculative_tes, 1);
        // The fragment is still held and aborts cleanly; the speculative
        // commit is unaffected (disjoint tables, so no cascade).
        assert_eq!(p.prepared_gtid(), Some(8));
        p.decide_fragment(8, false).unwrap();
        assert_eq!(audit_total(&mut p), 2);
        assert_eq!(total(&mut p), 0);
    }

    #[test]
    fn speculative_te_replays_equivalently_after_crash() {
        use crate::recovery::recover_with_decisions;

        let dir = std::env::temp_dir().join(format!("sstore-spec-replay-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = PeConfig {
            log: Some(LogConfig::new(&dir)),
            ..PeConfig::default()
        };
        let deploy = |p: &mut Partition| {
            deploy_pipeline(p)?;
            deploy_audit(p)
        };
        let mut p = Partition::new(config.clone()).unwrap();
        deploy(&mut p).unwrap();
        p.prepare_fragment(4, "validate", vec![vec![Value::Int(9)]])
            .unwrap();
        p.submit_batch_speculative("audit", vec![vec![Value::Int(1)]])
            .unwrap();
        p.decide_fragment(4, true).unwrap();
        let live = (total(&mut p), audit_total(&mut p));
        assert_eq!(live, (1, 1));

        // Crash + replay: the speculative batch was logged between the
        // prepare marker and the decision; replay resolves the fragment at
        // its marker, then the speculative record — same end state.
        drop(p);
        let decisions = std::collections::HashMap::from([(4u64, true)]);
        let mut r = recover_with_decisions(config, deploy, &decisions).unwrap();
        assert_eq!((total(&mut r), audit_total(&mut r)), live);
        assert_eq!(r.stats().twopc_commits, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn retention_snapshot_deferred_while_fragment_prepared() {
        let dir = std::env::temp_dir().join(format!("sstore-spec-snap-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = PeConfig {
            log: Some(LogConfig::new(&dir)),
            retention: Some(LogRetention::every_n_commits(1)),
            ..PeConfig::default()
        };
        let mut p = pipeline(config);
        deploy_audit(&mut p).unwrap();
        p.prepare_fragment(2, "validate", vec![vec![Value::Int(1)]])
            .unwrap();
        // Uncommitted fragment writes live in storage: snapshots refused.
        assert!(p.snapshot().is_err());
        p.submit_batch_speculative("audit", vec![vec![Value::Int(1)]])
            .unwrap();
        assert!(!LogConfig::new(&dir).snapshot_path().exists());
        // Once decided, the next retention point snapshots normally.
        p.decide_fragment(2, true).unwrap();
        p.submit_batch("validate", vec![vec![Value::Int(1)]])
            .unwrap();
        assert!(LogConfig::new(&dir).snapshot_path().exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cross_edge_emissions_buffer_in_outbox_not_local_triggers() {
        let mut p = pipeline(PeConfig::default());
        p.declare_cross_edge("validated", 0).unwrap();
        let outcomes = p
            .submit_batch("validate", vec![vec![Value::Int(4)], vec![Value::Int(-1)]])
            .unwrap();
        // Only the border TE ran; the emission went to the outbox.
        assert_eq!(outcomes.len(), 1);
        assert_eq!(p.stats().pe_trigger_firings, 0);
        assert_eq!(p.stats().forwards_out, 1);
        assert_eq!(total(&mut p), 0);
        let outbox = p.take_outbox();
        assert_eq!(outbox.len(), 1);
        assert_eq!(outbox[0].stream, "validated");
        assert_eq!(outbox[0].rows, vec![Row::from(vec![Value::Int(4)])]);
        assert!(p.take_outbox().is_empty());
        // The batch stays open (upstream backup) until the edge is acked.
        assert!(p.has_pending_refs(outbox[0].batch));
        assert_eq!(p.stats().batches_completed, 0);
        p.edge_acked(outbox[0].batch).unwrap();
        assert!(!p.has_pending_refs(outbox[0].batch));
        assert_eq!(p.stats().batches_completed, 1);
        // The emitted rows were GC'd locally (terminally consumed).
        let validated = p.engine().db().resolve("validated").unwrap();
        assert_eq!(p.engine().db().table(validated).unwrap().len(), 0);
    }

    #[test]
    fn accept_forward_executes_consumers_and_dedupes() {
        let mut p = pipeline(PeConfig::default());
        let b = p
            .accept_forward("validated", 0, 5, vec![vec![Value::Int(1)].into()])
            .unwrap();
        assert!(b.is_some());
        p.run_queued().unwrap();
        assert_eq!(total(&mut p), 1);
        assert_eq!(p.stats().forwards_in, 1);
        // Same edge instance again (a re-forward after recovery): deduped.
        let dup = p
            .accept_forward("validated", 0, 5, vec![vec![Value::Int(1)].into()])
            .unwrap();
        assert!(dup.is_none());
        assert_eq!(p.stats().forwards_deduped, 1);
        assert_eq!(total(&mut p), 1);
        // A *newer* source batch is accepted; an older one from a
        // different source partition is independent.
        assert!(p
            .accept_forward("validated", 0, 6, vec![vec![Value::Int(1)].into()])
            .unwrap()
            .is_some());
        assert!(p
            .accept_forward("validated", 1, 2, vec![vec![Value::Int(1)].into()])
            .unwrap()
            .is_some());
        p.run_queued().unwrap();
        assert_eq!(total(&mut p), 3);
    }

    #[test]
    fn query_rejects_writes() {
        let mut p = pipeline(PeConfig::default());
        let err = p
            .query("INSERT INTO totals VALUES (2, 0)", &[])
            .unwrap_err();
        assert_eq!(err.kind(), "txn");
        // And the write was rolled back.
        assert_eq!(
            p.query("SELECT COUNT(*) FROM totals", &[])
                .unwrap()
                .scalar_i64()
                .unwrap(),
            1
        );
    }
}
