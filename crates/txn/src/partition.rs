//! The partition executor — S-Store's stream-oriented transaction model.
//!
//! One [`Partition`] owns an [`ExecutionEngine`], a procedure registry, the
//! derived [`Workflow`], the command log, and the scheduling queue. The
//! paper demos the single-sited case; this is that site.
//!
//! **Scheduling invariants** (paper §2):
//! 1. *TE order*: the i-th TE of procedure SPk precedes its (i+1)-th —
//!    guaranteed because batches enter each procedure's pipeline in batch-id
//!    order and the queue is FIFO per procedure.
//! 2. *Workflow order*: for a given batch, upstream TEs commit before
//!    downstream TEs are even scheduled (PE triggers fire at commit).
//! 3. *Serial workflows*: when procedures share writable tables, the whole
//!    workflow for batch *b* runs before any TE of batch *b+1* (downstream
//!    work is scheduled ahead of queued border batches).
//!
//! **H-Store mode** disables PE triggers and workflow awareness: every
//! invocation comes from the client and executes in arrival order. That is
//! the paper's baseline; §3.1's anomalies come precisely from the client's
//! delayed polling racing with new input.

use crate::log::{CommandLog, LogConfig, LogRecord, LogRetention};
use crate::procedure::{simulate_cost, stmt_effects, ProcContext, ProcSpec, Procedure};
use crate::stats::PeStats;
use crate::transaction::{Invocation, InvocationOrigin, TxnOutcome, TxnStatus};
use crate::workflow::Workflow;
use sstore_common::{
    Batch, BatchId, Clock, Error, PartitionId, ProcId, Result, Row, TableId, TxnId, Value,
};
use sstore_engine::{EeConfig, ExecutionEngine, TxnScratch};
use sstore_sql::exec::QueryResult;
use sstore_storage::snapshot::Snapshot;
use std::collections::{HashMap, VecDeque};

/// Which system the partition behaves as.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Full S-Store: PE triggers push batches through workflows; scheduling
    /// preserves the stream transaction model's ordering guarantees.
    SStore,
    /// The paper's baseline: no PE triggers, no workflow awareness; the
    /// client drives every invocation (polling), and invocations execute
    /// in client-arrival order.
    HStore,
}

/// Partition configuration.
#[derive(Debug, Clone)]
pub struct PeConfig {
    /// S-Store vs H-Store behaviour.
    pub mode: ExecMode,
    /// This partition's site id (p0 standalone; the cluster runtime
    /// assigns one id per worker so stats and metrics stay attributable).
    pub partition: PartitionId,
    /// Automatic snapshot-then-truncate policy (requires `log`). `None`
    /// leaves truncation manual, as before.
    pub retention: Option<LogRetention>,
    /// PE triggers (ablation E3a; forced off in H-Store mode).
    pub pe_triggers_enabled: bool,
    /// Override the serial-workflow decision (None = derive from shared
    /// writable tables, per the paper).
    pub serial_workflow: Option<bool>,
    /// Simulated client↔PE round-trip cost in µs (busy-wait per trip).
    pub client_trip_cost_micros: u64,
    /// Simulated PE↔EE dispatch cost in µs (busy-wait per statement).
    pub ee_trip_cost_micros: u64,
    /// Simulated PE↔EE dispatch latency in µs (sleep per statement;
    /// overlappable across partition workers, unlike the busy-wait).
    pub ee_trip_latency_micros: u64,
    /// Command logging (None = durability off).
    pub log: Option<LogConfig>,
    /// Execution-engine tunables.
    pub ee: EeConfig,
}

impl Default for PeConfig {
    fn default() -> Self {
        PeConfig {
            mode: ExecMode::SStore,
            partition: PartitionId::new(0),
            retention: None,
            pe_triggers_enabled: true,
            serial_workflow: None,
            client_trip_cost_micros: 0,
            ee_trip_cost_micros: 0,
            ee_trip_latency_micros: 0,
            log: None,
            ee: EeConfig::default(),
        }
    }
}

impl PeConfig {
    /// The paper's H-Store baseline configuration.
    pub fn hstore() -> Self {
        PeConfig {
            mode: ExecMode::HStore,
            pe_triggers_enabled: false,
            ..PeConfig::default()
        }
    }
}

/// One partition: engine + procedures + workflow + scheduler + durability.
///
/// `Debug` prints a summary (procedures hold closures).
pub struct Partition {
    engine: ExecutionEngine,
    procs: Vec<Procedure>,
    by_name: HashMap<String, ProcId>,
    workflow: Workflow,
    clock: Clock,
    log: Option<CommandLog>,
    stats: PeStats,
    config: PeConfig,
    queue: VecDeque<Invocation>,
    next_txn: u64,
    next_batch: u64,
    /// Outstanding TEs per batch (for completion acks).
    batch_refs: HashMap<u64, usize>,
    /// Remaining consumers per (stream, batch) before GC may run.
    gc_pending: HashMap<(TableId, u64), usize>,
    /// Committed TEs since the last snapshot (drives `LogRetention`).
    commits_since_snapshot: u64,
    /// True while replaying the log (suppresses re-logging).
    replaying: bool,
    /// Output rows of the TE that just committed, handed from `run_te` to
    /// `post_te` without cloning.
    pending_outputs: Vec<(TableId, Row)>,
}

impl std::fmt::Debug for Partition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Partition")
            .field("mode", &self.config.mode)
            .field("procedures", &self.procs.len())
            .field("next_txn", &self.next_txn)
            .field("next_batch", &self.next_batch)
            .field("queued", &self.queue.len())
            .finish()
    }
}

impl Partition {
    /// Create a partition. Opens the command log when configured.
    pub fn new(config: PeConfig) -> Result<Partition> {
        let log = match &config.log {
            Some(cfg) => Some(CommandLog::open(cfg.clone())?),
            None => None,
        };
        let stats = PeStats {
            partition: config.partition,
            ..PeStats::new()
        };
        Ok(Partition {
            engine: ExecutionEngine::with_config(config.ee.clone()),
            procs: Vec::new(),
            by_name: HashMap::new(),
            workflow: Workflow::default(),
            clock: Clock::new(),
            log,
            stats,
            config,
            queue: VecDeque::new(),
            next_txn: 1,
            next_batch: 0,
            batch_refs: HashMap::new(),
            gc_pending: HashMap::new(),
            commits_since_snapshot: 0,
            replaying: false,
            pending_outputs: Vec::new(),
        })
    }

    // ---- setup ---------------------------------------------------------------

    /// Run DDL (CREATE TABLE/STREAM/WINDOW).
    pub fn ddl(&mut self, sql: &str) -> Result<TableId> {
        self.engine.ddl_sql(sql)
    }

    /// Create a secondary index.
    pub fn create_index(
        &mut self,
        table: &str,
        name: &str,
        columns: &[&str],
        unique: bool,
    ) -> Result<()> {
        self.engine
            .create_index(table, name, columns, unique, false)
    }

    /// Register an EE trigger (delegates to the engine).
    pub fn create_ee_trigger(
        &mut self,
        name: &str,
        on_table: &str,
        event: sstore_engine::TriggerEvent,
        statements: &[&str],
    ) -> Result<()> {
        self.engine
            .create_trigger(name, on_table, event, statements)
    }

    /// Register a stored procedure and rebuild the workflow.
    pub fn register(&mut self, spec: ProcSpec) -> Result<ProcId> {
        if self.by_name.contains_key(&spec.name) {
            return Err(Error::AlreadyExists(format!("procedure `{}`", spec.name)));
        }
        let id = ProcId::new(self.procs.len() as u32);
        let input_stream = spec
            .input_stream
            .as_deref()
            .map(|s| self.engine.db().resolve(s))
            .transpose()?;
        let output_stream = spec
            .output_stream
            .as_deref()
            .map(|s| self.engine.db().resolve(s))
            .transpose()?;
        for s in [input_stream, output_stream].into_iter().flatten() {
            if !self.engine.db().kind(s)?.is_stream() {
                return Err(Error::Constraint(format!(
                    "procedure `{}` endpoint {s} is not a stream",
                    spec.name
                )));
            }
        }
        let mut statements = HashMap::new();
        let mut read_set = std::collections::HashSet::new();
        let mut write_set = std::collections::HashSet::new();
        for (name, sql) in &spec.statements {
            let planned = self.engine.prepare(sql)?;
            let (r, w) = stmt_effects(&planned);
            read_set.extend(r);
            write_set.extend(w);
            if statements.insert(name.clone(), planned).is_some() {
                return Err(Error::AlreadyExists(format!(
                    "statement `{name}` in `{}`",
                    spec.name
                )));
            }
        }
        // Emissions write the output stream.
        if let Some(out) = output_stream {
            write_set.insert(out);
        }
        if let Some(inp) = input_stream {
            read_set.insert(inp);
        }
        for w in &spec.windows {
            self.engine.bind_window_owner(w, id)?;
            let wid = self.engine.db().resolve(w)?;
            read_set.insert(wid);
            write_set.insert(wid);
        }
        self.procs.push(Procedure {
            id,
            name: spec.name.clone(),
            input_stream,
            output_stream,
            statements,
            read_set,
            write_set,
            handler: spec.handler,
        });
        self.by_name.insert(spec.name, id);
        self.workflow = Workflow::build(&self.procs)?;
        Ok(id)
    }

    // ---- accessors -----------------------------------------------------------

    /// The execution engine (read).
    pub fn engine(&self) -> &ExecutionEngine {
        &self.engine
    }

    /// The execution engine (setup/test mutation — not the txn path).
    pub fn engine_mut(&mut self) -> &mut ExecutionEngine {
        &mut self.engine
    }

    /// Partition counters (an owned snapshot; the row-sharing metrics in
    /// it are process-wide, captured at call time).
    pub fn stats(&self) -> PeStats {
        let mut s = self.stats.clone();
        s.rows = sstore_common::RowMetrics::snapshot();
        s
    }

    /// Reset PE and EE counters (the partition id is preserved).
    pub fn reset_stats(&mut self) {
        self.stats = PeStats {
            partition: self.config.partition,
            ..PeStats::new()
        };
        self.engine.reset_stats();
    }

    /// This partition's site id.
    pub fn id(&self) -> PartitionId {
        self.config.partition
    }

    /// The logical clock.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Advance logical time by `micros`.
    pub fn advance_clock(&self, micros: i64) {
        self.clock.advance(micros);
    }

    /// The derived workflow.
    pub fn workflow(&self) -> &Workflow {
        &self.workflow
    }

    /// Which system this partition behaves as.
    pub fn mode(&self) -> ExecMode {
        self.config.mode
    }

    /// Resolve a procedure name.
    pub fn proc_id(&self, name: &str) -> Result<ProcId> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| Error::NotFound(format!("procedure `{name}`")))
    }

    /// Run one statement during deployment (seeding reference data).
    /// Commits immediately, is not logged, and must therefore only be used
    /// from deterministic setup code that recovery re-runs identically —
    /// the same contract as DDL.
    pub fn setup_sql(&mut self, sql: &str, params: &[Value]) -> Result<QueryResult> {
        let mut scratch = TxnScratch::new(None, BatchId::new(0));
        let now = self.clock.now();
        let result = self.engine.execute_sql(sql, params, &mut scratch, now)?;
        scratch.undo.commit();
        Ok(result)
    }

    /// Run a read-only query outside any transaction (dashboard/test path;
    /// one client↔PE round trip).
    pub fn query(&mut self, sql: &str, params: &[Value]) -> Result<QueryResult> {
        self.stats.client_pe_trips += 1;
        simulate_cost(self.config.client_trip_cost_micros);
        let mut scratch = TxnScratch::new(None, BatchId::new(0));
        let now = self.clock.now();
        let result = self.engine.execute_sql(sql, params, &mut scratch, now)?;
        if !scratch.undo.is_empty() {
            // Must stay read-only: roll anything back and refuse.
            scratch.undo.rollback(self.engine.db_mut())?;
            return Err(Error::Txn(
                "query() is read-only; use a procedure for writes".into(),
            ));
        }
        Ok(result)
    }

    // ---- the transaction path -------------------------------------------------

    /// Submit one border input batch (S-Store mode's only client entry
    /// point). Runs the batch through the workflow to completion and
    /// returns every TE outcome, workflow order.
    pub fn submit_batch<R: Into<Row>>(
        &mut self,
        proc: &str,
        rows: Vec<R>,
    ) -> Result<Vec<TxnOutcome>> {
        self.submit_batch_async(proc, rows)?;
        self.run_queued()
    }

    /// Enqueue a border batch without draining (an asynchronous client:
    /// more input arrives before earlier batches finish). Pair with
    /// [`Partition::run_queued`]. With several batches queued, the
    /// scheduling policy becomes observable: serial workflows run
    /// batch-major; pipelined ones let batch *b+1*'s border TE run before
    /// batch *b*'s interior TEs.
    pub fn submit_batch_async<R: Into<Row>>(
        &mut self,
        proc: &str,
        rows: Vec<R>,
    ) -> Result<BatchId> {
        let pid = self.border_proc_id(proc)?;
        self.stats.client_pe_trips += 1;
        simulate_cost(self.config.client_trip_cost_micros);
        self.enqueue_border(pid, proc, rows.into_iter().map(Into::into).collect())
    }

    /// Submit a *group* of border batches for one procedure in a single
    /// scheduler pass: one client↔PE round trip for the whole group, all
    /// records logged back-to-back (group commit amortizes the fsyncs),
    /// then one drain. This is the PE-boundary saving the cluster runtime
    /// exploits when its ingest queue holds several batches for the same
    /// procedure.
    ///
    /// Returns one result **per submission**, in submission order: `Ok`
    /// with that batch's TEs (execution order) when it ran, `Err` when it
    /// was never enqueued (e.g. a log write failed). Earlier batches of a
    /// partially-failed group still execute — they are already durably
    /// logged, so running them keeps live state identical to what
    /// recovery would replay — and resolve `Ok` exactly as they would
    /// have uncoalesced. The outer `Err` is reserved for whole-group
    /// rejection (unknown/interior procedure, empty group is `Ok(vec![])`)
    /// and engine-level drain failures — the latter means an engine
    /// invariant broke mid-drain (rollback failure), the partition's
    /// state is indeterminate, and *every* member of the group reports
    /// the error even if its own TEs committed first.
    ///
    /// Determinism: batch ids are assigned in submission order and the
    /// scheduler sees exactly the state it would have seen under
    /// [`Partition::submit_batch_async`] calls followed by one
    /// [`Partition::run_queued`] — final state is identical to submitting
    /// the batches one by one.
    #[allow(clippy::type_complexity)]
    pub fn submit_batch_group<R: Into<Row>>(
        &mut self,
        proc: &str,
        batches: Vec<Vec<R>>,
    ) -> Result<Vec<Result<Vec<TxnOutcome>>>> {
        if batches.is_empty() {
            return Ok(Vec::new());
        }
        let pid = self.border_proc_id(proc)?;
        self.stats.client_pe_trips += 1;
        simulate_cost(self.config.client_trip_cost_micros);
        self.stats.group_submissions += 1;
        self.stats.batches_coalesced += batches.len() as u64;
        let n = batches.len();
        let mut ids = Vec::with_capacity(n);
        let mut enqueue_err: Option<Error> = None;
        for rows in batches {
            match self.enqueue_border(pid, proc, rows.into_iter().map(Into::into).collect()) {
                Ok(id) => ids.push(id),
                Err(e) => {
                    // This submission (and the rest of the group) was
                    // never enqueued; the already-enqueued prefix still
                    // runs below.
                    enqueue_err = Some(e);
                    break;
                }
            }
        }
        let outcomes = self.drain()?;
        // Attribute execution-order outcomes back to their border batch
        // (downstream TEs carry the border batch's id).
        let index: HashMap<u64, usize> =
            ids.iter().enumerate().map(|(i, b)| (b.raw(), i)).collect();
        let mut groups: Vec<Vec<TxnOutcome>> = ids.iter().map(|_| Vec::new()).collect();
        for o in outcomes {
            if let Some(&i) = index.get(&o.batch.raw()) {
                groups[i].push(o);
            }
        }
        let mut results: Vec<Result<Vec<TxnOutcome>>> = groups.into_iter().map(Ok).collect();
        while results.len() < n {
            results.push(Err(enqueue_err.clone().unwrap_or_else(|| {
                Error::Internal("group submission not enqueued".into())
            })));
        }
        Ok(results)
    }

    /// Resolve `proc`, enforcing the border-procedure rule in S-Store mode.
    fn border_proc_id(&self, proc: &str) -> Result<ProcId> {
        let pid = self.proc_id(proc)?;
        if self.config.mode == ExecMode::SStore && !self.workflow.is_border(pid) {
            return Err(Error::Schedule(format!(
                "`{proc}` is an interior procedure; only PE triggers may invoke it"
            )));
        }
        Ok(pid)
    }

    /// Assign the next batch id, log the border record, and enqueue the
    /// invocation. No round-trip accounting — callers decide how many
    /// client↔PE trips the submission cost.
    fn enqueue_border(&mut self, pid: ProcId, proc: &str, rows: Vec<Row>) -> Result<BatchId> {
        self.next_batch += 1;
        let batch = BatchId::new(self.next_batch);
        self.log_record(&LogRecord::BorderBatch {
            batch,
            proc: proc.to_string(),
            rows: rows.clone(),
            ts: self.clock.now(),
        })?;
        self.stats.batches_submitted += 1;
        self.batch_refs.insert(batch.raw(), 1);
        self.queue.push_back(Invocation {
            proc: pid,
            batch: Batch::new(batch, rows),
            origin: if self.replaying {
                InvocationOrigin::Recovery
            } else {
                InvocationOrigin::Client
            },
        });
        Ok(batch)
    }

    /// Run every queued TE (and the TEs their commits trigger) to
    /// completion, returning outcomes in execution order.
    pub fn run_queued(&mut self) -> Result<Vec<TxnOutcome>> {
        self.drain()
    }

    /// Directly invoke a procedure (H-Store mode requests, and OLTP-style
    /// requests in either mode). One TE; returns its outcome.
    pub fn invoke<R: Into<Row>>(&mut self, proc: &str, rows: Vec<R>) -> Result<TxnOutcome> {
        let pid = self.proc_id(proc)?;
        let rows: Vec<Row> = rows.into_iter().map(Into::into).collect();
        self.stats.client_pe_trips += 1;
        simulate_cost(self.config.client_trip_cost_micros);
        self.next_batch += 1;
        let batch = BatchId::new(self.next_batch);
        self.log_record(&LogRecord::Invocation {
            batch,
            proc: proc.to_string(),
            rows: rows.clone(),
            ts: self.clock.now(),
        })?;
        self.batch_refs.insert(batch.raw(), 1);
        self.queue.push_back(Invocation {
            proc: pid,
            batch: Batch::new(batch, rows),
            origin: if self.replaying {
                InvocationOrigin::Recovery
            } else {
                InvocationOrigin::Client
            },
        });
        let outcomes = self.drain()?;
        outcomes
            .into_iter()
            .next()
            .ok_or_else(|| Error::Internal("invoke produced no outcome".into()))
    }

    /// Drain the ready queue, running TEs serially. At quiescence (the
    /// queue is empty again) the retention policy may snapshot + truncate.
    fn drain(&mut self) -> Result<Vec<TxnOutcome>> {
        let mut outcomes = Vec::new();
        while let Some(inv) = self.queue.pop_front() {
            let outcome = self.run_te(&inv)?;
            self.post_te(&inv, &outcome)?;
            outcomes.push(outcome);
        }
        self.maybe_snapshot_for_retention();
        Ok(outcomes)
    }

    /// Apply `LogRetention`: when enough commits accumulated since the
    /// last snapshot, write one and truncate the log. Only at quiescence
    /// (callers guarantee the queue is empty) and never during replay.
    /// A failed snapshot must not fail the batch that just committed —
    /// the log still covers everything, so durability is intact; the
    /// failure is counted and the policy retries at the next quiescent
    /// point (`commits_since_snapshot` keeps accumulating).
    fn maybe_snapshot_for_retention(&mut self) {
        if self.replaying || self.log.is_none() {
            return;
        }
        let Some(retention) = self.config.retention else {
            return;
        };
        if self.commits_since_snapshot >= retention.every_n_commits && self.snapshot().is_err() {
            self.stats.retention_failures += 1;
        }
    }

    fn serial_workflow(&self) -> bool {
        self.config
            .serial_workflow
            .unwrap_or_else(|| self.workflow.has_shared_writables())
    }

    /// Run one TE: execute the procedure body over its batch, commit or
    /// roll back atomically.
    fn run_te(&mut self, inv: &Invocation) -> Result<TxnOutcome> {
        let start = std::time::Instant::now();
        let txn = TxnId::new(self.next_txn);
        self.next_txn += 1;
        let now = self.clock.now();

        let proc = &self.procs[inv.proc.raw() as usize];
        let handler = proc.handler.clone();
        let output_stream = proc.output_stream;

        let mut scratch = TxnScratch::new(Some(inv.proc), inv.batch.id);
        let mut ctx = ProcContext {
            engine: &mut self.engine,
            scratch: &mut scratch,
            statements: &proc.statements,
            input: &inv.batch,
            now,
            output_stream,
            response: None,
            ee_trip_cost_micros: self.config.ee_trip_cost_micros,
            ee_trip_latency_micros: self.config.ee_trip_latency_micros,
        };
        let result = handler(&mut ctx);
        let response = ctx.response.take();

        let outcome = match result {
            Ok(()) => {
                scratch.undo.commit();
                self.stats.committed += 1;
                self.commits_since_snapshot += 1;
                self.stats.record_latency(start.elapsed().as_nanos());
                TxnOutcome {
                    txn,
                    proc: inv.proc,
                    batch: inv.batch.id,
                    status: TxnStatus::Committed,
                    response,
                    error: None,
                }
            }
            Err(e) => {
                scratch.undo.rollback(self.engine.db_mut())?;
                scratch.appended.clear();
                let status = if e.is_user_abort() {
                    self.stats.user_aborts += 1;
                    TxnStatus::Aborted
                } else {
                    self.stats.failed += 1;
                    TxnStatus::Failed
                };
                TxnOutcome {
                    txn,
                    proc: inv.proc,
                    batch: inv.batch.id,
                    status,
                    response: None,
                    error: Some(e.to_string()),
                }
            }
        };

        // Stash outputs for post_te (committed TEs only).
        self.pending_outputs = if outcome.is_committed() {
            scratch.appended
        } else {
            Vec::new()
        };
        Ok(outcome)
    }

    /// Post-commit bookkeeping: PE triggers, GC, batch completion acks.
    fn post_te(&mut self, inv: &Invocation, outcome: &TxnOutcome) -> Result<()> {
        let appended = std::mem::take(&mut self.pending_outputs);
        let b = inv.batch.id;

        if outcome.is_committed() {
            // Group emitted rows by stream, preserving first-append order.
            let mut order: Vec<TableId> = Vec::new();
            let mut by_stream: HashMap<TableId, Vec<Row>> = HashMap::new();
            for (stream, row) in appended {
                if !by_stream.contains_key(&stream) {
                    order.push(stream);
                }
                by_stream.entry(stream).or_default().push(row);
            }

            if self.config.pe_triggers_enabled && self.config.mode == ExecMode::SStore {
                let serial = self.serial_workflow();
                let mut to_schedule: Vec<Invocation> = Vec::new();
                for stream in &order {
                    let rows = &by_stream[stream];
                    let consumers = self.workflow.consumers_of(*stream).to_vec();
                    if !consumers.is_empty() {
                        self.gc_pending.insert((*stream, b.raw()), consumers.len());
                    }
                    for consumer in consumers {
                        self.stats.pe_trigger_firings += 1;
                        *self.batch_refs.entry(b.raw()).or_insert(0) += 1;
                        to_schedule.push(Invocation {
                            proc: consumer,
                            batch: Batch::new(b, rows.clone()),
                            origin: InvocationOrigin::PeTrigger,
                        });
                    }
                }
                if serial {
                    // Downstream of this batch runs before anything queued
                    // (whole-workflow serial execution).
                    for inv in to_schedule.into_iter().rev() {
                        self.queue.push_front(inv);
                    }
                } else {
                    self.queue.extend(to_schedule);
                }
            }
        }

        // GC this TE's *input* stream once all consumers are done. This
        // runs for aborted TEs too: the batch is terminally consumed either
        // way (upstream backup, not the stream table, is the replay source).
        if let Some(input) = self.procs[inv.proc.raw() as usize].input_stream {
            if let Some(remaining) = self.gc_pending.get_mut(&(input, b.raw())) {
                *remaining -= 1;
                if *remaining == 0 {
                    self.gc_pending.remove(&(input, b.raw()));
                    self.engine.gc_stream(input, b)?;
                }
            }
        }

        // Batch completion accounting.
        if let Some(refs) = self.batch_refs.get_mut(&b.raw()) {
            *refs -= 1;
            if *refs == 0 {
                self.batch_refs.remove(&b.raw());
                self.stats.batches_completed += 1;
                self.log_record(&LogRecord::Ack { batch: b })?;
            }
        }
        Ok(())
    }

    fn log_record(&mut self, record: &LogRecord) -> Result<()> {
        if self.replaying {
            return Ok(());
        }
        if let Some(log) = &mut self.log {
            log.append(record)?;
            self.stats.log_records += 1;
            self.stats.log_syncs = log.syncs();
        }
        Ok(())
    }

    /// Read rows currently buffered in a sink stream (a stream with no
    /// consuming procedure), returning the visible columns and deleting the
    /// consumed tuples — the client-side tap of the demo dashboards.
    pub fn drain_sink(&mut self, stream: &str) -> Result<Vec<Row>> {
        self.stats.client_pe_trips += 1;
        simulate_cost(self.config.client_trip_cost_micros);
        let sid = self.engine.db().resolve(stream)?;
        if !self.engine.db().kind(sid)?.is_stream() {
            return Err(Error::Constraint(format!("`{stream}` is not a stream")));
        }
        if !self.workflow.consumers_of(sid).is_empty() {
            return Err(Error::Schedule(format!(
                "`{stream}` has workflow consumers; draining it would steal their input"
            )));
        }
        let meta = self
            .engine
            .db()
            .catalog()
            .meta(sid)
            .ok_or_else(|| Error::NotFound(format!("stream `{stream}`")))?;
        let visible_arity = meta.visible_schema.arity();
        let rows: Vec<Row> = self
            .engine
            .db()
            .table(sid)?
            .scan()
            .map(|(_, r)| r.prefix(visible_arity))
            .collect();
        // Everything in a sink stream is by definition consumed now.
        self.engine.gc_stream(sid, BatchId::new(self.next_batch))?;
        Ok(rows)
    }

    // ---- durability ------------------------------------------------------------

    /// Write a snapshot and garbage-collect the command log. Must be
    /// called at quiescence (drain() is synchronous, so any time between
    /// client calls).
    ///
    /// The log GC drops every record of a batch that is both acked and
    /// covered by the fresh snapshot ([`CommandLog::gc_acked_through`]);
    /// at quiescence that empties the log, but unacked records — possible
    /// once workflows span partitions — are always kept replayable. The
    /// rewrite also migrates a sniffed legacy-JSON log to the configured
    /// format.
    pub fn snapshot(&mut self) -> Result<()> {
        let cfg = self
            .config
            .log
            .clone()
            .ok_or_else(|| Error::Io("snapshots require a log directory".into()))?;
        let snap = Snapshot::capture(
            self.engine.db(),
            Some(TxnId::new(self.next_txn.saturating_sub(1))),
            Some(BatchId::new(self.next_batch)),
            self.clock.now(),
        );
        snap.write_to(&cfg.snapshot_path(), cfg.format)?;
        // A pre-binary snapshot under the legacy name is now superseded;
        // leaving it would let a future recovery read stale state.
        let _ = std::fs::remove_file(cfg.legacy_snapshot_path());
        if let Some(log) = &mut self.log {
            self.stats.log_gc_dropped += log.gc_acked_through(BatchId::new(self.next_batch))?;
        }
        self.commits_since_snapshot = 0;
        Ok(())
    }

    /// Internal: used by recovery to restore state and replay.
    pub(crate) fn restore_for_recovery(&mut self, snapshot: Option<Snapshot>) -> Result<()> {
        if let Some(snap) = snapshot {
            self.next_batch = snap.last_batch.map(BatchId::raw).unwrap_or(0);
            self.next_txn = snap.last_txn.map(|t| t.raw() + 1).unwrap_or(1);
            self.clock = Clock::starting_at(snap.clock_micros);
            self.engine.restore_db(snap.database);
        }
        Ok(())
    }

    /// Internal: append fresh Ack records for `batches` (recovery path).
    /// Replay suppresses re-logging, so a batch whose pre-crash Ack was
    /// lost in a torn tail would otherwise stay unacked forever and its
    /// input record would survive every retention GC.
    pub(crate) fn ack_batches(&mut self, batches: &[BatchId]) -> Result<()> {
        for &batch in batches {
            self.log_record(&LogRecord::Ack { batch })?;
        }
        Ok(())
    }

    /// Internal: replay one log record (recovery path).
    pub(crate) fn replay_record(&mut self, record: LogRecord) -> Result<()> {
        match record {
            LogRecord::BorderBatch {
                batch,
                proc,
                rows,
                ts,
            } => {
                if batch.raw() <= self.next_batch {
                    return Ok(()); // covered by the snapshot
                }
                self.clock.advance_to(ts);
                self.replaying = true;
                self.next_batch = batch.raw() - 1; // submit_batch re-increments
                let r = self.submit_batch(&proc, rows);
                self.replaying = false;
                r.map(|_| ())
            }
            LogRecord::Invocation {
                batch,
                proc,
                rows,
                ts,
            } => {
                if batch.raw() <= self.next_batch {
                    return Ok(());
                }
                self.clock.advance_to(ts);
                self.replaying = true;
                self.next_batch = batch.raw() - 1;
                let r = self.invoke(&proc, rows);
                self.replaying = false;
                r.map(|_| ())
            }
            LogRecord::Ack { .. } => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::procedure::ProcSpec;

    /// votes_in -> validate -> validated -> count
    /// `validate` drops negative values; `count` bumps a counter table.
    /// Deployment is a standalone function so recovery can redeploy it.
    fn deploy_pipeline(p: &mut Partition) -> Result<()> {
        p.ddl("CREATE STREAM votes_in (v INT)")?;
        p.ddl("CREATE STREAM validated (v INT)")?;
        p.ddl("CREATE TABLE totals (k INT NOT NULL, n INT NOT NULL, PRIMARY KEY (k))")?;
        let mut sc = TxnScratch::new(None, BatchId::new(0));
        p.engine_mut()
            .execute_sql("INSERT INTO totals VALUES (1, 0)", &[], &mut sc, 0)?;

        p.register(
            ProcSpec::new("validate", |ctx| {
                let rows = ctx.input().rows.clone();
                for row in rows {
                    if row[0].as_int()? >= 0 {
                        ctx.emit(row)?;
                    }
                }
                Ok(())
            })
            .consumes("votes_in")
            .emits("validated"),
        )?;

        p.register(
            ProcSpec::new("count", |ctx| {
                let n = ctx.input().len() as i64;
                ctx.exec("bump", &[Value::Int(n)])?;
                Ok(())
            })
            .consumes("validated")
            .stmt("bump", "UPDATE totals SET n = n + ? WHERE k = 1"),
        )?;
        Ok(())
    }

    fn pipeline(config: PeConfig) -> Partition {
        let mut p = Partition::new(config).unwrap();
        deploy_pipeline(&mut p).unwrap();
        p
    }

    fn total(p: &mut Partition) -> i64 {
        p.query("SELECT n FROM totals WHERE k = 1", &[])
            .unwrap()
            .scalar_i64()
            .unwrap()
    }

    #[test]
    fn workflow_pushes_batches_downstream() {
        let mut p = pipeline(PeConfig::default());
        let outcomes = p
            .submit_batch(
                "validate",
                vec![
                    vec![Value::Int(1)],
                    vec![Value::Int(-5)],
                    vec![Value::Int(2)],
                ],
            )
            .unwrap();
        // Two TEs: validate then count, same batch id.
        assert_eq!(outcomes.len(), 2);
        assert!(outcomes.iter().all(|o| o.is_committed()));
        assert_eq!(outcomes[0].batch, outcomes[1].batch);
        assert_eq!(total(&mut p), 2);
        assert_eq!(p.stats().pe_trigger_firings, 1);
        assert_eq!(p.stats().batches_completed, 1);
    }

    #[test]
    fn empty_output_skips_downstream() {
        let mut p = pipeline(PeConfig::default());
        let outcomes = p
            .submit_batch("validate", vec![vec![Value::Int(-1)]])
            .unwrap();
        assert_eq!(outcomes.len(), 1);
        assert_eq!(total(&mut p), 0);
        assert_eq!(p.stats().batches_completed, 1);
    }

    #[test]
    fn interior_procs_rejected_from_clients_in_sstore_mode() {
        let mut p = pipeline(PeConfig::default());
        let err = p.submit_batch::<Row>("count", vec![]).unwrap_err();
        assert_eq!(err.kind(), "schedule");
    }

    #[test]
    fn hstore_mode_requires_client_driving() {
        let mut p = pipeline(PeConfig::hstore());
        // Client invokes validate; downstream does NOT fire.
        p.invoke("validate", vec![vec![Value::Int(1)]]).unwrap();
        assert_eq!(total(&mut p), 0);
        assert_eq!(p.stats().pe_trigger_firings, 0);
        // Client must poll/invoke downstream itself.
        p.invoke("count", vec![vec![Value::Int(1)]]).unwrap();
        assert_eq!(total(&mut p), 1);
        // That cost two extra client trips (one per invocation) plus the
        // query trips.
        assert!(p.stats().client_pe_trips >= 2);
    }

    #[test]
    fn aborted_te_has_no_effects_and_no_downstream() {
        let mut p = Partition::new(PeConfig::default()).unwrap();
        p.ddl("CREATE STREAM s_in (v INT)").unwrap();
        p.ddl("CREATE STREAM s_out (v INT)").unwrap();
        p.ddl("CREATE TABLE t (id INT NOT NULL, PRIMARY KEY (id))")
            .unwrap();
        p.register(
            ProcSpec::new("flaky", |ctx| {
                ctx.exec("ins", &[Value::Int(1)])?;
                ctx.emit(vec![Value::Int(9)])?;
                Err(ctx.abort("changed my mind"))
            })
            .consumes("s_in")
            .emits("s_out")
            .stmt("ins", "INSERT INTO t VALUES (?)"),
        )
        .unwrap();
        p.register(ProcSpec::new("sink_proc", |_ctx| Ok(())).consumes("s_out"))
            .unwrap();

        let outcomes = p.submit_batch("flaky", vec![vec![Value::Int(1)]]).unwrap();
        assert_eq!(outcomes.len(), 1);
        assert_eq!(outcomes[0].status, TxnStatus::Aborted);
        // Table write rolled back; stream append rolled back; no trigger.
        assert_eq!(
            p.query("SELECT COUNT(*) FROM t", &[])
                .unwrap()
                .scalar_i64()
                .unwrap(),
            0
        );
        assert_eq!(p.stats().pe_trigger_firings, 0);
        assert_eq!(p.stats().user_aborts, 1);
    }

    #[test]
    fn te_order_and_batch_order_preserved() {
        // Record (proc, batch) execution order via a table.
        let mut p = Partition::new(PeConfig::default()).unwrap();
        p.ddl("CREATE STREAM a_in (v INT)").unwrap();
        p.ddl("CREATE STREAM a_mid (v INT)").unwrap();
        p.ddl("CREATE TABLE trace (seq INT NOT NULL, tag VARCHAR, b INT, PRIMARY KEY (seq))")
            .unwrap();
        p.ddl("CREATE TABLE seqgen (k INT NOT NULL, n INT NOT NULL, PRIMARY KEY (k))")
            .unwrap();
        let mut sc = TxnScratch::new(None, BatchId::new(0));
        p.engine_mut()
            .execute_sql("INSERT INTO seqgen VALUES (1, 0)", &[], &mut sc, 0)
            .unwrap();

        let trace = |tag: &'static str| {
            move |ctx: &mut ProcContext<'_>| {
                ctx.sql("UPDATE seqgen SET n = n + 1 WHERE k = 1", &[])?;
                let seq = ctx
                    .sql("SELECT n FROM seqgen WHERE k = 1", &[])?
                    .scalar_i64()?;
                let b = ctx.input().id.raw() as i64;
                ctx.sql(
                    "INSERT INTO trace VALUES (?, ?, ?)",
                    &[Value::Int(seq), Value::Text(tag.into()), Value::Int(b)],
                )?;
                if tag == "first" {
                    for row in ctx.input().rows.clone() {
                        ctx.emit(row)?;
                    }
                }
                Ok(())
            }
        };
        p.register(
            ProcSpec::new("first", trace("first"))
                .consumes("a_in")
                .emits("a_mid"),
        )
        .unwrap();
        p.register(ProcSpec::new("second", trace("second")).consumes("a_mid"))
            .unwrap();

        for i in 0..3 {
            p.submit_batch::<Row>("a_in_is_wrong", vec![]).err(); // wrong name ignored
            p.submit_batch("first", vec![vec![Value::Int(i)]]).unwrap();
        }
        let r = p
            .query("SELECT tag, b FROM trace ORDER BY seq", &[])
            .unwrap();
        // Workflow order per batch: first(b) before second(b); batch order
        // per proc: b strictly increasing for each tag.
        let mut first_batches = vec![];
        let mut second_batches = vec![];
        let mut seen_first: HashMap<i64, usize> = HashMap::new();
        for (i, row) in r.rows.iter().enumerate() {
            let tag = row[0].as_text().unwrap().to_string();
            let b = row[1].as_int().unwrap();
            if tag == "first" {
                seen_first.insert(b, i);
                first_batches.push(b);
            } else {
                assert!(seen_first[&b] < i, "workflow order violated");
                second_batches.push(b);
            }
        }
        let mut sorted = first_batches.clone();
        sorted.sort_unstable();
        assert_eq!(first_batches, sorted, "TE order violated for `first`");
        let mut sorted = second_batches.clone();
        sorted.sort_unstable();
        assert_eq!(second_batches, sorted, "TE order violated for `second`");
    }

    #[test]
    fn grouped_submission_matches_one_by_one_with_fewer_trips() {
        let batches: Vec<Vec<Row>> = (0..6)
            .map(|i| vec![vec![Value::Int(i)].into(), vec![Value::Int(-i)].into()])
            .collect();

        // Reference: one submission at a time.
        let mut one_by_one = pipeline(PeConfig::default());
        for b in batches.clone() {
            one_by_one.submit_batch("validate", b).unwrap();
        }
        let reference = total(&mut one_by_one);
        let reference_trips = one_by_one.stats().client_pe_trips;

        // Coalesced: the whole group in one scheduler pass.
        let mut grouped = pipeline(PeConfig::default());
        let results = grouped
            .submit_batch_group("validate", batches.clone())
            .unwrap();
        assert_eq!(results.len(), batches.len());
        // Each submission resolves to its own workflow TEs (validate +
        // count when anything passed validation), committed, same batch.
        for result in &results {
            let group = result.as_ref().unwrap();
            assert!(!group.is_empty());
            assert!(group.iter().all(|o| o.is_committed()));
            assert!(group.iter().all(|o| o.batch == group[0].batch));
        }
        assert_eq!(total(&mut grouped), reference);
        assert_eq!(grouped.stats().group_submissions, 1);
        assert_eq!(grouped.stats().batches_coalesced, 6);
        // The whole group cost ONE client trip; one-by-one cost six.
        // (Both also paid query trips from `total`.)
        assert_eq!(reference_trips - grouped.stats().client_pe_trips, 5);
    }

    #[test]
    fn grouped_submission_rejects_interior_procs_and_empty_is_noop() {
        let mut p = pipeline(PeConfig::default());
        let err = p
            .submit_batch_group("count", vec![vec![vec![Value::Int(1)]]])
            .unwrap_err();
        assert_eq!(err.kind(), "schedule");
        assert!(p
            .submit_batch_group::<Row>("validate", vec![])
            .unwrap()
            .is_empty());
    }

    #[test]
    fn retention_truncates_log_and_recovery_still_works() {
        use crate::log::{read_log, LogRetention};
        use crate::recovery::recover;

        let dir = std::env::temp_dir().join(format!("sstore-retention-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let config = PeConfig {
            log: Some(LogConfig::new(&dir)),
            retention: Some(LogRetention::every_n_commits(4)),
            ..PeConfig::default()
        };
        let mut p = pipeline(config.clone());
        for i in 0..10 {
            p.submit_batch("validate", vec![vec![Value::Int(i)]])
                .unwrap();
        }
        let reference = total(&mut p);
        assert_eq!(reference, 10);

        // Each accepted batch commits 2 TEs (validate + count); the policy
        // fired multiple times, so the log holds far fewer than the 10
        // submitted border records, and a snapshot exists.
        let tail = read_log(&LogConfig::new(&dir).log_path()).unwrap();
        assert!(
            tail.len() < 10,
            "retention never truncated: {} records",
            tail.len()
        );
        assert!(LogConfig::new(&dir).snapshot_path().exists());

        // Crash + recover: snapshot + log tail reproduce the state. The
        // redeploy closure rebuilds the same schema and procedures.
        drop(p);
        let mut recovered = recover(config, deploy_pipeline).unwrap();
        assert_eq!(total(&mut recovered), reference);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn consumed_stream_batches_are_garbage_collected() {
        let mut p = pipeline(PeConfig::default());
        p.submit_batch("validate", vec![vec![Value::Int(1)], vec![Value::Int(2)]])
            .unwrap();
        // The intermediate stream is empty after consumption.
        let validated = p.engine().db().resolve("validated").unwrap();
        assert_eq!(p.engine().db().table(validated).unwrap().len(), 0);
        assert!(p.engine().stats().rows_gcd >= 2);
    }

    #[test]
    fn drain_sink_reads_and_clears() {
        let mut p = Partition::new(PeConfig::default()).unwrap();
        p.ddl("CREATE STREAM in_s (v INT)").unwrap();
        p.ddl("CREATE STREAM alerts (v INT)").unwrap();
        p.register(
            ProcSpec::new("alerting", |ctx| {
                for row in ctx.input().rows.clone() {
                    ctx.emit(row)?;
                }
                Ok(())
            })
            .consumes("in_s")
            .emits("alerts"),
        )
        .unwrap();
        p.submit_batch("alerting", vec![vec![Value::Int(7)]])
            .unwrap();
        let rows = p.drain_sink("alerts").unwrap();
        assert_eq!(rows, vec![vec![Value::Int(7)]]);
        assert!(p.drain_sink("alerts").unwrap().is_empty());
        // Draining a consumed stream is refused.
        let mut p2 = pipeline(PeConfig::default());
        assert!(p2.drain_sink("validated").is_err());
    }

    #[test]
    fn query_rejects_writes() {
        let mut p = pipeline(PeConfig::default());
        let err = p
            .query("INSERT INTO totals VALUES (2, 0)", &[])
            .unwrap_err();
        assert_eq!(err.kind(), "txn");
        // And the write was rolled back.
        assert_eq!(
            p.query("SELECT COUNT(*) FROM totals", &[])
                .unwrap()
                .scalar_i64()
                .unwrap(),
            1
        );
    }
}
