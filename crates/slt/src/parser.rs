//! The `.slt` file format.
//!
//! A dialect of sqllogictest's script format, trimmed to what the engine
//! speaks. A file is a sequence of records separated by blank lines;
//! lines starting with `#` are comments. Records:
//!
//! ```text
//! statement ok
//! INSERT INTO t VALUES (1, 'a')
//!
//! statement error duplicate
//! INSERT INTO t VALUES (1, 'a')
//!
//! query rowsort
//! SELECT a, b FROM t
//! ----
//! 1 a
//! 2 b
//!
//! clock 5000000
//! ```
//!
//! * `statement ok` — run the SQL (DDL or DML), expect success.
//! * `statement error <substring>` — expect failure; the error's display
//!   must contain `<substring>` (case-insensitive).
//! * `query [nosort|rowsort]` — run the SQL, compare formatted rows to
//!   the lines after `----`. `rowsort` sorts actual and expected rows
//!   before comparing (for queries with no ORDER BY); `nosort` (default)
//!   compares in engine order.
//! * `clock <micros>` — advance the partition's logical clock (drives
//!   time-based `RANGE` windows).
//!
//! Result formatting: one line per row, columns joined by single spaces;
//! `NULL` for SQL NULL, `(empty)` for the empty string.

use std::path::{Path, PathBuf};

/// How a `query` record's rows are compared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortMode {
    /// Compare rows in the order the engine produced them.
    NoSort,
    /// Lexicographically sort actual and expected lines before comparing.
    RowSort,
}

/// One executable record of an `.slt` file.
#[derive(Debug, Clone)]
pub enum SltRecord {
    /// `statement ok` / `statement error <substring>`.
    Statement {
        /// The SQL text.
        sql: String,
        /// Expected error substring; `None` means the statement must
        /// succeed.
        expect_error: Option<String>,
        /// 1-based line of the directive (for diff messages).
        line: usize,
    },
    /// `query [sortmode]` with expected results.
    Query {
        /// The SQL text.
        sql: String,
        /// Expected result lines (post-`----`).
        expected: Vec<String>,
        /// Comparison mode.
        sort: SortMode,
        /// 1-based line of the directive.
        line: usize,
    },
    /// `clock <micros>`: advance logical time.
    Clock {
        /// Microseconds to advance by.
        micros: i64,
        /// 1-based line of the directive.
        line: usize,
    },
}

/// A parsed `.slt` file.
#[derive(Debug)]
pub struct SltFile {
    /// Where it came from.
    pub path: PathBuf,
    /// Records in file order.
    pub records: Vec<SltRecord>,
}

/// Parse `text` (read from `path`, used only for messages) into records.
pub fn parse_slt(path: &Path, text: &str) -> Result<SltFile, String> {
    let lines: Vec<&str> = text.lines().collect();
    let mut records = Vec::new();
    let mut i = 0usize;
    while i < lines.len() {
        let raw = lines[i];
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            i += 1;
            continue;
        }
        let lineno = i + 1;
        let err = |msg: String| format!("{}:{lineno}: {msg}", path.display());
        if let Some(rest) = line.strip_prefix("statement") {
            let rest = rest.trim();
            let expect_error = if rest == "ok" {
                None
            } else if let Some(sub) = rest.strip_prefix("error") {
                Some(sub.trim().to_string())
            } else {
                return Err(err(format!(
                    "expected `statement ok` or `statement error <substring>`, got `{line}`"
                )));
            };
            i += 1;
            let (sql, next) = take_sql(&lines, i, |l| l.is_empty());
            if sql.is_empty() {
                return Err(err("statement directive with no SQL".into()));
            }
            records.push(SltRecord::Statement {
                sql,
                expect_error,
                line: lineno,
            });
            i = next;
        } else if let Some(rest) = line.strip_prefix("query") {
            let sort = match rest.trim() {
                "" | "nosort" => SortMode::NoSort,
                "rowsort" => SortMode::RowSort,
                other => {
                    return Err(err(format!(
                        "unknown query sort mode `{other}` (use nosort or rowsort)"
                    )))
                }
            };
            i += 1;
            let (sql, next) = take_sql(&lines, i, |l| l == "----" || l.is_empty());
            if sql.is_empty() {
                return Err(err("query directive with no SQL".into()));
            }
            i = next;
            let mut expected = Vec::new();
            if i < lines.len() && lines[i].trim() == "----" {
                i += 1;
                while i < lines.len() && !lines[i].trim().is_empty() {
                    expected.push(lines[i].trim().to_string());
                    i += 1;
                }
            } else {
                return Err(err("query directive without `----` result block".into()));
            }
            records.push(SltRecord::Query {
                sql,
                expected,
                sort,
                line: lineno,
            });
        } else if let Some(rest) = line.strip_prefix("clock") {
            let micros: i64 = rest
                .trim()
                .parse()
                .map_err(|e| err(format!("bad clock micros: {e}")))?;
            records.push(SltRecord::Clock {
                micros,
                line: lineno,
            });
            i += 1;
        } else {
            return Err(err(format!(
                "unknown directive `{line}` (expected statement/query/clock)"
            )));
        }
    }
    Ok(SltFile {
        path: path.to_path_buf(),
        records,
    })
}

/// Collect SQL lines from `start` until `stop` matches (on the trimmed
/// line); returns the joined SQL and the index of the stopping line.
fn take_sql(lines: &[&str], start: usize, stop: impl Fn(&str) -> bool) -> (String, usize) {
    let mut sql_lines = Vec::new();
    let mut i = start;
    while i < lines.len() {
        let t = lines[i].trim();
        if stop(t) {
            break;
        }
        sql_lines.push(t);
        i += 1;
    }
    (sql_lines.join(" "), i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_record_kinds() {
        let text = "\
# a comment
statement ok
CREATE TABLE t (id INT,
  PRIMARY KEY (id))

statement error duplicate key
INSERT INTO t VALUES (1)

clock 250000

query rowsort
SELECT id FROM t
----
1
2
";
        let f = parse_slt(Path::new("x.slt"), text).unwrap();
        assert_eq!(f.records.len(), 4);
        match &f.records[0] {
            SltRecord::Statement {
                sql, expect_error, ..
            } => {
                assert!(sql.contains("CREATE TABLE t (id INT, PRIMARY KEY (id))"));
                assert!(expect_error.is_none());
            }
            r => panic!("unexpected {r:?}"),
        }
        match &f.records[1] {
            SltRecord::Statement { expect_error, .. } => {
                assert_eq!(expect_error.as_deref(), Some("duplicate key"));
            }
            r => panic!("unexpected {r:?}"),
        }
        assert!(matches!(
            f.records[2],
            SltRecord::Clock { micros: 250000, .. }
        ));
        match &f.records[3] {
            SltRecord::Query { expected, sort, .. } => {
                assert_eq!(expected, &["1", "2"]);
                assert_eq!(*sort, SortMode::RowSort);
            }
            r => panic!("unexpected {r:?}"),
        }
    }

    #[test]
    fn query_without_result_block_is_an_error() {
        let text = "query\nSELECT 1\n";
        let e = parse_slt(Path::new("y.slt"), text).unwrap_err();
        assert!(e.contains("----"), "{e}");
    }

    #[test]
    fn unknown_directive_is_an_error() {
        let e = parse_slt(Path::new("z.slt"), "frobnicate\n").unwrap_err();
        assert!(e.contains("unknown directive"), "{e}");
    }
}
