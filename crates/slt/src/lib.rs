//! # sstore-slt
//!
//! The test harness crate: coverage grows by writing **text files and
//! seeds**, not Rust.
//!
//! * [`parser`] + [`runner`] — a sqllogictest-style golden harness. Each
//!   `.slt` file under `tests/slt/` is a script of SQL statements and
//!   queries with expected results, executed against a fresh [`SStore`]
//!   instance; mismatches are reported as per-file diffs.
//! * [`campaign`] — a deterministic crash-fault-injection campaign. A
//!   seed expands into a [`campaign::FaultPlan`] (which kill point, which
//!   hit, what workload); a child process runs the workload and dies at
//!   the armed point; the parent recovers the durability directory and
//!   checks the crash-consistency invariants against the closed-form
//!   oracle. Failing seeds replay exactly: `SSTORE_FAULT_SEED=<n>`.
//! * [`telemetry`] — the IoT-telemetry workload (high-fanout ingest,
//!   cross-partition area aggregation edges, a sliding window) used by
//!   both the golden checks and the campaign.
//!
//! [`SStore`]: sstore_core::SStore

pub mod campaign;
pub mod parser;
pub mod runner;
pub mod telemetry;

pub use parser::{parse_slt, SltRecord, SortMode};
pub use runner::{
    discover_slt_files, run_slt_dir, run_slt_dir_dual, run_slt_dir_with, run_slt_file,
    run_slt_file_dual, run_slt_file_with,
};
pub use sstore_core::ExecPath;
