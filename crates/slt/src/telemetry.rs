//! The IoT-telemetry workload and its closed-form oracle.
//!
//! A fleet of devices streams `(device, area, temp)` readings. Stage 1
//! (`ingest`, partitioned by device, declared multi-partition so
//! straddling batches run under 2PC) maintains per-device statistics,
//! pushes every temperature through a sliding window whose aggregate it
//! materializes into `gauge`, and re-emits each reading keyed by *area*
//! onto the `area_feed` cross-partition edge. Stage 2 (`area_agg`, on
//! the partition owning the area) maintains per-area statistics.
//!
//! Everything downstream of the input is a pure function of the input
//! batches, so expected state has a closed form ([`TelemetryOracle`]) —
//! the golden test checks full equality, and the crash campaign checks
//! that recovered state equals the oracle of an *acked-covering prefix*
//! of the submission order (atomicity + durability + exactly-once in one
//! comparison).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sstore_core::common::{Result, Row, Value};
use sstore_core::{ProcSpec, SStore};
use std::collections::BTreeMap;

/// Readings at or below this temperature are poison: the ingest fragment
/// votes no and the whole batch aborts.
pub const POISON_TEMP: i64 = -1000;
/// Readings strictly above this temperature count as `hot` in
/// `device_stats`.
pub const HOT_TEMP: i64 = 90;

/// Cross-partition edge declarations for [`deploy_telemetry`]: the
/// `area_feed` stream routes by its area column.
pub const TELEMETRY_EDGES: &[(&str, usize)] = &[("area_feed", 0)];

/// Deploy the telemetry workload (schema + both procedures) on one
/// partition. Deterministic, so it doubles as the recovery redeploy.
pub fn deploy_telemetry(db: &mut SStore) -> Result<()> {
    db.ddl("CREATE STREAM readings (device INT, area INT, temp INT)")?;
    db.ddl(
        "CREATE TABLE device_stats (device INT NOT NULL, n INT NOT NULL, \
            total INT NOT NULL, hot INT NOT NULL, PRIMARY KEY (device))",
    )?;
    db.ddl("CREATE STREAM area_feed (area INT, temp INT)")?;
    db.ddl(
        "CREATE TABLE area_stats (area INT NOT NULL, n INT NOT NULL, \
            total INT NOT NULL, maxt INT NOT NULL, PRIMARY KEY (area))",
    )?;
    db.ddl("CREATE WINDOW recent (temp INT) ROWS 32 SLIDE 8")?;
    db.ddl("CREATE TABLE gauge (k INT NOT NULL, wcount INT NOT NULL, PRIMARY KEY (k))")?;
    db.setup_sql("INSERT INTO gauge VALUES (0, 0)", &[])?;

    db.register(
        ProcSpec::new("ingest", |ctx| {
            for row in ctx.input().rows.clone() {
                let device = row[0].clone();
                let area = row[1].clone();
                let temp = row[2].clone();
                if temp.as_int()? <= POISON_TEMP {
                    return Err(ctx.abort("poison reading"));
                }
                let hot = Value::Int((temp.as_int()? > HOT_TEMP) as i64);
                let seen = ctx.exec("get", std::slice::from_ref(&device))?;
                if seen.rows.is_empty() {
                    ctx.exec("init", &[device, temp.clone(), hot])?;
                } else {
                    ctx.exec("bump", &[temp.clone(), hot, device])?;
                }
                ctx.exec("observe", std::slice::from_ref(&temp))?;
                ctx.emit(vec![area, temp])?;
            }
            // Materialize the sliding-window aggregate the batch left
            // behind (window contents are partition-local state that
            // replay must reproduce exactly).
            ctx.exec("gauge", &[])?;
            Ok(())
        })
        .consumes("readings")
        .emits("area_feed")
        .owns_window("recent")
        .multi_partition()
        .stmt("get", "SELECT device FROM device_stats WHERE device = ?")
        .stmt("init", "INSERT INTO device_stats VALUES (?, 1, ?, ?)")
        .stmt(
            "bump",
            "UPDATE device_stats SET n = n + 1, total = total + ?, hot = hot + ? \
             WHERE device = ?",
        )
        .stmt("observe", "INSERT INTO recent VALUES (?)")
        .stmt(
            "gauge",
            "UPDATE gauge SET wcount = (SELECT COUNT(*) FROM recent) WHERE k = 0",
        ),
    )?;

    db.register(
        ProcSpec::new("area_agg", |ctx| {
            for row in ctx.input().rows.clone() {
                let area = row[0].clone();
                let temp = row[1].clone();
                let t = temp.as_int()?;
                let seen = ctx.exec("get", std::slice::from_ref(&area))?;
                match seen.rows.first() {
                    None => {
                        ctx.exec("init", &[area, temp.clone(), temp])?;
                    }
                    Some(r) => {
                        ctx.exec("bump", &[temp.clone(), area.clone()])?;
                        if t > r[0].as_int()? {
                            ctx.exec("raise", &[temp, area])?;
                        }
                    }
                }
            }
            Ok(())
        })
        .consumes("area_feed")
        .stmt("get", "SELECT maxt FROM area_stats WHERE area = ?")
        .stmt("init", "INSERT INTO area_stats VALUES (?, 1, ?, ?)")
        .stmt(
            "bump",
            "UPDATE area_stats SET n = n + 1, total = total + ? WHERE area = ?",
        )
        .stmt("raise", "UPDATE area_stats SET maxt = ? WHERE area = ?"),
    )?;
    Ok(())
}

/// Generate the workload's border batches from a seed: `batches` batches
/// of `batch_size` readings over `devices` devices and `areas` areas.
/// Roughly one batch in eight carries a poison reading (whole-batch
/// abort under 2PC). Same seed → same batches, byte for byte.
pub fn gen_batches(
    seed: u64,
    batches: usize,
    batch_size: usize,
    devices: i64,
    areas: i64,
) -> Vec<Vec<Row>> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7e1e_3e7a_11ad_beef);
    (0..batches)
        .map(|_| {
            let mut rows: Vec<Row> = (0..batch_size)
                .map(|_| {
                    Row::new(vec![
                        Value::Int(rng.random_range(0..devices.max(1))),
                        Value::Int(rng.random_range(0..areas.max(1))),
                        Value::Int(rng.random_range(50..111)),
                    ])
                })
                .collect();
            if rng.random_range(0..8u32) == 0 {
                let victim = rng.random_range(0..rows.len());
                let mut poisoned = rows[victim].to_values();
                poisoned[2] = Value::Int(POISON_TEMP - 1);
                rows[victim] = Row::new(poisoned);
            }
            rows
        })
        .collect()
}

/// Closed-form expected state: per-device `(n, total, hot)` and per-area
/// `(n, total, maxt)` after applying a set of batches (poison batches
/// contribute nothing — they abort atomically).
#[derive(Debug, Default, PartialEq, Eq)]
pub struct TelemetryOracle {
    /// device → (n, total, hot).
    pub device: BTreeMap<i64, (i64, i64, i64)>,
    /// area → (n, total, maxt).
    pub area: BTreeMap<i64, (i64, i64, i64)>,
}

impl TelemetryOracle {
    /// Expected state after the first `k` batches of `batches`.
    pub fn of_prefix(batches: &[Vec<Row>], k: usize) -> TelemetryOracle {
        let mut o = TelemetryOracle::default();
        for batch in &batches[..k.min(batches.len())] {
            o.apply(batch);
        }
        o
    }

    /// Expected state after applying exactly the batches at `indices`
    /// (out-of-range indices are ignored). Every folded statistic is
    /// commutative, so any submission order yields the same oracle —
    /// which is what lets the crash campaign try "uncertain" batches
    /// both included and excluded.
    pub fn of_batches(
        batches: &[Vec<Row>],
        indices: impl IntoIterator<Item = usize>,
    ) -> TelemetryOracle {
        let mut o = TelemetryOracle::default();
        for i in indices {
            if let Some(batch) = batches.get(i) {
                o.apply(batch);
            }
        }
        o
    }

    /// Fold one batch in (no-op if it contains a poison reading).
    pub fn apply(&mut self, rows: &[Row]) {
        if rows.iter().any(|r| int(&r[2]) <= POISON_TEMP) {
            return;
        }
        for r in rows {
            let (device, area, temp) = (int(&r[0]), int(&r[1]), int(&r[2]));
            let d = self.device.entry(device).or_insert((0, 0, 0));
            d.0 += 1;
            d.1 += temp;
            d.2 += (temp > HOT_TEMP) as i64;
            let a = self.area.entry(area).or_insert((0, 0, i64::MIN));
            a.0 += 1;
            a.1 += temp;
            a.2 = a.2.max(temp);
        }
    }

    /// The expected `device_stats` rows, sorted by device.
    pub fn device_rows(&self) -> Vec<Vec<Value>> {
        self.device
            .iter()
            .map(|(k, (n, total, hot))| {
                vec![
                    Value::Int(*k),
                    Value::Int(*n),
                    Value::Int(*total),
                    Value::Int(*hot),
                ]
            })
            .collect()
    }

    /// The expected `area_stats` rows, sorted by area.
    pub fn area_rows(&self) -> Vec<Vec<Value>> {
        self.area
            .iter()
            .map(|(k, (n, total, maxt))| {
                vec![
                    Value::Int(*k),
                    Value::Int(*n),
                    Value::Int(*total),
                    Value::Int(*maxt),
                ]
            })
            .collect()
    }
}

fn int(v: &Value) -> i64 {
    match v {
        Value::Int(i) => *i,
        other => panic!("telemetry rows are all-int, got {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = gen_batches(42, 10, 4, 8, 3);
        let b = gen_batches(42, 10, 4, 8, 3);
        assert_eq!(a, b);
        let c = gen_batches(43, 10, 4, 8, 3);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn oracle_skips_poison_batches() {
        let clean = vec![Row::new(vec![Value::Int(1), Value::Int(0), Value::Int(60)])];
        let poison = vec![
            Row::new(vec![Value::Int(1), Value::Int(0), Value::Int(60)]),
            Row::new(vec![
                Value::Int(2),
                Value::Int(0),
                Value::Int(POISON_TEMP - 1),
            ]),
        ];
        let mut o = TelemetryOracle::default();
        o.apply(&clean);
        o.apply(&poison);
        assert_eq!(o.device.get(&1), Some(&(1, 60, 0)));
        assert!(!o.device.contains_key(&2), "aborted batch must not count");
        assert_eq!(o.area.get(&0), Some(&(1, 60, 60)));
    }

    #[test]
    fn single_partition_run_matches_oracle() {
        let mut db = sstore_core::SStoreBuilder::new().build().unwrap();
        deploy_telemetry(&mut db).unwrap();
        let batches = gen_batches(7, 12, 4, 6, 3);
        for batch in &batches {
            // Poison batches abort; that's the expected path.
            let _ = db.submit_batch("ingest", batch.clone());
        }
        let oracle = TelemetryOracle::of_prefix(&batches, batches.len());
        let got: Vec<Vec<Value>> = db
            .query(
                "SELECT device, n, total, hot FROM device_stats ORDER BY device",
                &[],
            )
            .unwrap()
            .rows
            .iter()
            .map(|r| r.to_values())
            .collect();
        assert_eq!(got, oracle.device_rows());
        let got: Vec<Vec<Value>> = db
            .query(
                "SELECT area, n, total, maxt FROM area_stats ORDER BY area",
                &[],
            )
            .unwrap()
            .rows
            .iter()
            .map(|r| r.to_values())
            .collect();
        assert_eq!(got, oracle.area_rows());
    }
}
