//! The deterministic crash-fault-injection campaign.
//!
//! One trial = one seed. The seed expands into a [`FaultPlan`]: which
//! fault point to arm, on which hit it fires, and the exact telemetry
//! workload (partition count, batches, rows — see
//! [`crate::telemetry::gen_batches`]). A **child process** builds a
//! durable cluster, arms the point — [`KILL_POINTS`] in
//! [`sstore_common::fault::KillMode::Abort`] mode (the process dies
//! exactly as a crash would), [`IO_POINTS`] as a one-shot injected disk
//! error (the process survives and the affected batch must fail
//! cleanly) — and submits the batches serially, appending one
//! `"{i} ok|fail|unk"` verdict line per completed submission to
//! `acked.log`. The **parent** then recovers the durability directory
//! and checks the crash-consistency invariants:
//!
//! * **No lost acked batch** — every index in `acked.log` is reflected
//!   in recovered state.
//! * **No resurrected aborted fragment** — poison batches (whole-batch
//!   2PC aborts) contribute nothing, before or after the crash.
//! * **Edge exactly-once** — recovered `area_stats` (fed only through
//!   the cross-partition `area_feed` edge) matches the oracle exactly:
//!   re-forwarded envelopes were delivered once, never zero or twice.
//!
//! All three reduce to one comparison: recovered state must equal the
//! closed-form oracle of an *acked-covering prefix* of the submission
//! order. Serial submission + whole-process kill make the applied set a
//! prefix, so the only admissible states are "crash before the boundary
//! batch committed" and "crash after" — anything else is a bug, printed
//! with the seed that reproduces it.

use crate::telemetry::{
    deploy_telemetry, gen_batches, TelemetryOracle, POISON_TEMP, TELEMETRY_EDGES,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sstore_common::{fault, Row, Value};
use sstore_core::{Cluster, RouteSpec, SStoreBuilder, TxnStatus};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Every kill point the campaign can arm — the named 2PC/recovery/log
/// stage boundaries instrumented in `txn`, `core`, and `storage`. The
/// child process vaporizes (`KillMode::Abort`) exactly as a crash would.
pub const KILL_POINTS: &[&str] = &[
    "prepare-logged",
    "pre-commit-point-fsync",
    "post-commit-point-fsync",
    "decide-delivered",
    "forward-logged",
    "snapshot-mid-write",
    "delta-snapshot-mid-write",
    "log-mid-write",
    "worker-killed-live",
];

/// Disk-fault points: instead of killing the process, the child arms a
/// **one-shot injected IO error** (`fault::arm_io_error`) at the named
/// durability site and runs the whole workload. The affected batch must
/// fail with a typed error and zero partial state; everything after it
/// must proceed normally — the recovery check then accepts the recorded
/// applied set, with IO-failed batches of unknown fate tried both ways.
pub const IO_POINTS: &[&str] = &[
    "log-append-io-error",
    "snapshot-io-error",
    "coord-log-io-error",
];

/// Environment variable selecting the trial seed (replay a failure with
/// `SSTORE_FAULT_SEED=<seed> cargo run -p sstore-slt --bin crash_campaign`).
pub const SEED_ENV: &str = "SSTORE_FAULT_SEED";
/// Set in the child process (with [`SEED_ENV`] and [`DIR_ENV`]) to make
/// the campaign binary run the workload-and-die role.
pub const CHILD_ENV: &str = "SSTORE_FAULT_CHILD";
/// Durability directory handed to the child.
pub const DIR_ENV: &str = "SSTORE_FAULT_DIR";

/// Everything one seed determines.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// The seed itself.
    pub seed: u64,
    /// Which kill point is armed.
    pub point: &'static str,
    /// 1-based hit index at which it fires (sticky from there on).
    pub nth: u64,
    /// Cluster width.
    pub partitions: usize,
    /// Border batches submitted.
    pub batches: usize,
    /// Rows per batch.
    pub batch_size: usize,
    /// Device key space (stage-1 routing).
    pub devices: i64,
    /// Area key space (cross-edge routing).
    pub areas: i64,
    /// Snapshot-retention trigger (commits between snapshots).
    pub snapshot_every: u64,
}

impl FaultPlan {
    /// Expand `seed` deterministically.
    pub fn from_seed(seed: u64) -> FaultPlan {
        let mut rng = StdRng::seed_from_u64(seed);
        let idx = rng.random_range(0..KILL_POINTS.len() + IO_POINTS.len());
        FaultPlan {
            seed,
            point: if idx < KILL_POINTS.len() {
                KILL_POINTS[idx]
            } else {
                IO_POINTS[idx - KILL_POINTS.len()]
            },
            nth: rng.random_range(1..9),
            partitions: rng.random_range(2..4),
            batches: rng.random_range(8..17),
            batch_size: rng.random_range(2..6),
            devices: rng.random_range(4..11),
            areas: rng.random_range(2..5),
            snapshot_every: rng.random_range(3..9),
        }
    }

    /// The trial's border batches (shared by child and parent).
    pub fn workload(&self) -> Vec<Vec<Row>> {
        gen_batches(
            self.seed,
            self.batches,
            self.batch_size,
            self.devices,
            self.areas,
        )
    }

    fn builder(&self, dir: &Path) -> SStoreBuilder {
        // group-commit 1: an acked batch is a synced batch, which is what
        // the no-lost-acked-batch invariant asserts. Retention triggers
        // mid-run snapshots so `snapshot-mid-write` gets real traffic.
        SStoreBuilder::new()
            .durability(dir, 1)
            .log_retention(self.snapshot_every)
    }
}

fn acked_log_path(dir: &Path) -> PathBuf {
    dir.join("acked.log")
}

fn is_poison(batch: &[Row]) -> bool {
    batch
        .iter()
        .any(|r| matches!(r[2], Value::Int(t) if t <= POISON_TEMP))
}

/// Child role: run the workload under the armed fault. Kill points abort
/// the process mid-protocol; IO points inject a one-shot disk error and
/// the child runs to completion. Returning at all is a legitimate trial
/// outcome (the point never fired, or the fault was survivable).
///
/// Each completed submission appends one `"{i} <verdict>"` line:
/// `ok` (acked — all fragments committed), `fail` (provably not applied:
/// a deliberate abort or a retryable refusal), or `unk` (an error of
/// unknown fate, e.g. an IO failure whose record may still replay).
pub fn run_child(seed: u64, dir: &Path) -> sstore_common::Result<()> {
    let plan = FaultPlan::from_seed(seed);
    let cluster = Cluster::with_edges(
        plan.partitions,
        RouteSpec::hash(0),
        64,
        &plan.builder(dir),
        deploy_telemetry,
        TELEMETRY_EDGES,
    )?;
    let mut acked = std::fs::File::create(acked_log_path(dir))?;
    if IO_POINTS.contains(&plan.point) {
        fault::arm_io_error(plan.point, plan.nth);
    } else {
        fault::arm(plan.point, plan.nth, fault::KillMode::Abort);
    }
    for (i, batch) in plan.workload().into_iter().enumerate() {
        let poison = is_poison(&batch);
        let Ok(ticket) = cluster.submit_batch_async("ingest", batch) else {
            break; // a worker died without tripping the whole process
        };
        let verdict = match ticket.wait() {
            Ok(outcomes)
                if outcomes
                    .iter()
                    .all(|po| po.outcomes.iter().all(|o| o.status == TxnStatus::Committed)) =>
            {
                "ok"
            }
            // Explicitly aborted outcomes, deliberate poison aborts, and
            // retryable refusals (shed / provably-unexecuted) all share
            // one property: the batch is provably absent from state.
            Ok(_) => "fail",
            Err(_) if poison => "fail",
            Err(e) if e.is_retryable() => "fail",
            Err(_) => "unk",
        };
        // The ack a client would see: only an `ok` batch may be counted
        // on to survive any crash.
        writeln!(acked, "{i} {verdict}")?;
        acked.flush()?;
    }
    let _ = cluster.quiesce();
    Ok(())
}

/// Result of one parent-side trial.
#[derive(Debug)]
pub struct TrialResult {
    /// The plan that ran.
    pub plan: FaultPlan,
    /// Whether the child actually died at the kill point (vs running to
    /// completion because `nth` exceeded the traffic).
    pub crashed: bool,
    /// `None` = invariants held; `Some(diff)` = what went wrong.
    pub failure: Option<String>,
    /// The durability directory (kept on failure for inspection).
    pub dir: PathBuf,
}

/// Parent role: spawn `child_exe` as the crash sandbox for `seed`, then
/// recover and check invariants. `dir` is created fresh (and removed on
/// success unless `keep_dir`).
pub fn run_trial(child_exe: &Path, seed: u64, keep_dir: bool) -> TrialResult {
    let plan = FaultPlan::from_seed(seed);
    let mut dir = std::env::temp_dir();
    dir.push(format!("sstore-campaign-{}-{seed}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create trial dir");

    let status = std::process::Command::new(child_exe)
        .env(CHILD_ENV, "1")
        .env(SEED_ENV, seed.to_string())
        .env(DIR_ENV, &dir)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status();
    let crashed = match status {
        Ok(s) => !s.success(),
        Err(e) => {
            return TrialResult {
                plan,
                crashed: false,
                failure: Some(format!("child spawn failed: {e}")),
                dir,
            }
        }
    };

    let failure = drill_recovery_fault(&plan, &dir)
        .err()
        .or_else(|| check_recovery(&plan, &dir).err());
    if failure.is_none() && !keep_dir {
        let _ = std::fs::remove_dir_all(&dir);
    }
    TrialResult {
        plan,
        crashed,
        failure,
        dir,
    }
}

/// The mid-recovery drill: arm `recovery-mid-replay` in panic mode and
/// attempt a recovery. A partition thread panicking mid-replay must
/// surface as a clean per-partition [`sstore_common::Error::Recovery`]
/// from `Cluster::recover` — never a hang, never a process abort — and
/// must leave the durability directory untouched so the real recovery
/// that follows still works. An `Ok` recovery is also admissible: it
/// means the trial's log had nothing left to replay (the child died
/// before its first record survived), so the point never fired.
///
/// **Process-global**: arms a kill point, so only the campaign parent
/// (which runs trials serially) may call this — never in-process tests.
pub fn drill_recovery_fault(plan: &FaultPlan, dir: &Path) -> Result<(), String> {
    fault::disarm();
    fault::arm("recovery-mid-replay", 1, fault::KillMode::Panic);
    // The panic is expected; keep its backtrace off the campaign output.
    let prior = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let attempt = Cluster::recover(
        plan.partitions,
        RouteSpec::hash(0),
        64,
        &plan.builder(dir),
        deploy_telemetry,
        TELEMETRY_EDGES,
    );
    std::panic::set_hook(prior);
    fault::disarm();
    match attempt {
        Ok(_) => Ok(()), // nothing to replay: the point never fired
        Err(e) if e.kind() == "recovery" => Ok(()),
        Err(e) => Err(format!(
            "mid-replay panic surfaced as `{e}` instead of a recovery error"
        )),
    }
}

/// Recover the trial's durability directory and check the invariants.
///
/// The child's verdict lines pin each submitted batch to *applied*
/// (`ok`), *absent* (`fail`), or *uncertain* (`unk` — an IO error whose
/// record may still replay). A crash additionally leaves the one batch
/// in flight at the kill uncertain. Recovered state must equal the
/// oracle of the applied set plus **some subset** of the uncertain
/// batches — anything else (a lost ack, a resurrected abort, a doubled
/// edge delivery) matches no candidate and fails with the seed.
pub fn check_recovery(plan: &FaultPlan, dir: &Path) -> Result<(), String> {
    fault::disarm();
    let batches = plan.workload();
    let mut applied: Vec<usize> = Vec::new();
    let mut uncertain: Vec<usize> = Vec::new();
    let mut recorded = 0usize;
    for line in std::fs::read_to_string(acked_log_path(dir))
        .unwrap_or_default()
        .lines()
    {
        let mut parts = line.split_whitespace();
        let Some(i) = parts.next().and_then(|t| t.parse::<usize>().ok()) else {
            continue;
        };
        if i != recorded {
            return Err(format!(
                "verdict line for batch {i} out of order (expected {recorded}): \
                 child accounting broken"
            ));
        }
        recorded += 1;
        match parts.next().unwrap_or("ok") {
            "ok" => applied.push(i),
            "fail" => {}
            _ => uncertain.push(i),
        }
    }
    // Serial submission: the batch in flight when the child died (the
    // first one with no verdict) may or may not have committed; nothing
    // after it was ever submitted.
    if recorded < batches.len() {
        uncertain.push(recorded);
    }
    if uncertain.len() > 6 {
        return Err(format!(
            "{} uncertain batches {uncertain:?}: the one-shot faults can leave at \
             most a couple in doubt — child accounting broken",
            uncertain.len()
        ));
    }

    let cluster = Cluster::recover(
        plan.partitions,
        RouteSpec::hash(0),
        64,
        &plan.builder(dir),
        deploy_telemetry,
        TELEMETRY_EDGES,
    )
    .map_err(|e| format!("recovery failed: {e}"))?;
    cluster
        .quiesce()
        .map_err(|e| format!("post-recovery quiesce failed: {e}"))?;

    let got_device = sorted_rows(&cluster, "SELECT device, n, total, hot FROM device_stats")?;
    let got_area = sorted_rows(&cluster, "SELECT area, n, total, maxt FROM area_stats")?;
    let mut diffs = Vec::new();
    for mask in 0u32..(1 << uncertain.len()) {
        let mut set = applied.clone();
        for (bit, &i) in uncertain.iter().enumerate() {
            if mask & (1 << bit) != 0 {
                set.push(i);
            }
        }
        set.sort_unstable();
        let oracle = TelemetryOracle::of_batches(&batches, set.iter().copied());
        if got_device == oracle.device_rows() && got_area == oracle.area_rows() {
            return Ok(());
        }
        diffs.push(format!(
            "  set {set:?}: expected devices {:?} / areas {:?}",
            oracle.device_rows(),
            oracle.area_rows()
        ));
    }
    Err(format!(
        "recovered state matches no admissible applied set \
         (ok {applied:?}, uncertain {uncertain:?})\n\
         got devices {got_device:?}\n got areas {got_area:?}\n{}",
        diffs.join("\n")
    ))
}

fn sorted_rows(cluster: &Cluster, sql: &str) -> Result<Vec<Vec<Value>>, String> {
    let mut rows: Vec<Vec<Value>> = cluster
        .query_all(sql, &[])
        .map_err(|e| format!("{sql}: {e}"))?
        .iter()
        .map(|r| r.to_values())
        .collect();
    rows.sort();
    Ok(rows)
}

/// Run trials for `seeds`, printing one line per trial and a summary.
/// Returns the failing results (empty = campaign passed).
pub fn run_campaign(child_exe: &Path, seeds: impl Iterator<Item = u64>) -> Vec<TrialResult> {
    let mut failures = Vec::new();
    let mut trials = 0usize;
    let mut crashes = 0usize;
    for seed in seeds {
        let r = run_trial(child_exe, seed, false);
        trials += 1;
        crashes += r.crashed as usize;
        if let Some(why) = &r.failure {
            println!(
                "FAIL seed={seed} point={} nth={} partitions={} — replay: {SEED_ENV}={seed} \
                 cargo run -p sstore-slt --bin crash_campaign\n{why}\n  (durable state kept at {})",
                r.plan.point,
                r.plan.nth,
                r.plan.partitions,
                r.dir.display()
            );
            failures.push(r);
        } else {
            println!(
                "ok   seed={seed} point={} nth={} {}",
                r.plan.point,
                r.plan.nth,
                if r.crashed {
                    "crashed+recovered"
                } else {
                    "ran to completion"
                }
            );
        }
    }
    println!(
        "campaign: {trials} trials, {crashes} injected crashes, {} failures",
        failures.len()
    );
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_and_varied() {
        let a = FaultPlan::from_seed(9);
        let b = FaultPlan::from_seed(9);
        assert_eq!(a.point, b.point);
        assert_eq!(a.nth, b.nth);
        assert_eq!(a.workload(), b.workload());
        // Across a seed range, every kill and IO point gets picked
        // eventually.
        let mut seen = std::collections::HashSet::new();
        for seed in 0..160 {
            seen.insert(FaultPlan::from_seed(seed).point);
        }
        assert_eq!(
            seen.len(),
            KILL_POINTS.len() + IO_POINTS.len(),
            "seen: {seen:?}"
        );
    }

    #[test]
    fn no_fault_trial_passes_invariants() {
        // Run the child role in-process with nothing armed: the recovery
        // check must accept the full-prefix state.
        let seed = 5u64;
        let plan = FaultPlan::from_seed(seed);
        let mut dir = std::env::temp_dir();
        dir.push(format!("sstore-campaign-inproc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        fault::disarm();
        run_child_unarmed(seed, &dir).unwrap();
        check_recovery(&plan, &dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The child role minus the arming (in-process tests must not arm
    /// process-global kill points).
    fn run_child_unarmed(seed: u64, dir: &Path) -> sstore_common::Result<()> {
        let plan = FaultPlan::from_seed(seed);
        let cluster = Cluster::with_edges(
            plan.partitions,
            RouteSpec::hash(0),
            64,
            &plan.builder(dir),
            deploy_telemetry,
            TELEMETRY_EDGES,
        )?;
        let mut acked = std::fs::File::create(acked_log_path(dir))?;
        for (i, batch) in plan.workload().into_iter().enumerate() {
            let committed = cluster
                .submit_batch_async("ingest", batch)?
                .wait()
                .is_ok_and(|outcomes| {
                    outcomes
                        .iter()
                        .all(|po| po.outcomes.iter().all(|o| o.status == TxnStatus::Committed))
                });
            writeln!(acked, "{i} {}", if committed { "ok" } else { "fail" })?;
        }
        cluster.quiesce()?;
        Ok(())
    }
}
