//! Crash-fault-injection campaign driver.
//!
//! Three roles, one binary:
//!
//! * **Campaign parent** (default): `crash_campaign [--trials N] [--start S]`
//!   runs N seeded trials (seeds S..S+N), spawning itself as the crash
//!   sandbox for each, and exits non-zero if any trial violates the
//!   recovery invariants. Every failure line carries the seed and the
//!   exact command to replay it.
//! * **Single-seed replay**: `crash_campaign --seed <n>` (or env
//!   `SSTORE_FAULT_SEED=<n>`) runs exactly one trial and keeps its
//!   durability directory for inspection.
//! * **Child** (internal): with `SSTORE_FAULT_CHILD=1`, runs the workload
//!   with the seed's kill point armed and dies mid-protocol.

use sstore_slt::campaign::{self, run_campaign, run_trial};

fn main() {
    if std::env::var(campaign::CHILD_ENV).is_ok() {
        let seed: u64 = std::env::var(campaign::SEED_ENV)
            .expect("child needs SSTORE_FAULT_SEED")
            .parse()
            .expect("SSTORE_FAULT_SEED must be a u64");
        let dir = std::env::var(campaign::DIR_ENV).expect("child needs SSTORE_FAULT_DIR");
        if let Err(e) = campaign::run_child(seed, std::path::Path::new(&dir)) {
            eprintln!("child workload error: {e}");
            std::process::exit(2);
        }
        return;
    }

    let exe = std::env::current_exe().expect("current_exe");
    let mut trials = 25u64;
    let mut start = 0u64;
    let mut seed: Option<u64> = std::env::var(campaign::SEED_ENV)
        .ok()
        .map(|s| s.parse().expect("SSTORE_FAULT_SEED must be a u64"));
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut num = |name: &str| -> u64 {
            args.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{name} needs an integer argument"))
        };
        match a.as_str() {
            "--trials" => trials = num("--trials"),
            "--start" => start = num("--start"),
            "--seed" => seed = Some(num("--seed")),
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!("usage: crash_campaign [--trials N] [--start S] [--seed SEED]");
                std::process::exit(2);
            }
        }
    }

    if let Some(seed) = seed {
        let r = run_trial(&exe, seed, true);
        match r.failure {
            None => println!(
                "seed {seed} ok (point={} nth={} crashed={}); state at {}",
                r.plan.point,
                r.plan.nth,
                r.crashed,
                r.dir.display()
            ),
            Some(why) => {
                println!(
                    "seed {seed} FAILED: {why}\nstate kept at {}",
                    r.dir.display()
                );
                std::process::exit(1);
            }
        }
        return;
    }

    let failures = run_campaign(&exe, start..start + trials);

    // Every trial's verification recovery ran in this process, so the
    // obs phase timers hold the campaign-wide recovery breakdown.
    let phases = sstore_common::obs::registry_snapshot().histograms;
    let mut names: Vec<_> = phases
        .iter()
        .filter(|(name, _)| name.starts_with("recovery."))
        .collect();
    names.sort_by_key(|(name, _)| name.as_str());
    if !names.is_empty() {
        println!("\nrecovery phase breakdown across the campaign:");
        println!("  phase                  | count | mean ms |  p95 ms |  max ms");
        for (name, snap) in names {
            let r = snap.report();
            println!(
                "  {name:<22} | {:>5} | {:>7.3} | {:>7.3} | {:>7.3}",
                r.count,
                r.mean_us / 1e3,
                r.p95_us / 1e3,
                r.max_us / 1e3
            );
        }
    }

    if !failures.is_empty() {
        std::process::exit(1);
    }
}
