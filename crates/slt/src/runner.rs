//! Executes parsed `.slt` files against a fresh engine.
//!
//! Each file gets its own [`SStore`] instance (no state leaks between
//! files); each mismatch becomes one diff line, and a file's failures are
//! collected rather than stopping at the first — a golden run reports
//! everything that drifted.
//!
//! Every file can run three ways: pinned to the row interpreter
//! ([`run_slt_file_with`] with [`ExecPath::Row`]), pinned to the
//! vectorized executor ([`ExecPath::Vector`]), or in **dual** mode
//! ([`run_slt_file_dual`]) where two engines execute the script in
//! lockstep and every query's raw output must match row-for-row before
//! any `rowsort` normalization — a direct parity oracle for the
//! vectorized path.

use crate::parser::{parse_slt, SltRecord, SortMode};
use sstore_common::{Result, Value};
use sstore_core::{ExecPath, SStore, SStoreBuilder};
use std::path::{Path, PathBuf};

/// Format one result row the way `.slt` expected blocks are written:
/// values joined by single spaces, `NULL` for NULL, `(empty)` for the
/// empty string.
pub fn format_row(values: &[Value]) -> String {
    values
        .iter()
        .map(|v| match v {
            Value::Null => "NULL".to_string(),
            Value::Text(s) if s.is_empty() => "(empty)".to_string(),
            other => other.to_string(),
        })
        .collect::<Vec<_>>()
        .join(" ")
}

/// Run one statement through the right engine entry point: DDL goes to
/// the catalog path, anything else through immediate-commit SQL.
fn execute(db: &mut SStore, sql: &str) -> Result<Vec<String>> {
    let head = sql
        .split_whitespace()
        .next()
        .unwrap_or("")
        .to_ascii_uppercase();
    if head == "CREATE" {
        db.ddl(sql)?;
        return Ok(Vec::new());
    }
    let result = db.setup_sql(sql, &[])?;
    Ok(result.rows.iter().map(|r| format_row(r)).collect())
}

/// Build a fresh engine pinned to one executor path.
fn build_engine(path: &Path, exec: ExecPath) -> std::result::Result<SStore, String> {
    match SStoreBuilder::new().build() {
        Ok(mut db) => {
            db.engine_mut().set_exec_path(exec);
            Ok(db)
        }
        Err(e) => Err(format!("{}: engine build failed: {e}", path.display())),
    }
}

/// Run one `.slt` file against a fresh [`SStore`] using the session's
/// default executor path. Returns the list of failure messages (empty =
/// pass).
pub fn run_slt_file(path: &Path) -> Vec<String> {
    run_slt_file_with(path, ExecPath::session_default())
}

/// Run one `.slt` file against a fresh [`SStore`] pinned to `exec`.
/// Returns the list of failure messages (empty = pass).
pub fn run_slt_file_with(path: &Path, exec: ExecPath) -> Vec<String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => return vec![format!("{}: unreadable: {e}", path.display())],
    };
    let file = match parse_slt(path, &text) {
        Ok(f) => f,
        Err(e) => return vec![e],
    };
    let mut db = match build_engine(path, exec) {
        Ok(db) => db,
        Err(e) => return vec![e],
    };
    let mut failures = Vec::new();
    for record in &file.records {
        match record {
            SltRecord::Clock { micros, .. } => db.advance_clock(*micros),
            SltRecord::Statement {
                sql,
                expect_error,
                line,
            } => match (execute(&mut db, sql), expect_error) {
                (Ok(_), None) => {}
                (Ok(_), Some(want)) => failures.push(format!(
                    "{}:{line}: expected error containing `{want}`, statement succeeded\n  {sql}",
                    path.display()
                )),
                (Err(e), Some(want)) => {
                    let msg = e.to_string();
                    if !msg.to_lowercase().contains(&want.to_lowercase()) {
                        failures.push(format!(
                            "{}:{line}: error `{msg}` does not contain `{want}`\n  {sql}",
                            path.display()
                        ));
                    }
                }
                (Err(e), None) => failures.push(format!(
                    "{}:{line}: statement failed: {e}\n  {sql}",
                    path.display()
                )),
            },
            SltRecord::Query {
                sql,
                expected,
                sort,
                line,
            } => match execute(&mut db, sql) {
                Err(e) => failures.push(format!(
                    "{}:{line}: query failed: {e}\n  {sql}",
                    path.display()
                )),
                Ok(mut actual) => {
                    let mut expected = expected.clone();
                    if *sort == SortMode::RowSort {
                        actual.sort();
                        expected.sort();
                    }
                    if actual != expected {
                        failures.push(format!(
                            "{}:{line}: result mismatch\n  {sql}\n  expected:\n{}\n  actual:\n{}",
                            path.display(),
                            indent(&expected),
                            indent(&actual)
                        ));
                    }
                }
            },
        }
    }
    failures
}

/// Run one `.slt` file through **both** executor paths in lockstep: a
/// row-interpreter engine and a vectorized engine each execute every
/// record. Statements must agree on success vs. failure; queries are
/// checked against the expected block on the row engine (the reference
/// semantics), and the vector engine's *raw* output — before any
/// `rowsort` normalization — must equal the row engine's raw output.
/// Any divergence is a parity failure.
pub fn run_slt_file_dual(path: &Path) -> Vec<String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => return vec![format!("{}: unreadable: {e}", path.display())],
    };
    let file = match parse_slt(path, &text) {
        Ok(f) => f,
        Err(e) => return vec![e],
    };
    let mut row_db = match build_engine(path, ExecPath::Row) {
        Ok(db) => db,
        Err(e) => return vec![e],
    };
    let mut vec_db = match build_engine(path, ExecPath::Vector) {
        Ok(db) => db,
        Err(e) => return vec![e],
    };
    let mut failures = Vec::new();
    for record in &file.records {
        match record {
            SltRecord::Clock { micros, .. } => {
                row_db.advance_clock(*micros);
                vec_db.advance_clock(*micros);
            }
            SltRecord::Statement {
                sql,
                expect_error,
                line,
            } => {
                let row_res = execute(&mut row_db, sql);
                let vec_res = execute(&mut vec_db, sql);
                if row_res.is_ok() != vec_res.is_ok() {
                    failures.push(format!(
                        "{}:{line}: engines disagree on statement outcome (row: {}, vector: {})\n  {sql}",
                        path.display(),
                        outcome(&row_res),
                        outcome(&vec_res),
                    ));
                    continue;
                }
                // Expectations are judged against the row engine; the
                // vector engine only has to agree on ok vs. err.
                match (&row_res, expect_error) {
                    (Ok(_), None) | (Err(_), Some(_)) => {}
                    (Ok(_), Some(want)) => failures.push(format!(
                        "{}:{line}: expected error containing `{want}`, statement succeeded\n  {sql}",
                        path.display()
                    )),
                    (Err(e), None) => failures.push(format!(
                        "{}:{line}: statement failed: {e}\n  {sql}",
                        path.display()
                    )),
                }
            }
            SltRecord::Query {
                sql,
                expected,
                sort,
                line,
            } => {
                let row_res = execute(&mut row_db, sql);
                let vec_res = execute(&mut vec_db, sql);
                match (&row_res, &vec_res) {
                    (Err(e), Err(_)) => {
                        // Both engines reject the query; the expected
                        // block can't match either way, so report once.
                        failures.push(format!(
                            "{}:{line}: query failed: {e}\n  {sql}",
                            path.display()
                        ));
                    }
                    (Ok(row_raw), Ok(vec_raw)) => {
                        if row_raw != vec_raw {
                            failures.push(format!(
                                "{}:{line}: row/vector parity mismatch\n  {sql}\n  row engine:\n{}\n  vector engine:\n{}",
                                path.display(),
                                indent(row_raw),
                                indent(vec_raw)
                            ));
                        }
                        let mut actual = row_raw.clone();
                        let mut expected = expected.clone();
                        if *sort == SortMode::RowSort {
                            actual.sort();
                            expected.sort();
                        }
                        if actual != expected {
                            failures.push(format!(
                                "{}:{line}: result mismatch\n  {sql}\n  expected:\n{}\n  actual:\n{}",
                                path.display(),
                                indent(&expected),
                                indent(&actual)
                            ));
                        }
                    }
                    _ => failures.push(format!(
                        "{}:{line}: engines disagree on query outcome (row: {}, vector: {})\n  {sql}",
                        path.display(),
                        outcome(&row_res),
                        outcome(&vec_res),
                    )),
                }
            }
        }
    }
    failures
}

fn outcome(res: &Result<Vec<String>>) -> String {
    match res {
        Ok(rows) => format!("ok, {} row(s)", rows.len()),
        Err(e) => format!("error: {e}"),
    }
}

fn indent(lines: &[String]) -> String {
    if lines.is_empty() {
        return "    (no rows)".to_string();
    }
    lines
        .iter()
        .map(|l| format!("    {l}"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Recursively collect `*.slt` files under `dir`, sorted by path for a
/// stable run order.
pub fn discover_slt_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else {
            continue;
        };
        for entry in entries.flatten() {
            let p = entry.path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "slt") {
                out.push(p);
            }
        }
    }
    out.sort();
    out
}

/// Run every `.slt` file under `dir`. Returns `(files run, failures)` —
/// the caller decides whether an empty directory is itself a failure.
pub fn run_slt_dir(dir: &Path) -> (usize, Vec<String>) {
    let files = discover_slt_files(dir);
    let mut failures = Vec::new();
    for f in &files {
        failures.extend(run_slt_file(f));
    }
    (files.len(), failures)
}

/// Run every `.slt` file under `dir` pinned to one executor path.
pub fn run_slt_dir_with(dir: &Path, exec: ExecPath) -> (usize, Vec<String>) {
    let files = discover_slt_files(dir);
    let mut failures = Vec::new();
    for f in &files {
        failures.extend(run_slt_file_with(f, exec));
    }
    (files.len(), failures)
}

/// Run every `.slt` file under `dir` in dual row/vector lockstep mode.
pub fn run_slt_dir_dual(dir: &Path) -> (usize, Vec<String>) {
    let files = discover_slt_files(dir);
    let mut failures = Vec::new();
    for f in &files {
        failures.extend(run_slt_file_dual(f));
    }
    (files.len(), failures)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_text(text: &str) -> Vec<String> {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "sstore-slt-inline-{}-{:?}.slt",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::write(&p, text).unwrap();
        let f = run_slt_file(&p);
        std::fs::remove_file(&p).ok();
        f
    }

    #[test]
    fn passing_script_reports_nothing() {
        let f = run_text(
            "statement ok\nCREATE TABLE t (id INT, name TEXT, PRIMARY KEY (id))\n\n\
             statement ok\nINSERT INTO t VALUES (1, 'a'), (2, 'b')\n\n\
             query rowsort\nSELECT id, name FROM t\n----\n1 a\n2 b\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn mismatch_is_reported_with_location() {
        let f = run_text(
            "statement ok\nCREATE TABLE t (id INT, PRIMARY KEY (id))\n\n\
             query\nSELECT COUNT(*) FROM t\n----\n7\n",
        );
        assert_eq!(f.len(), 1);
        assert!(f[0].contains(":4:"), "{}", f[0]);
        assert!(f[0].contains("result mismatch"), "{}", f[0]);
    }

    #[test]
    fn expected_error_matches_substring() {
        let f = run_text(
            "statement ok\nCREATE TABLE t (id INT, PRIMARY KEY (id))\n\n\
             statement ok\nINSERT INTO t VALUES (1)\n\n\
             statement error duplicate\nINSERT INTO t VALUES (1)\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unexpected_success_is_a_failure() {
        let f = run_text(
            "statement ok\nCREATE TABLE t (id INT, PRIMARY KEY (id))\n\n\
             statement error duplicate\nINSERT INTO t VALUES (1)\n",
        );
        assert_eq!(f.len(), 1);
        assert!(f[0].contains("statement succeeded"), "{}", f[0]);
    }
}
