//! The golden suite: every `.slt` file under `tests/slt/` runs against a
//! fresh engine; any drift from the expected results fails with per-file
//! diffs. Add coverage by adding files — no Rust required.
//!
//! The suite runs three ways: pinned to the row interpreter, pinned to
//! the vectorized executor, and in dual lockstep mode where every
//! query's raw output must match across both engines before any
//! `rowsort` normalization.

use sstore_slt::ExecPath;
use std::path::{Path, PathBuf};

fn slt_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/slt")
}

fn assert_clean(files: usize, failures: Vec<String>, dir: &Path) {
    assert!(
        files >= 15,
        "expected at least 15 .slt files under {}, found {files}",
        dir.display()
    );
    assert!(
        failures.is_empty(),
        "{} slt failure(s):\n{}",
        failures.len(),
        failures.join("\n")
    );
}

#[test]
fn golden_slt_suite_passes_row_engine() {
    let dir = slt_dir();
    let (files, failures) = sstore_slt::run_slt_dir_with(&dir, ExecPath::Row);
    assert_clean(files, failures, &dir);
}

#[test]
fn golden_slt_suite_passes_vector_engine() {
    let dir = slt_dir();
    let (files, failures) = sstore_slt::run_slt_dir_with(&dir, ExecPath::Vector);
    assert_clean(files, failures, &dir);
}

#[test]
fn golden_slt_suite_row_vector_parity() {
    let dir = slt_dir();
    let (files, failures) = sstore_slt::run_slt_dir_dual(&dir);
    assert_clean(files, failures, &dir);
}
