//! The golden suite: every `.slt` file under `tests/slt/` runs against a
//! fresh engine; any drift from the expected results fails with per-file
//! diffs. Add coverage by adding files — no Rust required.

use std::path::Path;

#[test]
fn golden_slt_suite_passes() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/slt");
    let (files, failures) = sstore_slt::run_slt_dir(&dir);
    assert!(
        files >= 15,
        "expected at least 15 .slt files under {}, found {files}",
        dir.display()
    );
    assert!(
        failures.is_empty(),
        "{} slt failure(s):\n{}",
        failures.len(),
        failures.join("\n")
    );
}
