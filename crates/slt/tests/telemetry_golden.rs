//! The telemetry workload against its closed-form oracle, across cluster
//! widths: per-device stats (stage 1, routed by device), per-area stats
//! (stage 2, fed only through the cross-partition `area_feed` edge), and
//! poison-batch atomicity must all match exactly, regardless of how the
//! rows shard.

use sstore_common::Value;
use sstore_core::{Cluster, RouteSpec, SStoreBuilder, TxnStatus};
use sstore_slt::telemetry::{
    deploy_telemetry, gen_batches, TelemetryOracle, POISON_TEMP, TELEMETRY_EDGES,
};

fn run_cluster(partitions: usize, seed: u64) {
    let cluster = Cluster::with_edges(
        partitions,
        RouteSpec::hash(0),
        64,
        &SStoreBuilder::new(),
        deploy_telemetry,
        TELEMETRY_EDGES,
    )
    .unwrap();
    let batches = gen_batches(seed, 20, 4, 8, 3);
    for (i, batch) in batches.iter().enumerate() {
        let poison = batch
            .iter()
            .any(|r| matches!(r[2], Value::Int(t) if t <= POISON_TEMP));
        // A poison batch aborts whole — Err on the 2PC path, Ok with an
        // aborted TE when it lands on a single shard. A clean batch must
        // commit everywhere.
        let outcome = cluster
            .submit_batch_async("ingest", batch.clone())
            .unwrap()
            .wait();
        let committed = outcome.is_ok_and(|outcomes| {
            outcomes
                .iter()
                .all(|po| po.outcomes.iter().all(|o| o.status == TxnStatus::Committed))
        });
        assert_eq!(committed, !poison, "batch {i} @ {partitions}p");
    }
    cluster.quiesce().unwrap();

    let oracle = TelemetryOracle::of_prefix(&batches, batches.len());
    let mut device: Vec<Vec<Value>> = cluster
        .query_all("SELECT device, n, total, hot FROM device_stats", &[])
        .unwrap()
        .iter()
        .map(|r| r.to_values())
        .collect();
    device.sort();
    assert_eq!(device, oracle.device_rows(), "device_stats @ {partitions}p");
    let mut area: Vec<Vec<Value>> = cluster
        .query_all("SELECT area, n, total, maxt FROM area_stats", &[])
        .unwrap()
        .iter()
        .map(|r| r.to_values())
        .collect();
    area.sort();
    assert_eq!(area, oracle.area_rows(), "area_stats @ {partitions}p");
}

#[test]
fn telemetry_matches_oracle_single_partition() {
    run_cluster(1, 11);
}

#[test]
fn telemetry_matches_oracle_two_partitions() {
    run_cluster(2, 12);
}

#[test]
fn telemetry_matches_oracle_three_partitions() {
    run_cluster(3, 13);
}
