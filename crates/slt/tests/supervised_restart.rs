//! A worker killed mid-traffic under the telemetry workload: the
//! supervisor restarts the partition from its log, the client retries
//! the one retryable failure, and the final state — device stats, area
//! stats fed through the cross-partition edge machinery, and a cold
//! recovery over the same directory — must equal the closed-form oracle
//! of exactly the applied batches. Exactly-once, checked end to end.

use sstore_core::common::fault::{self, KillMode};
use sstore_core::common::Value;
use sstore_core::{Cluster, PartitionHealth, RetryPolicy, RouteSpec, SStoreBuilder, TxnStatus};
use sstore_slt::telemetry::{deploy_telemetry, gen_batches, TelemetryOracle, TELEMETRY_EDGES};
use std::path::{Path, PathBuf};

fn tempdir() -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("sstore-supervised-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    std::fs::create_dir_all(&p).unwrap();
    p
}

fn sorted_rows(cluster: &Cluster, sql: &str) -> Vec<Vec<Value>> {
    let mut rows: Vec<Vec<Value>> = cluster
        .query_all(sql, &[])
        .unwrap()
        .iter()
        .map(|r| r.to_values())
        .collect();
    rows.sort();
    rows
}

fn assert_matches_oracle(cluster: &Cluster, oracle: &TelemetryOracle) {
    assert_eq!(
        sorted_rows(cluster, "SELECT device, n, total, hot FROM device_stats"),
        oracle.device_rows()
    );
    assert_eq!(
        sorted_rows(cluster, "SELECT area, n, total, maxt FROM area_stats"),
        oracle.area_rows()
    );
}

#[test]
fn worker_killed_mid_traffic_matches_oracle_after_retry() {
    let dir = tempdir();
    let batches = gen_batches(11, 20, 4, 6, 3);
    // One partition so the kill point (on the single-partition ingest
    // path) is guaranteed traffic; the area edge still exercises the
    // full hub/forward/ack machinery.
    let builder = SStoreBuilder::new().durability(&dir, 1);
    let cluster = Cluster::with_edges(
        1,
        RouteSpec::hash(0),
        64,
        &builder,
        deploy_telemetry,
        TELEMETRY_EDGES,
    )
    .unwrap();

    let mut applied: Vec<usize> = Vec::new();
    for (i, batch) in batches.iter().enumerate() {
        if i == 7 {
            // The worker dies holding batch 7, before logging it: the
            // failure is retryable and the retry must land exactly once.
            fault::arm_once("worker-killed-live", 1, KillMode::Panic);
        }
        let res = RetryPolicy::default()
            .run(|| cluster.submit_batch_async("ingest", batch.clone())?.wait());
        // Poison batches abort deliberately (non-retryable, not
        // applied); everything else must commit — through the restart.
        let committed = res.is_ok_and(|outcomes| {
            outcomes
                .iter()
                .all(|po| po.outcomes.iter().all(|o| o.status == TxnStatus::Committed))
        });
        if committed {
            applied.push(i);
        }
    }
    assert!(
        applied.contains(&7),
        "the killed batch must succeed on retry"
    );
    let m = cluster.metrics();
    assert_eq!(m.worker_restarts, 1, "exactly one supervised restart");
    assert_eq!(m.health, vec![PartitionHealth::Healthy]);
    cluster.quiesce().unwrap();

    let oracle = TelemetryOracle::of_batches(&batches, applied.iter().copied());
    assert_matches_oracle(&cluster, &oracle);

    // A cold recovery over the same directory agrees: the supervised
    // restart wrote nothing a crash-restart would not.
    drop(cluster);
    let recovered = Cluster::recover(
        1,
        RouteSpec::hash(0),
        64,
        &builder,
        deploy_telemetry,
        TELEMETRY_EDGES,
    )
    .unwrap();
    recovered.quiesce().unwrap();
    assert_matches_oracle(&recovered, &oracle);
    drop(recovered);
    std::fs::remove_dir_all(Path::new(&dir)).ok();
}
