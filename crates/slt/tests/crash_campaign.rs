//! The crash campaign as a test target: 25 seeded trials, each spawning
//! the `crash_campaign` binary as the crash sandbox. Any violated
//! invariant fails with the seed that reproduces it
//! (`SSTORE_FAULT_SEED=<seed> cargo run -p sstore-slt --bin crash_campaign`).

use sstore_slt::campaign::run_campaign;
use std::path::Path;

#[test]
fn campaign_25_seeds_hold_invariants() {
    let child = Path::new(env!("CARGO_BIN_EXE_crash_campaign"));
    let failures = run_campaign(child, 0..25);
    assert!(
        failures.is_empty(),
        "{} campaign failure(s); replay with SSTORE_FAULT_SEED=<seed>: {:?}",
        failures.len(),
        failures
            .iter()
            .map(|f| (f.plan.seed, f.plan.point, f.failure.clone()))
            .collect::<Vec<_>>()
    );
}
