//! Bound expressions and their evaluation.
//!
//! The planner resolves AST expressions ([`crate::ast::Expr`]) into
//! [`BoundExpr`]s whose column references are positional offsets into the
//! executor's row layout, so evaluation is allocation-light and needs no
//! name lookups.

use crate::ast::{BinOp, UnaryOp};
use sstore_common::{Error, Result, Value};

/// A name-resolved expression, ready for evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundExpr {
    /// Constant.
    Literal(Value),
    /// Positional statement parameter.
    Param(usize),
    /// Offset into the current row.
    ColumnRef(usize),
    /// Unary op.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<BoundExpr>,
    },
    /// Binary op.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<BoundExpr>,
        /// Right operand.
        right: Box<BoundExpr>,
    },
    /// `IS [NOT] NULL`.
    IsNull {
        /// Operand.
        expr: Box<BoundExpr>,
        /// Negation flag.
        negated: bool,
    },
    /// `[NOT] IN (list)`.
    InList {
        /// Test expression.
        expr: Box<BoundExpr>,
        /// Candidates.
        list: Vec<BoundExpr>,
        /// Negation flag.
        negated: bool,
    },
    /// `[NOT] BETWEEN`.
    Between {
        /// Test expression.
        expr: Box<BoundExpr>,
        /// Lower bound.
        lo: Box<BoundExpr>,
        /// Upper bound.
        hi: Box<BoundExpr>,
        /// Negation flag.
        negated: bool,
    },
    /// Scalar function call.
    Scalar {
        /// Which function.
        func: ScalarFn,
        /// Arguments.
        args: Vec<BoundExpr>,
    },
    /// Reference to a pre-evaluated uncorrelated scalar subquery (slot in
    /// [`EvalEnv::subs`]). The executor evaluates the statement's subquery
    /// plans once, in slot order, before running the main plan.
    SubqueryRef(usize),
}

/// Supported scalar functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalarFn {
    /// `ABS(x)`
    Abs,
    /// `SQRT(x)`
    Sqrt,
    /// `FLOOR(x)`
    Floor,
    /// `CEIL(x)`
    Ceil,
    /// `POWER(x, y)`
    Power,
    /// `LENGTH(s)`
    Length,
    /// `LOWER(s)`
    Lower,
    /// `UPPER(s)`
    Upper,
    /// `COALESCE(a, b, ...)` — first non-NULL argument.
    Coalesce,
    /// `NOW()` — current logical time; substituted by the planner with the
    /// statement's evaluation timestamp parameter, but kept as a function
    /// for direct evaluation too (arg 0 = timestamp injected by executor).
    Now,
}

impl ScalarFn {
    /// Resolve a lower-cased function name.
    pub fn by_name(name: &str) -> Option<ScalarFn> {
        Some(match name {
            "abs" => ScalarFn::Abs,
            "sqrt" => ScalarFn::Sqrt,
            "floor" => ScalarFn::Floor,
            "ceil" | "ceiling" => ScalarFn::Ceil,
            "power" | "pow" => ScalarFn::Power,
            "length" | "len" => ScalarFn::Length,
            "lower" => ScalarFn::Lower,
            "upper" => ScalarFn::Upper,
            "coalesce" => ScalarFn::Coalesce,
            "now" => ScalarFn::Now,
            _ => return None,
        })
    }

    /// Expected argument count (`None` = variadic).
    pub fn arity(self) -> Option<usize> {
        match self {
            ScalarFn::Power => Some(2),
            ScalarFn::Coalesce => None,
            ScalarFn::Now => Some(0),
            _ => Some(1),
        }
    }
}

/// Everything evaluation needs besides the expression itself.
#[derive(Debug, Clone, Copy)]
pub struct EvalEnv<'a> {
    /// Statement parameters (`?` placeholders).
    pub params: &'a [Value],
    /// Logical time at statement start (for `NOW()`).
    pub now: i64,
    /// Pre-evaluated scalar subquery results, by slot.
    pub subs: &'a [Value],
}

impl<'a> EvalEnv<'a> {
    /// Environment with no parameters.
    pub fn empty() -> EvalEnv<'static> {
        EvalEnv {
            params: &[],
            now: 0,
            subs: &[],
        }
    }
}

/// Evaluate `expr` against `row`.
pub fn eval(expr: &BoundExpr, row: &[Value], env: &EvalEnv<'_>) -> Result<Value> {
    match expr {
        BoundExpr::Literal(v) => Ok(v.clone()),
        BoundExpr::Param(i) => env
            .params
            .get(*i)
            .cloned()
            .ok_or_else(|| Error::Constraint(format!("missing parameter ?{i}"))),
        BoundExpr::ColumnRef(i) => row
            .get(*i)
            .cloned()
            .ok_or_else(|| Error::Internal(format!("column offset {i} out of range"))),
        BoundExpr::Unary { op, expr } => {
            let v = eval(expr, row, env)?;
            eval_unary(*op, v)
        }
        BoundExpr::Binary { op, left, right } => eval_binary(*op, left, right, row, env),
        BoundExpr::IsNull { expr, negated } => {
            let v = eval(expr, row, env)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        BoundExpr::InList {
            expr,
            list,
            negated,
        } => {
            let v = eval(expr, row, env)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let mut saw_null = false;
            for item in list {
                let cand = eval(item, row, env)?;
                match v.sql_eq(&cand) {
                    Some(true) => return Ok(Value::Bool(!*negated)),
                    Some(false) => {}
                    None => saw_null = true,
                }
            }
            if saw_null {
                Ok(Value::Null)
            } else {
                Ok(Value::Bool(*negated))
            }
        }
        BoundExpr::Between {
            expr,
            lo,
            hi,
            negated,
        } => {
            let v = eval(expr, row, env)?;
            let lo = eval(lo, row, env)?;
            let hi = eval(hi, row, env)?;
            let ge_lo = v.sql_cmp(&lo).map(|o| o != std::cmp::Ordering::Less);
            let le_hi = v.sql_cmp(&hi).map(|o| o != std::cmp::Ordering::Greater);
            match (ge_lo, le_hi) {
                (Some(a), Some(b)) => Ok(Value::Bool((a && b) != *negated)),
                _ => Ok(Value::Null),
            }
        }
        BoundExpr::SubqueryRef(i) => env
            .subs
            .get(*i)
            .cloned()
            .ok_or_else(|| Error::Internal(format!("missing subquery slot {i}"))),
        BoundExpr::Scalar { func, args } => {
            if *func == ScalarFn::Now {
                return Ok(Value::Timestamp(env.now));
            }
            let vals: Vec<Value> = args
                .iter()
                .map(|a| eval(a, row, env))
                .collect::<Result<_>>()?;
            eval_scalar(*func, vals)
        }
    }
}

/// Evaluate a predicate: NULL counts as false (SQL WHERE semantics).
pub fn eval_pred(expr: &BoundExpr, row: &[Value], env: &EvalEnv<'_>) -> Result<bool> {
    match eval(expr, row, env)? {
        Value::Bool(b) => Ok(b),
        Value::Null => Ok(false),
        other => Err(Error::TypeMismatch(format!(
            "predicate evaluated to non-boolean {other}"
        ))),
    }
}

fn eval_unary(op: UnaryOp, v: Value) -> Result<Value> {
    match op {
        UnaryOp::Neg => match v {
            Value::Null => Ok(Value::Null),
            Value::Int(i) => i
                .checked_neg()
                .map(Value::Int)
                .ok_or_else(|| Error::Constraint("integer overflow in negation".into())),
            Value::Float(f) => Ok(Value::Float(-f)),
            other => Err(Error::TypeMismatch(format!("cannot negate {other}"))),
        },
        UnaryOp::Not => match v {
            Value::Null => Ok(Value::Null),
            Value::Bool(b) => Ok(Value::Bool(!b)),
            other => Err(Error::TypeMismatch(format!("NOT applied to {other}"))),
        },
    }
}

fn eval_binary(
    op: BinOp,
    left: &BoundExpr,
    right: &BoundExpr,
    row: &[Value],
    env: &EvalEnv<'_>,
) -> Result<Value> {
    // AND/OR get short-circuit + three-valued logic.
    match op {
        BinOp::And => {
            let l = eval(left, row, env)?;
            match l {
                Value::Bool(false) => return Ok(Value::Bool(false)),
                Value::Bool(true) | Value::Null => {}
                other => {
                    return Err(Error::TypeMismatch(format!("AND applied to {other}")));
                }
            }
            let r = eval(right, row, env)?;
            return match (l, r) {
                (_, Value::Bool(false)) => Ok(Value::Bool(false)),
                (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                (Value::Bool(a), Value::Bool(b)) => Ok(Value::Bool(a && b)),
                (_, other) => Err(Error::TypeMismatch(format!("AND applied to {other}"))),
            };
        }
        BinOp::Or => {
            let l = eval(left, row, env)?;
            match l {
                Value::Bool(true) => return Ok(Value::Bool(true)),
                Value::Bool(false) | Value::Null => {}
                other => {
                    return Err(Error::TypeMismatch(format!("OR applied to {other}")));
                }
            }
            let r = eval(right, row, env)?;
            return match (l, r) {
                (_, Value::Bool(true)) => Ok(Value::Bool(true)),
                (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                (Value::Bool(a), Value::Bool(b)) => Ok(Value::Bool(a || b)),
                (_, other) => Err(Error::TypeMismatch(format!("OR applied to {other}"))),
            };
        }
        _ => {}
    }

    let l = eval(left, row, env)?;
    let r = eval(right, row, env)?;
    match op {
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => arith(op, l, r),
        BinOp::Eq => Ok(tri(l.sql_eq(&r))),
        BinOp::Neq => Ok(tri(l.sql_eq(&r).map(|b| !b))),
        BinOp::Lt => Ok(tri(l.sql_cmp(&r).map(|o| o == std::cmp::Ordering::Less))),
        BinOp::Le => Ok(tri(l.sql_cmp(&r).map(|o| o != std::cmp::Ordering::Greater))),
        BinOp::Gt => Ok(tri(l.sql_cmp(&r).map(|o| o == std::cmp::Ordering::Greater))),
        BinOp::Ge => Ok(tri(l.sql_cmp(&r).map(|o| o != std::cmp::Ordering::Less))),
        BinOp::And | BinOp::Or => unreachable!("handled above"),
    }
}

fn tri(b: Option<bool>) -> Value {
    match b {
        Some(b) => Value::Bool(b),
        None => Value::Null,
    }
}

fn arith(op: BinOp, l: Value, r: Value) -> Result<Value> {
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    // Timestamp arithmetic behaves like Int.
    let as_int = |v: &Value| match v {
        Value::Int(i) | Value::Timestamp(i) => Some(*i),
        _ => None,
    };
    match (as_int(&l), as_int(&r)) {
        (Some(a), Some(b)) => {
            let out = match op {
                BinOp::Add => a.checked_add(b),
                BinOp::Sub => a.checked_sub(b),
                BinOp::Mul => a.checked_mul(b),
                BinOp::Div => {
                    if b == 0 {
                        return Err(Error::Constraint("division by zero".into()));
                    }
                    a.checked_div(b)
                }
                BinOp::Mod => {
                    if b == 0 {
                        return Err(Error::Constraint("modulo by zero".into()));
                    }
                    a.checked_rem(b)
                }
                _ => unreachable!(),
            };
            out.map(Value::Int)
                .ok_or_else(|| Error::Constraint("integer overflow".into()))
        }
        _ => {
            let a = l.as_float()?;
            let b = r.as_float()?;
            let out = match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => {
                    if b == 0.0 {
                        return Err(Error::Constraint("division by zero".into()));
                    }
                    a / b
                }
                BinOp::Mod => a % b,
                _ => unreachable!(),
            };
            Ok(Value::Float(out))
        }
    }
}

fn eval_scalar(func: ScalarFn, mut vals: Vec<Value>) -> Result<Value> {
    if let Some(expected) = func.arity() {
        if vals.len() != expected {
            return Err(Error::Constraint(format!(
                "{func:?} expects {expected} argument(s), got {}",
                vals.len()
            )));
        }
    }
    match func {
        ScalarFn::Coalesce => Ok(vals
            .into_iter()
            .find(|v| !v.is_null())
            .unwrap_or(Value::Null)),
        ScalarFn::Abs => match vals.pop().unwrap() {
            Value::Null => Ok(Value::Null),
            Value::Int(i) => Ok(Value::Int(i.abs())),
            Value::Float(f) => Ok(Value::Float(f.abs())),
            other => Err(Error::TypeMismatch(format!("ABS of {other}"))),
        },
        ScalarFn::Sqrt => {
            let v = vals.pop().unwrap();
            if v.is_null() {
                return Ok(Value::Null);
            }
            let f = v.as_float()?;
            if f < 0.0 {
                return Err(Error::Constraint("SQRT of negative value".into()));
            }
            Ok(Value::Float(f.sqrt()))
        }
        ScalarFn::Floor => {
            let v = vals.pop().unwrap();
            if v.is_null() {
                return Ok(Value::Null);
            }
            Ok(Value::Int(v.as_float()?.floor() as i64))
        }
        ScalarFn::Ceil => {
            let v = vals.pop().unwrap();
            if v.is_null() {
                return Ok(Value::Null);
            }
            Ok(Value::Int(v.as_float()?.ceil() as i64))
        }
        ScalarFn::Power => {
            let y = vals.pop().unwrap();
            let x = vals.pop().unwrap();
            if x.is_null() || y.is_null() {
                return Ok(Value::Null);
            }
            Ok(Value::Float(x.as_float()?.powf(y.as_float()?)))
        }
        ScalarFn::Length => match vals.pop().unwrap() {
            Value::Null => Ok(Value::Null),
            Value::Text(s) => Ok(Value::Int(s.chars().count() as i64)),
            other => Err(Error::TypeMismatch(format!("LENGTH of {other}"))),
        },
        ScalarFn::Lower => match vals.pop().unwrap() {
            Value::Null => Ok(Value::Null),
            Value::Text(s) => Ok(Value::Text(s.to_lowercase())),
            other => Err(Error::TypeMismatch(format!("LOWER of {other}"))),
        },
        ScalarFn::Upper => match vals.pop().unwrap() {
            Value::Null => Ok(Value::Null),
            Value::Text(s) => Ok(Value::Text(s.to_uppercase())),
            other => Err(Error::TypeMismatch(format!("UPPER of {other}"))),
        },
        ScalarFn::Now => unreachable!("handled in eval"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: impl Into<Value>) -> BoundExpr {
        BoundExpr::Literal(v.into())
    }

    fn bin(op: BinOp, l: BoundExpr, r: BoundExpr) -> BoundExpr {
        BoundExpr::Binary {
            op,
            left: Box::new(l),
            right: Box::new(r),
        }
    }

    fn ev(e: &BoundExpr) -> Value {
        eval(e, &[], &EvalEnv::empty()).unwrap()
    }

    #[test]
    fn integer_arithmetic() {
        assert_eq!(ev(&bin(BinOp::Add, lit(2), lit(3))), Value::Int(5));
        assert_eq!(ev(&bin(BinOp::Div, lit(7), lit(2))), Value::Int(3));
        assert_eq!(ev(&bin(BinOp::Mod, lit(7), lit(2))), Value::Int(1));
    }

    #[test]
    fn mixed_arithmetic_is_float() {
        assert_eq!(ev(&bin(BinOp::Mul, lit(2), lit(1.5))), Value::Float(3.0));
    }

    #[test]
    fn division_by_zero_errors() {
        let e = bin(BinOp::Div, lit(1), lit(0));
        assert!(eval(&e, &[], &EvalEnv::empty()).is_err());
        let e = bin(BinOp::Mod, lit(1), lit(0));
        assert!(eval(&e, &[], &EvalEnv::empty()).is_err());
    }

    #[test]
    fn overflow_is_an_error_not_a_panic() {
        let e = bin(BinOp::Add, lit(i64::MAX), lit(1));
        assert_eq!(
            eval(&e, &[], &EvalEnv::empty()).unwrap_err().kind(),
            "constraint"
        );
    }

    #[test]
    fn null_propagates_through_arithmetic() {
        assert_eq!(
            ev(&bin(BinOp::Add, lit(1), BoundExpr::Literal(Value::Null))),
            Value::Null
        );
    }

    #[test]
    fn three_valued_and_or() {
        let null = BoundExpr::Literal(Value::Null);
        // false AND NULL = false; true AND NULL = NULL
        assert_eq!(
            ev(&bin(BinOp::And, lit(false), null.clone())),
            Value::Bool(false)
        );
        assert_eq!(ev(&bin(BinOp::And, lit(true), null.clone())), Value::Null);
        // true OR NULL = true; false OR NULL = NULL
        assert_eq!(
            ev(&bin(BinOp::Or, lit(true), null.clone())),
            Value::Bool(true)
        );
        assert_eq!(ev(&bin(BinOp::Or, lit(false), null)), Value::Null);
    }

    #[test]
    fn comparisons() {
        assert_eq!(ev(&bin(BinOp::Lt, lit(1), lit(2))), Value::Bool(true));
        assert_eq!(ev(&bin(BinOp::Ge, lit(2), lit(2))), Value::Bool(true));
        assert_eq!(ev(&bin(BinOp::Eq, lit("a"), lit("a"))), Value::Bool(true));
        assert_eq!(
            ev(&bin(BinOp::Neq, lit(1), BoundExpr::Literal(Value::Null))),
            Value::Null
        );
    }

    #[test]
    fn in_list_with_nulls() {
        let e = BoundExpr::InList {
            expr: Box::new(lit(3)),
            list: vec![lit(1), BoundExpr::Literal(Value::Null)],
            negated: false,
        };
        // not found but NULL present -> NULL
        assert_eq!(ev(&e), Value::Null);
        let e = BoundExpr::InList {
            expr: Box::new(lit(1)),
            list: vec![lit(1), BoundExpr::Literal(Value::Null)],
            negated: false,
        };
        assert_eq!(ev(&e), Value::Bool(true));
    }

    #[test]
    fn between() {
        let e = BoundExpr::Between {
            expr: Box::new(lit(5)),
            lo: Box::new(lit(1)),
            hi: Box::new(lit(10)),
            negated: false,
        };
        assert_eq!(ev(&e), Value::Bool(true));
        let e = BoundExpr::Between {
            expr: Box::new(lit(5)),
            lo: Box::new(lit(6)),
            hi: Box::new(lit(10)),
            negated: true,
        };
        assert_eq!(ev(&e), Value::Bool(true));
    }

    #[test]
    fn column_and_param_refs() {
        let row = vec![Value::Int(10), Value::Text("x".into())];
        let env = EvalEnv {
            params: &[Value::Int(99)],
            now: 0,
            subs: &[],
        };
        assert_eq!(
            eval(&BoundExpr::ColumnRef(1), &row, &env).unwrap(),
            Value::Text("x".into())
        );
        assert_eq!(
            eval(&BoundExpr::Param(0), &row, &env).unwrap(),
            Value::Int(99)
        );
        assert!(eval(&BoundExpr::Param(1), &row, &env).is_err());
    }

    #[test]
    fn scalar_functions() {
        let call = |f, args| BoundExpr::Scalar { func: f, args };
        assert_eq!(ev(&call(ScalarFn::Abs, vec![lit(-4)])), Value::Int(4));
        assert_eq!(ev(&call(ScalarFn::Sqrt, vec![lit(9.0)])), Value::Float(3.0));
        assert_eq!(ev(&call(ScalarFn::Floor, vec![lit(2.7)])), Value::Int(2));
        assert_eq!(ev(&call(ScalarFn::Ceil, vec![lit(2.1)])), Value::Int(3));
        assert_eq!(
            ev(&call(ScalarFn::Power, vec![lit(2.0), lit(10.0)])),
            Value::Float(1024.0)
        );
        assert_eq!(
            ev(&call(ScalarFn::Length, vec![lit("héllo")])),
            Value::Int(5)
        );
        assert_eq!(
            ev(&call(ScalarFn::Upper, vec![lit("ab")])),
            Value::Text("AB".into())
        );
        assert_eq!(
            ev(&call(
                ScalarFn::Coalesce,
                vec![BoundExpr::Literal(Value::Null), lit(7)]
            )),
            Value::Int(7)
        );
    }

    #[test]
    fn now_uses_env() {
        let env = EvalEnv {
            params: &[],
            now: 1234,
            subs: &[],
        };
        let e = BoundExpr::Scalar {
            func: ScalarFn::Now,
            args: vec![],
        };
        assert_eq!(eval(&e, &[], &env).unwrap(), Value::Timestamp(1234));
    }

    #[test]
    fn pred_null_is_false() {
        assert!(!eval_pred(&BoundExpr::Literal(Value::Null), &[], &EvalEnv::empty()).unwrap());
        assert!(eval_pred(&lit(true), &[], &EvalEnv::empty()).unwrap());
        assert!(eval_pred(&lit(1), &[], &EvalEnv::empty()).is_err());
    }

    #[test]
    fn is_null_checks() {
        let e = BoundExpr::IsNull {
            expr: Box::new(BoundExpr::Literal(Value::Null)),
            negated: false,
        };
        assert_eq!(ev(&e), Value::Bool(true));
        let e = BoundExpr::IsNull {
            expr: Box::new(lit(1)),
            negated: true,
        };
        assert_eq!(ev(&e), Value::Bool(true));
    }
}
