//! Recursive-descent parser for the S-Store SQL subset.

use crate::ast::*;
use crate::lexer::{tokenize, Token};
use sstore_common::{DataType, Error, Result, Value};

/// Parse one SQL statement (a trailing `;` is allowed).
pub fn parse(sql: &str) -> Result<Stmt> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.eat_optional_semi();
    if !p.at_end() {
        return Err(Error::Parse(format!(
            "trailing tokens after statement: {:?}",
            p.peek()
        )));
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.pos + 1)
    }

    fn next(&mut self) -> Result<Token> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or_else(|| Error::Parse("unexpected end of input".into()))?;
        self.pos += 1;
        Ok(t)
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token) -> Result<()> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(Error::Parse(format!(
                "expected {t:?}, found {:?}",
                self.peek()
            )))
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_some_and(|t| t.is_kw(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(Error::Parse(format!(
                "expected `{kw}`, found {:?}",
                self.peek()
            )))
        }
    }

    fn peek_kw(&self, kw: &str) -> bool {
        self.peek().is_some_and(|t| t.is_kw(kw))
    }

    fn ident(&mut self) -> Result<String> {
        match self.next()? {
            Token::Ident(s) => Ok(s),
            other => Err(Error::Parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn eat_optional_semi(&mut self) {
        while self.eat(&Token::Semi) {}
    }

    fn statement(&mut self) -> Result<Stmt> {
        if self.peek_kw("select") {
            Ok(Stmt::Select(self.select()?))
        } else if self.peek_kw("insert") {
            self.insert()
        } else if self.peek_kw("update") {
            self.update()
        } else if self.peek_kw("delete") {
            self.delete()
        } else if self.peek_kw("create") {
            self.create()
        } else {
            Err(Error::Parse(format!(
                "expected a statement, found {:?}",
                self.peek()
            )))
        }
    }

    // ---- SELECT ---------------------------------------------------------

    fn select(&mut self) -> Result<Select> {
        self.expect_kw("select")?;
        let distinct = self.eat_kw("distinct");
        let mut items = Vec::new();
        loop {
            if self.eat(&Token::Star) {
                items.push(SelectItem::Star);
            } else {
                let expr = self.expr()?;
                let alias = if self.eat_kw("as") {
                    Some(self.ident()?)
                } else {
                    None
                };
                items.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        let from = if self.eat_kw("from") {
            Some(self.parse_from_clause()?)
        } else {
            None
        };
        let where_pred = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            loop {
                group_by.push(self.expr()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let having = if self.eat_kw("having") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let expr = self.expr()?;
                let desc = if self.eat_kw("desc") {
                    true
                } else {
                    self.eat_kw("asc");
                    false
                };
                order_by.push(OrderKey { expr, desc });
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("limit") {
            match self.next()? {
                Token::Int(n) if n >= 0 => Some(n as u64),
                other => return Err(Error::Parse(format!("bad LIMIT value {other:?}"))),
            }
        } else {
            None
        };
        Ok(Select {
            distinct,
            items,
            from,
            where_pred,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    fn parse_from_clause(&mut self) -> Result<FromClause> {
        let base = self.table_ref()?;
        let mut joins = Vec::new();
        loop {
            // Support `JOIN`, `INNER JOIN`, and comma joins with WHERE.
            if self.eat_kw("inner") {
                self.expect_kw("join")?;
            } else if !self.eat_kw("join") {
                if self.eat(&Token::Comma) {
                    // comma join: ON predicate folded into WHERE by planner;
                    // represent as a TRUE join condition here.
                    let t = self.table_ref()?;
                    joins.push((t, Expr::Literal(Value::Bool(true))));
                    continue;
                }
                break;
            }
            let t = self.table_ref()?;
            self.expect_kw("on")?;
            let on = self.expr()?;
            joins.push((t, on));
        }
        Ok(FromClause { base, joins })
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        let name = self.ident()?;
        let alias = if self.eat_kw("as") {
            Some(self.ident()?)
        } else if let Some(Token::Ident(s)) = self.peek() {
            // Bare alias, unless it's a clause keyword.
            const CLAUSE_KWS: &[&str] = &[
                "where", "group", "having", "order", "limit", "join", "inner", "on", "set",
                "values",
            ];
            if CLAUSE_KWS.iter().any(|k| s.eq_ignore_ascii_case(k)) {
                None
            } else {
                Some(self.ident()?)
            }
        } else {
            None
        };
        Ok(TableRef { name, alias })
    }

    // ---- INSERT / UPDATE / DELETE ---------------------------------------

    fn insert(&mut self) -> Result<Stmt> {
        self.expect_kw("insert")?;
        self.expect_kw("into")?;
        let table = self.ident()?;
        let mut columns = Vec::new();
        if self.eat(&Token::LParen) {
            loop {
                columns.push(self.ident()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
        }
        let source = if self.eat_kw("values") {
            let mut rows = Vec::new();
            loop {
                self.expect(&Token::LParen)?;
                let mut row = Vec::new();
                loop {
                    row.push(self.expr()?);
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
                self.expect(&Token::RParen)?;
                rows.push(row);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            InsertSource::Values(rows)
        } else if self.peek_kw("select") {
            InsertSource::Select(Box::new(self.select()?))
        } else {
            return Err(Error::Parse(format!(
                "expected VALUES or SELECT, found {:?}",
                self.peek()
            )));
        };
        Ok(Stmt::Insert(Insert {
            table,
            columns,
            source,
        }))
    }

    fn update(&mut self) -> Result<Stmt> {
        self.expect_kw("update")?;
        let table = self.ident()?;
        self.expect_kw("set")?;
        let mut sets = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect(&Token::Eq)?;
            let e = self.expr()?;
            sets.push((col, e));
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        let where_pred = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Stmt::Update(Update {
            table,
            sets,
            where_pred,
        }))
    }

    fn delete(&mut self) -> Result<Stmt> {
        self.expect_kw("delete")?;
        self.expect_kw("from")?;
        let table = self.ident()?;
        let where_pred = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Stmt::Delete(Delete { table, where_pred }))
    }

    // ---- CREATE ----------------------------------------------------------

    fn create(&mut self) -> Result<Stmt> {
        self.expect_kw("create")?;
        if self.eat_kw("table") {
            let name = self.ident()?;
            let (columns, primary_key) = self.column_defs(true)?;
            Ok(Stmt::CreateTable(CreateTable {
                name,
                columns,
                primary_key,
            }))
        } else if self.eat_kw("stream") {
            let name = self.ident()?;
            let (columns, pk) = self.column_defs(false)?;
            debug_assert!(pk.is_empty());
            Ok(Stmt::CreateStream(CreateStream { name, columns }))
        } else if self.eat_kw("window") {
            let name = self.ident()?;
            let (columns, pk) = self.column_defs(false)?;
            debug_assert!(pk.is_empty());
            let tuple_based = if self.eat_kw("rows") {
                true
            } else if self.eat_kw("range") {
                false
            } else {
                return Err(Error::Parse(format!(
                    "expected ROWS or RANGE, found {:?}",
                    self.peek()
                )));
            };
            let size = self.int_literal()?;
            self.expect_kw("slide")?;
            let slide = self.int_literal()?;
            if size <= 0 || slide <= 0 {
                return Err(Error::Parse(
                    "window size and slide must be positive".into(),
                ));
            }
            Ok(Stmt::CreateWindow(CreateWindow {
                name,
                columns,
                tuple_based,
                size,
                slide,
            }))
        } else {
            Err(Error::Parse(format!(
                "expected TABLE, STREAM, or WINDOW, found {:?}",
                self.peek()
            )))
        }
    }

    fn int_literal(&mut self) -> Result<i64> {
        match self.next()? {
            Token::Int(n) => Ok(n),
            other => Err(Error::Parse(format!("expected integer, found {other:?}"))),
        }
    }

    fn column_defs(&mut self, allow_pk: bool) -> Result<(Vec<ColumnDef>, Vec<String>)> {
        self.expect(&Token::LParen)?;
        let mut cols = Vec::new();
        let mut pk = Vec::new();
        loop {
            if allow_pk && self.eat_kw("primary") {
                self.expect_kw("key")?;
                self.expect(&Token::LParen)?;
                loop {
                    pk.push(self.ident()?);
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
                self.expect(&Token::RParen)?;
            } else {
                let name = self.ident()?;
                let ty = self.data_type()?;
                let mut nullable = true;
                if self.eat_kw("not") {
                    self.expect_kw("null")?;
                    nullable = false;
                } else if self.eat_kw("null") {
                    nullable = true;
                }
                cols.push(ColumnDef { name, ty, nullable });
            }
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::RParen)?;
        Ok((cols, pk))
    }

    fn data_type(&mut self) -> Result<DataType> {
        let name = self.ident()?;
        let ty = match name.to_ascii_lowercase().as_str() {
            "int" | "integer" | "bigint" | "smallint" | "tinyint" => DataType::Int,
            "float" | "double" | "real" | "decimal" => DataType::Float,
            "varchar" | "text" | "char" | "string" => {
                // optional length, ignored
                if self.eat(&Token::LParen) {
                    self.int_literal()?;
                    self.expect(&Token::RParen)?;
                }
                DataType::Text
            }
            "boolean" | "bool" => DataType::Bool,
            "timestamp" => DataType::Timestamp,
            other => return Err(Error::Parse(format!("unknown type `{other}`"))),
        };
        Ok(ty)
    }

    // ---- expressions (precedence climbing) -------------------------------

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_kw("or") {
            let right = self.and_expr()?;
            left = Expr::Binary {
                op: BinOp::Or,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_kw("and") {
            let right = self.not_expr()?;
            left = Expr::Binary {
                op: BinOp::And,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_kw("not") {
            let inner = self.not_expr()?;
            // Fold `NOT EXISTS (...)` into the Exists node directly.
            if let Expr::Exists { select, negated } = inner {
                return Ok(Expr::Exists {
                    select,
                    negated: !negated,
                });
            }
            Ok(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(inner),
            })
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> Result<Expr> {
        let left = self.additive()?;

        // IS [NOT] NULL
        if self.eat_kw("is") {
            let negated = self.eat_kw("not");
            self.expect_kw("null")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        // [NOT] IN / [NOT] BETWEEN
        let negated = if self.peek_kw("not")
            && self
                .peek2()
                .is_some_and(|t| t.is_kw("in") || t.is_kw("between"))
        {
            self.pos += 1;
            true
        } else {
            false
        };
        if self.eat_kw("in") {
            self.expect(&Token::LParen)?;
            let mut list = Vec::new();
            loop {
                list.push(self.expr()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if self.eat_kw("between") {
            let lo = self.additive()?;
            self.expect_kw("and")?;
            let hi = self.additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                lo: Box::new(lo),
                hi: Box::new(hi),
                negated,
            });
        }
        if negated {
            return Err(Error::Parse("dangling NOT".into()));
        }

        let op = match self.peek() {
            Some(Token::Eq) => Some(BinOp::Eq),
            Some(Token::Neq) => Some(BinOp::Neq),
            Some(Token::Lt) => Some(BinOp::Lt),
            Some(Token::Le) => Some(BinOp::Le),
            Some(Token::Gt) => Some(BinOp::Gt),
            Some(Token::Ge) => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.additive()?;
            Ok(Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            })
        } else {
            Ok(left)
        }
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.multiplicative()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                Some(Token::Percent) => BinOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let right = self.unary()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.eat(&Token::Minus) {
            let inner = self.unary()?;
            Ok(Expr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(inner),
            })
        } else if self.eat(&Token::Plus) {
            self.unary()
        } else {
            self.primary()
        }
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.next()? {
            Token::Int(n) => Ok(Expr::Literal(Value::Int(n))),
            Token::Float(f) => Ok(Expr::Literal(Value::Float(f))),
            Token::Str(s) => Ok(Expr::Literal(Value::Text(s))),
            Token::Param => {
                // Positional parameters number themselves left-to-right.
                let n = self
                    .tokens
                    .iter()
                    .take(self.pos - 1)
                    .filter(|t| **t == Token::Param)
                    .count();
                Ok(Expr::Param(n))
            }
            Token::LParen => {
                if self.peek_kw("select") {
                    let sub = self.select()?;
                    self.expect(&Token::RParen)?;
                    return Ok(Expr::Subquery(Box::new(sub)));
                }
                let e = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Token::Ident(name) => {
                let lower = name.to_ascii_lowercase();
                match lower.as_str() {
                    "null" => return Ok(Expr::Literal(Value::Null)),
                    "true" => return Ok(Expr::Literal(Value::Bool(true))),
                    "false" => return Ok(Expr::Literal(Value::Bool(false))),
                    _ => {}
                }
                if self.eat(&Token::LParen) {
                    // EXISTS (SELECT ...)
                    if lower == "exists" && self.peek_kw("select") {
                        let sub = self.select()?;
                        self.expect(&Token::RParen)?;
                        return Ok(Expr::Exists {
                            select: Box::new(sub),
                            negated: false,
                        });
                    }
                    // function call, with optional DISTINCT modifier
                    let distinct = self.eat_kw("distinct");
                    let mut args = Vec::new();
                    if !self.eat(&Token::RParen) {
                        loop {
                            if self.eat(&Token::Star) {
                                args.push(Expr::Wildcard);
                            } else {
                                args.push(self.expr()?);
                            }
                            if !self.eat(&Token::Comma) {
                                break;
                            }
                        }
                        self.expect(&Token::RParen)?;
                    } else if distinct {
                        return Err(Error::Parse("DISTINCT requires an argument".into()));
                    }
                    Ok(Expr::Func {
                        name: lower,
                        args,
                        distinct,
                    })
                } else if self.eat(&Token::Dot) {
                    let col = self.ident()?;
                    Ok(Expr::Column {
                        table: Some(lower),
                        name: col.to_ascii_lowercase(),
                    })
                } else {
                    Ok(Expr::Column {
                        table: None,
                        name: lower,
                    })
                }
            }
            other => Err(Error::Parse(format!(
                "unexpected token in expression: {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sel(sql: &str) -> Select {
        match parse(sql).unwrap() {
            Stmt::Select(s) => s,
            other => panic!("expected select, got {other:?}"),
        }
    }

    #[test]
    fn simple_select() {
        let s = sel("SELECT a, b FROM t WHERE a = 1");
        assert_eq!(s.items.len(), 2);
        assert!(s.where_pred.is_some());
        assert_eq!(s.from.unwrap().base.name, "t");
    }

    #[test]
    fn select_star_order_limit() {
        let s = sel("SELECT * FROM t ORDER BY a DESC, b LIMIT 3");
        assert_eq!(s.items, vec![SelectItem::Star]);
        assert_eq!(s.order_by.len(), 2);
        assert!(s.order_by[0].desc);
        assert!(!s.order_by[1].desc);
        assert_eq!(s.limit, Some(3));
    }

    #[test]
    fn group_by_having() {
        let s = sel("SELECT c, COUNT(*) FROM t GROUP BY c HAVING COUNT(*) > 2");
        assert_eq!(s.group_by.len(), 1);
        assert!(s.having.is_some());
    }

    #[test]
    fn joins() {
        let s = sel("SELECT * FROM a JOIN b ON a.x = b.y INNER JOIN c ON b.z = c.w");
        let f = s.from.unwrap();
        assert_eq!(f.joins.len(), 2);
        assert_eq!(f.joins[1].0.name, "c");
    }

    #[test]
    fn aliases() {
        let s = sel("SELECT v.a AS first FROM votes v WHERE v.a = 1");
        let f = s.from.unwrap();
        assert_eq!(f.base.binding(), "v");
        match &s.items[0] {
            SelectItem::Expr { alias, .. } => assert_eq!(alias.as_deref(), Some("first")),
            _ => panic!(),
        }
    }

    #[test]
    fn insert_values_multi_row() {
        let stmt = parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')").unwrap();
        match stmt {
            Stmt::Insert(i) => {
                assert_eq!(i.columns, vec!["a", "b"]);
                match i.source {
                    InsertSource::Values(rows) => assert_eq!(rows.len(), 2),
                    _ => panic!(),
                }
            }
            _ => panic!(),
        }
    }

    #[test]
    fn insert_select() {
        let stmt = parse("INSERT INTO t SELECT a FROM s WHERE a > 0").unwrap();
        match stmt {
            Stmt::Insert(i) => assert!(matches!(i.source, InsertSource::Select(_))),
            _ => panic!(),
        }
    }

    #[test]
    fn update_and_delete() {
        let stmt = parse("UPDATE t SET a = a + 1, b = ? WHERE id = ?").unwrap();
        match stmt {
            Stmt::Update(u) => {
                assert_eq!(u.sets.len(), 2);
                // second param is ?1
                assert_eq!(u.sets[1].1, Expr::Param(0));
                match u.where_pred.unwrap() {
                    Expr::Binary { right, .. } => assert_eq!(*right, Expr::Param(1)),
                    _ => panic!(),
                }
            }
            _ => panic!(),
        }
        assert!(matches!(
            parse("DELETE FROM t WHERE a IS NOT NULL").unwrap(),
            Stmt::Delete(_)
        ));
    }

    #[test]
    fn create_table_with_pk() {
        let stmt =
            parse("CREATE TABLE t (id INT NOT NULL, name VARCHAR(32), PRIMARY KEY (id))").unwrap();
        match stmt {
            Stmt::CreateTable(c) => {
                assert_eq!(c.columns.len(), 2);
                assert!(!c.columns[0].nullable);
                assert!(c.columns[1].nullable);
                assert_eq!(c.primary_key, vec!["id"]);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn create_stream_and_window() {
        assert!(matches!(
            parse("CREATE STREAM s (v INT)").unwrap(),
            Stmt::CreateStream(_)
        ));
        match parse("CREATE WINDOW w (v INT) ROWS 100 SLIDE 10").unwrap() {
            Stmt::CreateWindow(w) => {
                assert!(w.tuple_based);
                assert_eq!((w.size, w.slide), (100, 10));
            }
            _ => panic!(),
        }
        match parse("CREATE WINDOW w (v INT) RANGE 1000000 SLIDE 1000").unwrap() {
            Stmt::CreateWindow(w) => assert!(!w.tuple_based),
            _ => panic!(),
        }
        assert!(parse("CREATE WINDOW w (v INT) ROWS 0 SLIDE 1").is_err());
    }

    #[test]
    fn operator_precedence() {
        // 1 + 2 * 3 = 7, not 9
        let s = sel("SELECT 1 + 2 * 3");
        match &s.items[0] {
            SelectItem::Expr {
                expr:
                    Expr::Binary {
                        op: BinOp::Add,
                        right,
                        ..
                    },
                ..
            } => assert!(matches!(**right, Expr::Binary { op: BinOp::Mul, .. })),
            other => panic!("{other:?}"),
        }
        // AND binds tighter than OR
        let s = sel("SELECT * FROM t WHERE a OR b AND c");
        match s.where_pred.unwrap() {
            Expr::Binary {
                op: BinOp::Or,
                right,
                ..
            } => {
                assert!(matches!(*right, Expr::Binary { op: BinOp::And, .. }))
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn in_between_not() {
        let s = sel("SELECT * FROM t WHERE a IN (1,2) AND b NOT BETWEEN 1 AND 5");
        match s.where_pred.unwrap() {
            Expr::Binary { left, right, .. } => {
                assert!(matches!(*left, Expr::InList { negated: false, .. }));
                assert!(matches!(*right, Expr::Between { negated: true, .. }));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn params_number_left_to_right() {
        let s = sel("SELECT ? , ?, ?");
        let params: Vec<usize> = s
            .items
            .iter()
            .map(|i| match i {
                SelectItem::Expr {
                    expr: Expr::Param(n),
                    ..
                } => *n,
                _ => panic!(),
            })
            .collect();
        assert_eq!(params, vec![0, 1, 2]);
    }

    #[test]
    fn literals() {
        let s = sel("SELECT NULL, TRUE, FALSE, -5, 'str'");
        assert_eq!(s.items.len(), 5);
        match &s.items[3] {
            SelectItem::Expr {
                expr: Expr::Unary {
                    op: UnaryOp::Neg, ..
                },
                ..
            } => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse("SELECT 1 FROM t garbage garbage").is_err());
        assert!(parse("").is_err());
        assert!(parse("SELECT 1;").is_ok());
    }

    #[test]
    fn distinct_parsing() {
        let s = sel("SELECT DISTINCT a FROM t");
        assert!(s.distinct);
        let s = sel("SELECT a FROM t");
        assert!(!s.distinct);
        match &sel("SELECT COUNT(DISTINCT a) FROM t").items[0] {
            SelectItem::Expr {
                expr: Expr::Func { name, distinct, .. },
                ..
            } => {
                assert_eq!(name, "count");
                assert!(distinct);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse("SELECT COUNT(DISTINCT) FROM t").is_err());
    }

    #[test]
    fn exists_parsing() {
        let s = sel("SELECT * FROM t WHERE EXISTS (SELECT 1 FROM u)");
        assert!(matches!(
            s.where_pred.unwrap(),
            Expr::Exists { negated: false, .. }
        ));
        let s = sel("SELECT * FROM t WHERE NOT EXISTS (SELECT 1 FROM u)");
        assert!(matches!(
            s.where_pred.unwrap(),
            Expr::Exists { negated: true, .. }
        ));
        // `exists` as a plain function name still errors later (unknown
        // function), but parses as a call:
        let s = sel("SELECT exists(a)");
        match &s.items[0] {
            SelectItem::Expr {
                expr: Expr::Func { name, .. },
                ..
            } => assert_eq!(name, "exists"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn scalar_subquery_parsing() {
        let s = sel("SELECT (SELECT MAX(v) FROM t)");
        assert!(matches!(
            &s.items[0],
            SelectItem::Expr {
                expr: Expr::Subquery(_),
                ..
            }
        ));
    }

    #[test]
    fn count_star() {
        let s = sel("SELECT COUNT(*) FROM t");
        match &s.items[0] {
            SelectItem::Expr {
                expr: Expr::Func { name, args, .. },
                ..
            } => {
                assert_eq!(name, "count");
                assert_eq!(args[0], Expr::Wildcard);
            }
            _ => panic!(),
        }
    }
}
