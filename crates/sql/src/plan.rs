//! Physical plans.
//!
//! The planner lowers an AST into one of these directly-executable shapes.
//! Plans are deliberately materializing and row-at-a-time: H-Store-style
//! OLTP statements touch few rows, and serial per-partition execution makes
//! operator pipelining unnecessary for correctness or (at this scale)
//! throughput.

use crate::expr::BoundExpr;
use sstore_common::{Schema, TableId};

/// Access path for a scan.
#[derive(Debug, Clone, PartialEq)]
pub enum AccessPath {
    /// Full table scan.
    Full,
    /// Primary-key point lookup with the bound key expressions.
    PkPoint(Vec<BoundExpr>),
    /// Secondary-index point lookup (`index name`, key expressions).
    IndexPoint(String, Vec<BoundExpr>),
}

/// A relational operator tree producing rows.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysicalPlan {
    /// Literal rows (used for table-less SELECT and INSERT…VALUES).
    Values {
        /// Each row is a list of expressions evaluated with no input row.
        rows: Vec<Vec<BoundExpr>>,
    },
    /// Table scan (with optional index access path). Produces *storage*
    /// rows (hidden columns included).
    Scan {
        /// The table.
        table: TableId,
        /// How to locate rows.
        path: AccessPath,
        /// Residual predicate applied after the access path.
        residual: Option<BoundExpr>,
    },
    /// Nested-loop inner join; predicate over the concatenated row.
    NestedLoopJoin {
        /// Outer input.
        left: Box<PhysicalPlan>,
        /// Inner input (re-evaluated per outer row).
        right: Box<PhysicalPlan>,
        /// Join predicate (`TRUE` for cross joins folded from comma syntax).
        on: BoundExpr,
    },
    /// Row filter.
    Filter {
        /// Input.
        input: Box<PhysicalPlan>,
        /// Predicate.
        pred: BoundExpr,
    },
    /// Projection.
    Project {
        /// Input.
        input: Box<PhysicalPlan>,
        /// Output expressions.
        exprs: Vec<BoundExpr>,
    },
    /// Hash aggregation. Output row layout = group values then aggregate
    /// results: `[g0, g1, ..., a0, a1, ...]`.
    Aggregate {
        /// Input.
        input: Box<PhysicalPlan>,
        /// Group-by key expressions over the input row.
        group_exprs: Vec<BoundExpr>,
        /// Aggregates to compute.
        aggs: Vec<AggExpr>,
    },
    /// Sort by key offsets into the input row.
    Sort {
        /// Input.
        input: Box<PhysicalPlan>,
        /// `(column offset, descending)` pairs, major key first.
        keys: Vec<(usize, bool)>,
    },
    /// Keep the first `n` rows.
    Limit {
        /// Input.
        input: Box<PhysicalPlan>,
        /// Row cap.
        n: u64,
    },
    /// Remove duplicate rows, keeping first occurrences (`SELECT DISTINCT`).
    Distinct {
        /// Input.
        input: Box<PhysicalPlan>,
    },
}

/// One aggregate computation.
#[derive(Debug, Clone, PartialEq)]
pub struct AggExpr {
    /// Which aggregate.
    pub func: AggFunc,
    /// Argument over the input row; `None` only for `COUNT(*)`.
    pub arg: Option<BoundExpr>,
    /// `DISTINCT` modifier: deduplicate argument values before folding.
    pub distinct: bool,
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(*)` — counts rows.
    CountStar,
    /// `COUNT(expr)` — counts non-NULL values.
    Count,
    /// `SUM(expr)`.
    Sum,
    /// `AVG(expr)`.
    Avg,
    /// `MIN(expr)`.
    Min,
    /// `MAX(expr)`.
    Max,
}

/// A fully planned statement.
///
/// `subqueries` on each DML/query variant holds the plans of uncorrelated
/// scalar subqueries, in slot order matching
/// [`crate::expr::BoundExpr::SubqueryRef`]; the executor evaluates them
/// once per statement, before the main plan.
#[derive(Debug, Clone, PartialEq)]
pub enum PlannedStmt {
    /// `SELECT`: run the plan, report `columns` as output names.
    Query {
        /// The operator tree.
        plan: PhysicalPlan,
        /// Output column names (aliases applied).
        columns: Vec<String>,
        /// Scalar subquery plans.
        subqueries: Vec<PhysicalPlan>,
        /// Planner verdict: the plan shape qualifies for (and benefits
        /// from) the vectorized executor ([`crate::vexec`]). The context's
        /// [`crate::vexec::ExecPath`] makes the final routing call.
        vectorizable: bool,
    },
    /// `INSERT`: evaluate `source`, remap into visible-column order, insert.
    Insert {
        /// Target table.
        table: TableId,
        /// Row source (arity = `columns.len()`).
        source: PhysicalPlan,
        /// For each *visible* column of the target (in schema order), the
        /// index into the source row providing its value, or `None` for
        /// NULL (column not mentioned in the insert list).
        mapping: Vec<Option<usize>>,
        /// Scalar subquery plans.
        subqueries: Vec<PhysicalPlan>,
    },
    /// `UPDATE`: for each matching row, recompute the listed columns.
    Update {
        /// Target table.
        table: TableId,
        /// Index access path locating candidate rows.
        path: AccessPath,
        /// Row filter over storage rows (applied after the access path).
        pred: Option<BoundExpr>,
        /// `(visible column offset, new-value expression over the old row)`.
        sets: Vec<(usize, BoundExpr)>,
        /// Scalar subquery plans.
        subqueries: Vec<PhysicalPlan>,
    },
    /// `DELETE` matching rows.
    Delete {
        /// Target table.
        table: TableId,
        /// Index access path locating candidate rows.
        path: AccessPath,
        /// Row filter over storage rows (applied after the access path).
        pred: Option<BoundExpr>,
        /// Scalar subquery plans.
        subqueries: Vec<PhysicalPlan>,
    },
    /// DDL, executed by the engine outside any transaction.
    Ddl(DdlOp),
}

/// Data-definition operations.
#[derive(Debug, Clone, PartialEq)]
pub enum DdlOp {
    /// `CREATE TABLE`.
    CreateTable {
        /// Table name.
        name: String,
        /// Visible schema.
        schema: Schema,
    },
    /// `CREATE STREAM`.
    CreateStream {
        /// Stream name.
        name: String,
        /// Visible schema.
        schema: Schema,
    },
    /// `CREATE WINDOW`.
    CreateWindow {
        /// Window name.
        name: String,
        /// Visible schema.
        schema: Schema,
        /// Tuple-based (`ROWS`) vs time-based (`RANGE`).
        tuple_based: bool,
        /// Size (tuples or µs).
        size: i64,
        /// Slide (tuples or µs).
        slide: i64,
    },
}

impl PhysicalPlan {
    /// Number of columns this plan produces, given a resolver for table
    /// arities (storage arity, hidden columns included).
    pub fn arity(&self, table_arity: &dyn Fn(TableId) -> usize) -> usize {
        match self {
            PhysicalPlan::Values { rows } => rows.first().map(Vec::len).unwrap_or(0),
            PhysicalPlan::Scan { table, .. } => table_arity(*table),
            PhysicalPlan::NestedLoopJoin { left, right, .. } => {
                left.arity(table_arity) + right.arity(table_arity)
            }
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Sort { input, .. }
            | PhysicalPlan::Limit { input, .. }
            | PhysicalPlan::Distinct { input } => input.arity(table_arity),
            PhysicalPlan::Project { exprs, .. } => exprs.len(),
            PhysicalPlan::Aggregate {
                group_exprs, aggs, ..
            } => group_exprs.len() + aggs.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sstore_common::Value;

    #[test]
    fn arity_computation() {
        let values = PhysicalPlan::Values {
            rows: vec![vec![
                BoundExpr::Literal(Value::Int(1)),
                BoundExpr::Literal(Value::Int(2)),
            ]],
        };
        let arity_fn = |_t: TableId| 5usize;
        assert_eq!(values.arity(&arity_fn), 2);

        let scan = PhysicalPlan::Scan {
            table: TableId::new(0),
            path: AccessPath::Full,
            residual: None,
        };
        assert_eq!(scan.arity(&arity_fn), 5);

        let join = PhysicalPlan::NestedLoopJoin {
            left: Box::new(scan.clone()),
            right: Box::new(values.clone()),
            on: BoundExpr::Literal(Value::Bool(true)),
        };
        assert_eq!(join.arity(&arity_fn), 7);

        let agg = PhysicalPlan::Aggregate {
            input: Box::new(scan),
            group_exprs: vec![BoundExpr::ColumnRef(0)],
            aggs: vec![AggExpr {
                func: AggFunc::CountStar,
                arg: None,
                distinct: false,
            }],
        };
        assert_eq!(agg.arity(&arity_fn), 2);
    }
}
