//! # sstore-sql
//!
//! The SQL subset used inside S-Store stored procedures — the equivalent of
//! the "SQL queries embedded in Java-based control code" that H-Store
//! procedures are made of (paper §2).
//!
//! Pipeline: [`lexer`] → [`parser`] (producing the [`ast`]) → [`planner`]
//! (name resolution + logical plan) → [`exec`] (row-at-a-time evaluation).
//!
//! Execution is parameterized by [`exec::ExecContext`]: reads go straight to
//! the storage layer, while every mutation is routed through the context so
//! the execution engine can record undo, maintain stream/window lifecycle
//! state, and fire EE triggers without this crate knowing about any of it.

pub mod ast;
pub mod exec;
pub mod expr;
pub mod lexer;
pub mod parser;
pub mod plan;
pub mod planner;
pub mod vexec;

pub use ast::Stmt;
pub use exec::{ExecContext, QueryResult};
pub use parser::parse;
pub use plan::PhysicalPlan;
pub use planner::plan_statement;
pub use vexec::ExecPath;
