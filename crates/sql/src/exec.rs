//! Plan execution.
//!
//! The executor walks a [`PhysicalPlan`] row-at-a-time. Reads go straight
//! to the [`Database`]; all mutations are routed through [`ExecContext`] so
//! the execution engine layered above can attach undo logging, stream and
//! window lifecycle maintenance, EE triggers, and round-trip accounting.

use crate::expr::{eval, eval_pred, BoundExpr, EvalEnv};
use crate::plan::{AccessPath, AggExpr, AggFunc, PhysicalPlan, PlannedStmt};
use crate::vexec::{self, ExecPath};
use sstore_common::{Error, Result, Row, TableId, Value};
use sstore_storage::{Database, RowId, Table};
use std::collections::{HashMap, HashSet};

/// The storage/transaction facade the executor runs against.
///
/// `sstore-engine` provides the real implementation; a thin direct
/// implementation ([`DirectContext`]) exists for tests and standalone use
/// of this crate.
pub trait ExecContext {
    /// Read access to the partition's data.
    fn db(&self) -> &Database;

    /// Logical time for `NOW()`.
    fn now(&self) -> i64;

    /// Gate read access to a table (window scope enforcement).
    fn check_read(&self, table: TableId) -> Result<()>;

    /// Gate write access to a table.
    fn check_write(&self, table: TableId) -> Result<()>;

    /// Insert a row given in *visible-column* order. The implementation
    /// appends hidden lifecycle columns for streams/windows, records undo,
    /// and fires any EE triggers. Returns the new row id.
    fn insert_visible(&mut self, table: TableId, row: Row) -> Result<RowId>;

    /// Delete a row by id, recording undo. Returns the deleted row.
    fn delete_row(&mut self, table: TableId, rid: RowId) -> Result<Row>;

    /// Replace the *full storage* row at `rid`, recording undo.
    fn update_row(&mut self, table: TableId, rid: RowId, new_row: Row) -> Result<()>;

    /// Which executor eligible read plans route through. Defaults to the
    /// process-wide setting (`SSTORE_EXEC`); the engine overrides this
    /// with its per-partition configuration.
    fn exec_path(&self) -> ExecPath {
        ExecPath::session_default()
    }
}

/// Result of executing one statement.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QueryResult {
    /// Output column names (SELECT only).
    pub columns: Vec<String>,
    /// Output rows (SELECT only).
    pub rows: Vec<Row>,
    /// Rows inserted/updated/deleted (DML only).
    pub rows_affected: usize,
}

impl QueryResult {
    /// First row, first column — convenient for scalar queries.
    pub fn scalar(&self) -> Option<&Value> {
        self.rows.first().and_then(|r| r.first())
    }

    /// First row, first column as an integer (errors if absent/not int).
    pub fn scalar_i64(&self) -> Result<i64> {
        self.scalar()
            .ok_or_else(|| Error::Internal("scalar query returned no rows".into()))?
            .as_int()
    }
}

/// Execute a planned statement.
pub fn execute(
    stmt: &PlannedStmt,
    ctx: &mut dyn ExecContext,
    params: &[Value],
) -> Result<QueryResult> {
    let now = ctx.now();
    // Evaluate uncorrelated scalar subqueries once, in slot order. Earlier
    // slots are visible to later ones (inner subqueries bind first).
    let subs = match stmt {
        PlannedStmt::Query { subqueries, .. }
        | PlannedStmt::Insert { subqueries, .. }
        | PlannedStmt::Update { subqueries, .. }
        | PlannedStmt::Delete { subqueries, .. } => eval_subqueries(subqueries, ctx, params, now)?,
        PlannedStmt::Ddl(_) => Vec::new(),
    };
    let env = EvalEnv {
        params,
        now,
        subs: &subs,
    };
    match stmt {
        PlannedStmt::Query {
            plan,
            columns,
            vectorizable,
            ..
        } => {
            // The planner pre-computes eligibility; the context picks the
            // path. Ineligible (or not-worthwhile) plans run the row
            // interpreter, whose recursion still re-enters [`run_plan`] so
            // eligible *subtrees* vectorize.
            let rows = if *vectorizable && ctx.exec_path() == ExecPath::Vector {
                vexec::run(plan, &*ctx, &env)?
            } else {
                run_plan_row(plan, ctx, &env)?
            };
            Ok(QueryResult {
                columns: columns.clone(),
                rows,
                rows_affected: 0,
            })
        }
        PlannedStmt::Insert {
            table,
            source,
            mapping,
            ..
        } => {
            ctx.check_write(*table)?;
            let src_rows = run_plan(source, ctx, &env)?;
            let mut n = 0;
            for src in src_rows {
                let visible: Row = mapping
                    .iter()
                    .map(|m| match m {
                        Some(i) => src
                            .get(*i)
                            .cloned()
                            .ok_or_else(|| Error::Internal("insert mapping out of range".into())),
                        None => Ok(Value::Null),
                    })
                    .collect::<Result<_>>()?;
                ctx.insert_visible(*table, visible)?;
                n += 1;
            }
            Ok(QueryResult {
                rows_affected: n,
                ..Default::default()
            })
        }
        PlannedStmt::Update {
            table,
            path,
            pred,
            sets,
            ..
        } => {
            ctx.check_write(*table)?;
            let targets = matching_rows(*table, path, pred.as_ref(), ctx, &env)?;
            let mut n = 0;
            for (rid, old_row) in targets {
                // Evaluate every SET against the old image, then COW once.
                let vals: Vec<(usize, Value)> = sets
                    .iter()
                    .map(|(pos, e)| Ok((*pos, eval(e, &old_row, &env)?)))
                    .collect::<Result<_>>()?;
                let mut new_row = old_row.clone();
                let cells = new_row.make_mut();
                for (pos, v) in vals {
                    cells[pos] = v;
                }
                ctx.update_row(*table, rid, new_row)?;
                n += 1;
            }
            Ok(QueryResult {
                rows_affected: n,
                ..Default::default()
            })
        }
        PlannedStmt::Delete {
            table, path, pred, ..
        } => {
            ctx.check_write(*table)?;
            let targets = matching_rows(*table, path, pred.as_ref(), ctx, &env)?;
            let mut n = 0;
            for (rid, _) in targets {
                ctx.delete_row(*table, rid)?;
                n += 1;
            }
            Ok(QueryResult {
                rows_affected: n,
                ..Default::default()
            })
        }
        PlannedStmt::Ddl(_) => Err(Error::Txn(
            "DDL cannot run through the statement executor; use the engine's DDL entry point"
                .into(),
        )),
    }
}

/// Evaluate a statement's scalar subquery plans into their slot values.
fn eval_subqueries(
    subqueries: &[PhysicalPlan],
    ctx: &dyn ExecContext,
    params: &[Value],
    now: i64,
) -> Result<Vec<Value>> {
    let mut vals: Vec<Value> = Vec::with_capacity(subqueries.len());
    for plan in subqueries {
        let rows = {
            let env = EvalEnv {
                params,
                now,
                subs: &vals,
            };
            run_plan(plan, ctx, &env)?
        };
        if rows.len() > 1 {
            return Err(Error::Constraint(format!(
                "scalar subquery returned {} rows",
                rows.len()
            )));
        }
        let v = rows
            .first()
            .and_then(|r| r.first().cloned())
            .unwrap_or(Value::Null);
        vals.push(v);
    }
    Ok(vals)
}

/// Materialize the `(rid, row)` pairs a DML predicate selects. Collected
/// before mutation so the scan never observes its own writes (Halloween
/// protection).
fn matching_rows(
    table: TableId,
    path: &AccessPath,
    pred: Option<&BoundExpr>,
    ctx: &dyn ExecContext,
    env: &EvalEnv<'_>,
) -> Result<Vec<(RowId, Row)>> {
    ctx.check_read(table)?;
    let tb = ctx.db().table(table)?;
    let mut out = Vec::new();
    for_each_candidate(tb, path, env, |rid, row| {
        let keep = match pred {
            Some(p) => eval_pred(p, row, env)?,
            None => true,
        };
        if keep {
            out.push((rid, row.clone()));
        }
        Ok(())
    })?;
    Ok(out)
}

/// Drive `visit(rid, row)` over every row an access path selects, in
/// deterministic order (slot order for full scans, bucket order for point
/// probes). Shared by DML target collection and the Scan operator.
fn for_each_candidate(
    tb: &Table,
    path: &AccessPath,
    env: &EvalEnv<'_>,
    mut visit: impl FnMut(RowId, &Row) -> Result<()>,
) -> Result<()> {
    match path {
        AccessPath::Full => {
            for (rid, row) in tb.scan() {
                visit(rid, row)?;
            }
        }
        AccessPath::PkPoint(keys) => {
            let key: Vec<Value> = keys
                .iter()
                .map(|e| eval(e, &[], env))
                .collect::<Result<_>>()?;
            if let Some(rid) = tb.pk_lookup(&key) {
                let row = tb
                    .get(rid)
                    .ok_or_else(|| Error::Internal(format!("dangling row id {rid}")))?;
                visit(rid, row)?;
            }
        }
        AccessPath::IndexPoint(name, keys) => {
            let key: Vec<Value> = keys
                .iter()
                .map(|e| eval(e, &[], env))
                .collect::<Result<_>>()?;
            for &rid in tb.index_lookup(name, &key)? {
                let row = tb
                    .get(rid)
                    .ok_or_else(|| Error::Internal(format!("dangling row id {rid}")))?;
                visit(rid, row)?;
            }
        }
    }
    Ok(())
}

/// Run a read-only plan to a materialized row set, routing through the
/// vectorized executor when the context requests it and the plan shape
/// both qualifies ([`vexec::eligible`]) and benefits
/// ([`vexec::worthwhile`]); otherwise the row interpreter runs.
pub fn run_plan(plan: &PhysicalPlan, ctx: &dyn ExecContext, env: &EvalEnv<'_>) -> Result<Vec<Row>> {
    if ctx.exec_path() == ExecPath::Vector && vexec::worthwhile(plan) {
        let db = ctx.db();
        let arity = |t: TableId| db.table(t).map(|tb| tb.schema().arity()).unwrap_or(0);
        if vexec::eligible(plan, &arity) {
            return vexec::run(plan, ctx, env);
        }
    }
    run_plan_row(plan, ctx, env)
}

/// The tuple-at-a-time interpreter. Recursive child calls re-enter
/// [`run_plan`] so vector-eligible subtrees of a row-only plan still take
/// the batch path.
pub(crate) fn run_plan_row(
    plan: &PhysicalPlan,
    ctx: &dyn ExecContext,
    env: &EvalEnv<'_>,
) -> Result<Vec<Row>> {
    match plan {
        PhysicalPlan::Values { rows } => rows
            .iter()
            .map(|exprs| exprs.iter().map(|e| eval(e, &[], env)).collect())
            .collect(),
        PhysicalPlan::Scan {
            table,
            path,
            residual,
        } => {
            ctx.check_read(*table)?;
            let tb = ctx.db().table(*table)?;
            let mut out = Vec::new();
            for_each_candidate(tb, path, env, |_, row| {
                let keep = match residual {
                    Some(p) => eval_pred(p, row, env)?,
                    None => true,
                };
                if keep {
                    // Shared handle: scans hand out refcount bumps, not copies.
                    out.push(row.clone());
                }
                Ok(())
            })?;
            Ok(out)
        }
        PhysicalPlan::NestedLoopJoin { left, right, on } => {
            let lrows = run_plan(left, ctx, env)?;
            let rrows = run_plan(right, ctx, env)?;
            let mut out = Vec::new();
            for l in &lrows {
                for r in &rrows {
                    let joined = l.concat(r);
                    if eval_pred(on, &joined, env)? {
                        out.push(joined);
                    }
                }
            }
            Ok(out)
        }
        PhysicalPlan::Filter { input, pred } => {
            let rows = run_plan(input, ctx, env)?;
            let mut out = Vec::with_capacity(rows.len());
            for row in rows {
                if eval_pred(pred, &row, env)? {
                    out.push(row);
                }
            }
            Ok(out)
        }
        PhysicalPlan::Project { input, exprs } => {
            let rows = run_plan(input, ctx, env)?;
            rows.iter()
                .map(|row| exprs.iter().map(|e| eval(e, row, env)).collect())
                .collect()
        }
        PhysicalPlan::Aggregate {
            input,
            group_exprs,
            aggs,
        } => {
            let rows = run_plan(input, ctx, env)?;
            run_aggregate(&rows, group_exprs, aggs, env)
        }
        PhysicalPlan::Sort { input, keys } => {
            let mut rows = run_plan(input, ctx, env)?;
            rows.sort_by(|a, b| {
                for (pos, desc) in keys {
                    let ord = a[*pos].cmp_total(&b[*pos]);
                    let ord = if *desc { ord.reverse() } else { ord };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            Ok(rows)
        }
        PhysicalPlan::Limit { input, n } => {
            let mut rows = run_plan(input, ctx, env)?;
            rows.truncate(*n as usize);
            Ok(rows)
        }
        PhysicalPlan::Distinct { input } => {
            let rows = run_plan(input, ctx, env)?;
            let mut seen: std::collections::HashSet<Row> = HashSet::with_capacity(rows.len());
            let mut out = Vec::with_capacity(rows.len());
            for row in rows {
                if seen.insert(row.clone()) {
                    out.push(row);
                }
            }
            Ok(out)
        }
    }
}

/// One in-progress aggregate value.
#[derive(Debug, Clone)]
enum AggState {
    CountStar(i64),
    Count(i64),
    Sum { acc: Option<Value> },
    Avg { sum: f64, n: i64 },
    Min(Option<Value>),
    Max(Option<Value>),
}

impl AggState {
    fn new(func: AggFunc) -> AggState {
        match func {
            AggFunc::CountStar => AggState::CountStar(0),
            AggFunc::Count => AggState::Count(0),
            AggFunc::Sum => AggState::Sum { acc: None },
            AggFunc::Avg => AggState::Avg { sum: 0.0, n: 0 },
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
        }
    }

    fn update(&mut self, arg: Option<&Value>) -> Result<()> {
        match self {
            AggState::CountStar(n) => *n += 1,
            AggState::Count(n) => {
                if arg.is_some_and(|v| !v.is_null()) {
                    *n += 1;
                }
            }
            AggState::Sum { acc } => {
                if let Some(v) = arg.filter(|v| !v.is_null()) {
                    *acc = Some(match acc.take() {
                        None => v.clone(),
                        Some(Value::Int(a)) => match v {
                            Value::Int(b) => Value::Int(a.checked_add(*b).ok_or_else(|| {
                                Error::Constraint("integer overflow in SUM".into())
                            })?),
                            _ => Value::Float(a as f64 + v.as_float()?),
                        },
                        Some(prev) => Value::Float(prev.as_float()? + v.as_float()?),
                    });
                }
            }
            AggState::Avg { sum, n } => {
                if let Some(v) = arg.filter(|v| !v.is_null()) {
                    *sum += v.as_float()?;
                    *n += 1;
                }
            }
            AggState::Min(cur) => {
                if let Some(v) = arg.filter(|v| !v.is_null()) {
                    if cur.as_ref().is_none_or(|c| v.cmp_total(c).is_lt()) {
                        *cur = Some(v.clone());
                    }
                }
            }
            AggState::Max(cur) => {
                if let Some(v) = arg.filter(|v| !v.is_null()) {
                    if cur.as_ref().is_none_or(|c| v.cmp_total(c).is_gt()) {
                        *cur = Some(v.clone());
                    }
                }
            }
        }
        Ok(())
    }

    fn finish(self) -> Value {
        match self {
            AggState::CountStar(n) | AggState::Count(n) => Value::Int(n),
            AggState::Sum { acc } => acc.unwrap_or(Value::Null),
            AggState::Avg { sum, n } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / n as f64)
                }
            }
            AggState::Min(v) | AggState::Max(v) => v.unwrap_or(Value::Null),
        }
    }
}

/// Per-group aggregate state plus the dedup set for DISTINCT aggregates.
struct GroupState {
    states: Vec<AggState>,
    /// One seen-set per DISTINCT aggregate (indexed like `states`).
    seen: Vec<Option<HashSet<Value>>>,
}

impl GroupState {
    fn new(aggs: &[AggExpr]) -> GroupState {
        GroupState {
            states: aggs.iter().map(|a| AggState::new(a.func)).collect(),
            seen: aggs.iter().map(|a| a.distinct.then(HashSet::new)).collect(),
        }
    }
}

pub(crate) fn run_aggregate(
    rows: &[Row],
    group_exprs: &[BoundExpr],
    aggs: &[AggExpr],
    env: &EvalEnv<'_>,
) -> Result<Vec<Row>> {
    // Group order = first appearance, so results are deterministic.
    let mut order: Vec<Vec<Value>> = Vec::new();
    let mut groups: HashMap<Vec<Value>, GroupState> = HashMap::new();

    for row in rows {
        let key: Vec<Value> = group_exprs
            .iter()
            .map(|e| eval(e, row, env))
            .collect::<Result<_>>()?;
        let group = match groups.get_mut(&key) {
            Some(s) => s,
            None => {
                order.push(key.clone());
                groups.entry(key).or_insert_with(|| GroupState::new(aggs))
            }
        };
        for (i, agg) in aggs.iter().enumerate() {
            let arg = agg.arg.as_ref().map(|e| eval(e, row, env)).transpose()?;
            if let Some(seen) = &mut group.seen[i] {
                match &arg {
                    Some(v) if !v.is_null() && !seen.insert(v.clone()) => {
                        continue; // duplicate: skip for DISTINCT
                    }
                    _ => {}
                }
            }
            group.states[i].update(arg.as_ref())?;
        }
    }

    // Global aggregate over empty input still yields one row.
    if groups.is_empty() && group_exprs.is_empty() {
        let row: Row = aggs
            .iter()
            .map(|a| AggState::new(a.func).finish())
            .collect();
        return Ok(vec![row]);
    }

    let mut out = Vec::with_capacity(order.len());
    for key in order {
        let group = groups.remove(&key).expect("group recorded");
        let mut cells = key;
        cells.extend(group.states.into_iter().map(AggState::finish));
        out.push(cells.into());
    }
    Ok(out)
}

/// A minimal [`ExecContext`] that applies mutations directly with no undo,
/// no triggers, and no scope checks. Used by this crate's tests and by
/// standalone tools; the engine crate provides the real transactional one.
#[derive(Debug)]
pub struct DirectContext<'a> {
    /// The database to operate on.
    pub db: &'a mut Database,
    /// Logical time reported by `now()`.
    pub now_micros: i64,
}

impl ExecContext for DirectContext<'_> {
    fn db(&self) -> &Database {
        self.db
    }
    fn now(&self) -> i64 {
        self.now_micros
    }
    fn check_read(&self, _table: TableId) -> Result<()> {
        Ok(())
    }
    fn check_write(&self, _table: TableId) -> Result<()> {
        Ok(())
    }
    fn insert_visible(&mut self, table: TableId, row: Row) -> Result<RowId> {
        // Pad missing trailing (hidden lifecycle) columns per the column's
        // own type: NULL where allowed, the type's zero otherwise — never
        // `Int(0)` into a non-INT column.
        let row = {
            let schema = self.db.table(table)?.schema();
            if row.len() < schema.arity() {
                let pads: Vec<Value> = schema.columns()[row.len()..]
                    .iter()
                    .map(|c| {
                        if c.nullable {
                            Value::Null
                        } else {
                            zero_value(c.ty)
                        }
                    })
                    .collect();
                row.with_appended(pads)
            } else {
                row
            }
        };
        let rid = self.db.table_mut(table)?.insert(row)?;
        // Even without engine lifecycle, keep the window arrival deque
        // consistent so slide maintenance can still evict this row.
        if self.db.kind(table).is_ok_and(|k| k.is_window()) {
            if let Some(meta) = self.db.catalog_mut().meta_mut(table) {
                meta.arrivals.push_back(rid);
            }
        }
        self.invalidate_window_aggs(table);
        Ok(rid)
    }
    fn delete_row(&mut self, table: TableId, rid: RowId) -> Result<Row> {
        let row = self.db.table_mut(table)?.delete(rid)?;
        if self.db.kind(table).is_ok_and(|k| k.is_window()) {
            if let Some(meta) = self.db.catalog_mut().meta_mut(table) {
                if let Some(pos) = meta.arrivals.iter().position(|&r| r == rid) {
                    meta.arrivals.remove(pos);
                }
            }
        }
        self.invalidate_window_aggs(table);
        Ok(row)
    }
    fn update_row(&mut self, table: TableId, rid: RowId, new_row: Row) -> Result<()> {
        self.db.table_mut(table)?.update(rid, new_row)?;
        self.invalidate_window_aggs(table);
        Ok(())
    }
}

impl DirectContext<'_> {
    /// There is no undo log here, so incremental maintenance of the window
    /// aggregate cache cannot be rolled back; dropping the cache on every
    /// direct window write is always correct (readers fall back to a scan).
    fn invalidate_window_aggs(&mut self, table: TableId) {
        if let Some(meta) = self.db.catalog_mut().meta_mut(table) {
            if let sstore_storage::TableKind::Window(w) = &mut meta.kind {
                w.aggs.invalidate();
            }
        }
    }
}

/// The zero of a column type, used to pad non-nullable hidden columns.
fn zero_value(ty: sstore_common::DataType) -> Value {
    use sstore_common::DataType;
    match ty {
        DataType::Int => Value::Int(0),
        DataType::Float => Value::Float(0.0),
        DataType::Text => Value::Text(String::new()),
        DataType::Bool => Value::Bool(false),
        DataType::Timestamp => Value::Timestamp(0),
    }
}

/// Parse, plan, and execute a statement in one call (test/tool convenience).
pub fn run_sql(sql: &str, ctx: &mut dyn ExecContext, params: &[Value]) -> Result<QueryResult> {
    let stmt = crate::parser::parse(sql)?;
    let planned = crate::planner::plan_statement(&stmt, ctx.db())?;
    execute(&planned, ctx, params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sstore_common::{Column, DataType, Schema};

    fn setup() -> Database {
        let mut db = Database::new();
        let schema = Schema::new(
            vec![
                Column::new("id", DataType::Int),
                Column::new("name", DataType::Text),
                Column::nullable("score", DataType::Float),
            ],
            &["id"],
        )
        .unwrap();
        db.create_table("t", schema).unwrap();
        db
    }

    fn sql(db: &mut Database, q: &str, params: &[Value]) -> QueryResult {
        let mut ctx = DirectContext { db, now_micros: 0 };
        run_sql(q, &mut ctx, params).unwrap()
    }

    fn sql_err(db: &mut Database, q: &str) -> Error {
        let mut ctx = DirectContext { db, now_micros: 0 };
        run_sql(q, &mut ctx, &[]).unwrap_err()
    }

    fn seed(db: &mut Database) {
        for (id, name, score) in [
            (1, "alice", Some(3.0)),
            (2, "bob", Some(1.0)),
            (3, "carol", None),
            (4, "bob", Some(5.0)),
        ] {
            let s = score.map(Value::Float).unwrap_or(Value::Null);
            sql(
                db,
                "INSERT INTO t VALUES (?, ?, ?)",
                &[Value::Int(id), Value::Text(name.into()), s],
            );
        }
    }

    #[test]
    fn insert_and_select_all() {
        let mut db = setup();
        seed(&mut db);
        let r = sql(&mut db, "SELECT * FROM t ORDER BY id", &[]);
        assert_eq!(r.columns, vec!["id", "name", "score"]);
        assert_eq!(r.rows.len(), 4);
        assert_eq!(r.rows[0][1], Value::Text("alice".into()));
    }

    #[test]
    fn where_filter_and_params() {
        let mut db = setup();
        seed(&mut db);
        let r = sql(
            &mut db,
            "SELECT id FROM t WHERE name = ? ORDER BY id",
            &[Value::Text("bob".into())],
        );
        let ids: Vec<i64> = r.rows.iter().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(ids, vec![2, 4]);
    }

    #[test]
    fn pk_point_lookup_works() {
        let mut db = setup();
        seed(&mut db);
        let r = sql(&mut db, "SELECT name FROM t WHERE id = 3", &[]);
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0], Value::Text("carol".into()));
        // missing key -> no rows
        let r = sql(&mut db, "SELECT name FROM t WHERE id = 99", &[]);
        assert!(r.rows.is_empty());
    }

    #[test]
    fn aggregates_group_by_having_order() {
        let mut db = setup();
        seed(&mut db);
        let r = sql(
            &mut db,
            "SELECT name, COUNT(*) AS c, SUM(score) AS s FROM t GROUP BY name \
             HAVING COUNT(*) >= 1 ORDER BY c DESC, name LIMIT 2",
            &[],
        );
        assert_eq!(r.columns, vec!["name", "c", "s"]);
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0][0], Value::Text("bob".into()));
        assert_eq!(r.rows[0][1], Value::Int(2));
        assert_eq!(r.rows[0][2], Value::Float(6.0));
    }

    #[test]
    fn global_aggregate_on_empty_table() {
        let mut db = setup();
        let r = sql(
            &mut db,
            "SELECT COUNT(*), SUM(score), AVG(score), MIN(id), MAX(id) FROM t",
            &[],
        );
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0], Value::Int(0));
        assert!(r.rows[0][1].is_null());
        assert!(r.rows[0][2].is_null());
        assert!(r.rows[0][3].is_null());
    }

    #[test]
    fn count_ignores_nulls_count_star_does_not() {
        let mut db = setup();
        seed(&mut db);
        let r = sql(&mut db, "SELECT COUNT(*), COUNT(score) FROM t", &[]);
        assert_eq!(r.rows[0][0], Value::Int(4));
        assert_eq!(r.rows[0][1], Value::Int(3));
    }

    #[test]
    fn update_statement() {
        let mut db = setup();
        seed(&mut db);
        let r = sql(
            &mut db,
            "UPDATE t SET score = score + 10 WHERE name = 'bob'",
            &[],
        );
        assert_eq!(r.rows_affected, 2);
        let r = sql(&mut db, "SELECT SUM(score) FROM t WHERE name = 'bob'", &[]);
        assert_eq!(r.rows[0][0], Value::Float(26.0));
    }

    #[test]
    fn delete_statement() {
        let mut db = setup();
        seed(&mut db);
        let r = sql(&mut db, "DELETE FROM t WHERE score IS NULL", &[]);
        assert_eq!(r.rows_affected, 1);
        let r = sql(&mut db, "SELECT COUNT(*) FROM t", &[]);
        assert_eq!(r.rows[0][0], Value::Int(3));
    }

    #[test]
    fn join_execution() {
        let mut db = setup();
        seed(&mut db);
        let s2 = Schema::new(
            vec![
                Column::new("tid", DataType::Int),
                Column::new("tag", DataType::Text),
            ],
            &["tid"],
        )
        .unwrap();
        db.create_table("u", s2).unwrap();
        sql(&mut db, "INSERT INTO u VALUES (1, 'x'), (2, 'y')", &[]);
        let r = sql(
            &mut db,
            "SELECT t.name, u.tag FROM t JOIN u ON t.id = u.tid ORDER BY t.id",
            &[],
        );
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0][1], Value::Text("x".into()));
    }

    #[test]
    fn order_by_nulls_first_and_desc() {
        let mut db = setup();
        seed(&mut db);
        let r = sql(&mut db, "SELECT score FROM t ORDER BY score", &[]);
        assert!(r.rows[0][0].is_null()); // NULL sorts first ascending
        let r = sql(&mut db, "SELECT score FROM t ORDER BY score DESC", &[]);
        assert!(r.rows[3][0].is_null());
    }

    #[test]
    fn limit_and_scalar_helpers() {
        let mut db = setup();
        seed(&mut db);
        let r = sql(&mut db, "SELECT id FROM t ORDER BY id LIMIT 1", &[]);
        assert_eq!(r.scalar_i64().unwrap(), 1);
        let r = sql(&mut db, "SELECT COUNT(*) FROM t", &[]);
        assert_eq!(r.scalar_i64().unwrap(), 4);
    }

    #[test]
    fn insert_select() {
        let mut db = setup();
        seed(&mut db);
        let s2 = Schema::keyless(vec![
            Column::new("id", DataType::Int),
            Column::nullable("name", DataType::Text),
        ])
        .unwrap();
        db.create_table("copyt", s2).unwrap();
        let r = sql(
            &mut db,
            "INSERT INTO copyt SELECT id, name FROM t WHERE score > 2.0",
            &[],
        );
        assert_eq!(r.rows_affected, 2);
    }

    #[test]
    fn insert_partial_columns_gives_null() {
        let mut db = setup();
        sql(&mut db, "INSERT INTO t (id, name) VALUES (9, 'zed')", &[]);
        let r = sql(&mut db, "SELECT score FROM t WHERE id = 9", &[]);
        assert!(r.rows[0][0].is_null());
    }

    #[test]
    fn pk_violation_surfaces() {
        let mut db = setup();
        seed(&mut db);
        let e = sql_err(&mut db, "INSERT INTO t VALUES (1, 'dup', NULL)");
        assert_eq!(e.kind(), "constraint");
    }

    #[test]
    fn tableless_select() {
        let mut db = setup();
        let r = sql(&mut db, "SELECT 1 + 2 AS three, 'x'", &[]);
        assert_eq!(r.rows, vec![vec![Value::Int(3), Value::Text("x".into())]]);
        assert_eq!(r.columns[0], "three");
    }

    #[test]
    fn update_with_halloween_protection() {
        // UPDATE that would re-match its own output must not loop.
        let mut db = setup();
        seed(&mut db);
        let r = sql(
            &mut db,
            "UPDATE t SET score = 100.0 WHERE score < 100.0",
            &[],
        );
        assert_eq!(r.rows_affected, 3);
    }

    #[test]
    fn secondary_index_point_lookup() {
        let mut db = setup();
        seed(&mut db);
        let t = db.resolve("t").unwrap();
        db.table_mut(t)
            .unwrap()
            .create_index(sstore_storage::IndexDef {
                name: "by_name".into(),
                key_cols: vec![1],
                unique: false,
                ordered: false,
            })
            .unwrap();
        let r = sql(
            &mut db,
            "SELECT id FROM t WHERE name = 'bob' ORDER BY id",
            &[],
        );
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn ddl_through_executor_rejected() {
        let mut db = setup();
        let e = sql_err(&mut db, "CREATE TABLE q (a INT)");
        assert_eq!(e.kind(), "txn");
    }

    #[test]
    fn avg_computation() {
        let mut db = setup();
        seed(&mut db);
        let r = sql(&mut db, "SELECT AVG(score) FROM t", &[]);
        assert_eq!(r.rows[0][0], Value::Float(3.0));
    }
}
