//! Vectorized plan execution over [`sstore_vector`] column batches.
//!
//! The row interpreter in [`crate::exec`] walks plans a tuple at a time;
//! this module lowers *eligible* plan shapes onto typed column kernels:
//! full scans become [`ColumnBatch`] builds, `WHERE` clauses become
//! selection vectors, global aggregates run as tight loops over native
//! lanes, and equi-joins use hash build/probe instead of the O(n·m)
//! nested loop. Anything the kernels cannot express exactly — mixed-type
//! lanes, `IN`/`BETWEEN`/scalar functions, correlated shapes — falls back
//! cell-by-cell onto the scalar [`crate::expr::eval`], so results (and
//! errors) match the row path bit for bit.
//!
//! # Path selection
//!
//! [`eligible`] is a pure shape check: full-scan leaves, equi-join `ON`
//! clauses, and any stack of Filter/Project/Aggregate/Sort/Limit/Distinct
//! above them. [`worthwhile`] additionally requires at least one operator
//! that benefits from batching (a residual predicate, an aggregate, or a
//! join) so that trivial `SELECT *` scans keep the row path's
//! zero-copy row handles. The planner stamps `PlannedStmt::Query` with
//! the verdict; [`ExecPath`] (per-context, defaulting from the
//! `SSTORE_EXEC` environment variable) picks the path at run time.
//!
//! # Known, documented divergences from the row interpreter
//!
//! Both paths always agree on *results*. Error **ordering** may differ in
//! three corners (an error is still always raised, with the same message):
//!
//! * `AND`/`OR` evaluate the left operand for the whole batch before the
//!   right operand, so a left-side error on row 7 surfaces before a
//!   right-side error on row 3.
//! * Projections and aggregates evaluate column-at-a-time, so the first
//!   erroring *expression* wins rather than the first erroring *row*.
//! * The hash join only evaluates the `ON` residual on key-matching
//!   pairs; a residual that would error on a non-matching pair does not
//!   error here (the row path's nested loop evaluates every pair).
//!
//! Additionally the incremental window-aggregate cache answers
//! `SUM`/`AVG` from an exact `i64` accumulator, which can differ from the
//! row path's sequential `f64` accumulation only beyond 2^53.

use crate::exec::{run_aggregate, ExecContext};
use crate::expr::{eval, eval_pred, BoundExpr, EvalEnv};
use crate::plan::{AccessPath, AggExpr, AggFunc, PhysicalPlan};
use sstore_common::{DataType, Error, Result, Row, TableId, Value};
use sstore_storage::TableKind;
use sstore_vector::compute::{
    arith_num, avg_num, bool_to_sel, cmp_bool, cmp_num, cmp_str, count_nonnull, min_max_float,
    min_max_int, sum_float, sum_int, BoolSrc, StrSrc,
};
use sstore_vector::join::hash_join_i64;
use sstore_vector::{ArithOp, Bitmap, CmpOp, Column, ColumnBatch, ColumnData, NumSrc};
use std::collections::{BTreeSet, HashMap};
use std::sync::OnceLock;

/// Which executor a context routes eligible queries through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecPath {
    /// Tuple-at-a-time interpreter ([`crate::exec`]).
    Row,
    /// Columnar batch kernels (this module), with row fallback for
    /// ineligible plans.
    Vector,
}

impl ExecPath {
    /// Process-wide default, read once from `SSTORE_EXEC`
    /// (`"row"` forces the interpreter; anything else selects the
    /// vectorized path).
    pub fn session_default() -> ExecPath {
        static DEFAULT: OnceLock<ExecPath> = OnceLock::new();
        *DEFAULT.get_or_init(|| match std::env::var("SSTORE_EXEC").as_deref() {
            Ok("row") => ExecPath::Row,
            _ => ExecPath::Vector,
        })
    }
}

impl Default for ExecPath {
    fn default() -> Self {
        ExecPath::session_default()
    }
}

// ---------------------------------------------------------------------------
// Shape analysis
// ---------------------------------------------------------------------------

/// True if every node of `plan` can run on the vector path: full-scan
/// leaves, joins with at least one top-level equi-conjunct, and the
/// standard relational operators above them. Point lookups (`PkPoint`/
/// `IndexPoint`) and `VALUES` stay on the row path.
pub fn eligible(plan: &PhysicalPlan, table_arity: &dyn Fn(TableId) -> usize) -> bool {
    match plan {
        PhysicalPlan::Values { .. } => false,
        PhysicalPlan::Scan { path, .. } => matches!(path, AccessPath::Full),
        PhysicalPlan::NestedLoopJoin { left, right, on } => {
            eligible(left, table_arity)
                && eligible(right, table_arity)
                && !equi_pairs(on, left.arity(table_arity)).is_empty()
        }
        PhysicalPlan::Filter { input, .. }
        | PhysicalPlan::Project { input, .. }
        | PhysicalPlan::Aggregate { input, .. }
        | PhysicalPlan::Sort { input, .. }
        | PhysicalPlan::Limit { input, .. }
        | PhysicalPlan::Distinct { input } => eligible(input, table_arity),
    }
}

/// True if the plan contains at least one operator that actually benefits
/// from batching (filter, aggregate, or join). A bare `SELECT * FROM t`
/// materializes every cell either way, and the row path's refcounted row
/// handles are cheaper than a build-then-pivot.
pub fn worthwhile(plan: &PhysicalPlan) -> bool {
    match plan {
        PhysicalPlan::Values { .. } => false,
        PhysicalPlan::Scan { residual, .. } => residual.is_some(),
        PhysicalPlan::NestedLoopJoin { .. }
        | PhysicalPlan::Filter { .. }
        | PhysicalPlan::Aggregate { .. } => true,
        PhysicalPlan::Project { input, .. }
        | PhysicalPlan::Sort { input, .. }
        | PhysicalPlan::Limit { input, .. }
        | PhysicalPlan::Distinct { input } => worthwhile(input),
    }
}

/// Extract `(left_col, right_col)` equi-join pairs from the top-level
/// `AND`-conjuncts of `on`. Column offsets in `on` index the concatenated
/// row; `right_col` is returned relative to the right input.
pub fn equi_pairs(on: &BoundExpr, left_arity: usize) -> Vec<(usize, usize)> {
    let mut conjuncts = Vec::new();
    flatten_and(on, &mut conjuncts);
    let mut out = Vec::new();
    for c in conjuncts {
        if let BoundExpr::Binary {
            op: crate::ast::BinOp::Eq,
            left,
            right,
        } = c
        {
            if let (BoundExpr::ColumnRef(a), BoundExpr::ColumnRef(b)) = (&**left, &**right) {
                if *a < left_arity && *b >= left_arity {
                    out.push((*a, *b - left_arity));
                } else if *b < left_arity && *a >= left_arity {
                    out.push((*b, *a - left_arity));
                }
            }
        }
    }
    out
}

fn flatten_and<'e>(e: &'e BoundExpr, out: &mut Vec<&'e BoundExpr>) {
    if let BoundExpr::Binary {
        op: crate::ast::BinOp::And,
        left,
        right,
    } = e
    {
        flatten_and(left, out);
        flatten_and(right, out);
    } else {
        out.push(e);
    }
}

/// Collect every `ColumnRef` position mentioned by `e`.
fn collect_refs(e: &BoundExpr, out: &mut BTreeSet<usize>) {
    match e {
        BoundExpr::ColumnRef(i) => {
            out.insert(*i);
        }
        BoundExpr::Literal(_) | BoundExpr::Param(_) | BoundExpr::SubqueryRef(_) => {}
        BoundExpr::Unary { expr, .. } | BoundExpr::IsNull { expr, .. } => collect_refs(expr, out),
        BoundExpr::Binary { left, right, .. } => {
            collect_refs(left, out);
            collect_refs(right, out);
        }
        BoundExpr::InList { expr, list, .. } => {
            collect_refs(expr, out);
            for item in list {
                collect_refs(item, out);
            }
        }
        BoundExpr::Between { expr, lo, hi, .. } => {
            collect_refs(expr, out);
            collect_refs(lo, out);
            collect_refs(hi, out);
        }
        BoundExpr::Scalar { args, .. } => {
            for a in args {
                collect_refs(a, out);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Batch plumbing
// ---------------------------------------------------------------------------

/// Intermediate operator output: a batch plus selection while the data can
/// stay columnar, or materialized rows once an operator pivots.
enum VOut {
    Batch {
        batch: ColumnBatch,
        /// Surviving physical row indices, in row order. `None` = all.
        sel: Option<Vec<u32>>,
    },
    Rows(Vec<Row>),
}

fn sel_count(sel: Option<&[u32]>, rows: usize) -> usize {
    sel.map_or(rows, <[u32]>::len)
}

fn sel_iter<'a>(sel: Option<&'a [u32]>, rows: usize) -> Box<dyn Iterator<Item = usize> + 'a> {
    match sel {
        None => Box::new(0..rows),
        Some(s) => Box::new(s.iter().map(|&i| i as usize)),
    }
}

/// Pivot one physical row out of a batch. Pruned columns yield `Null`
/// placeholders — callers only read positions the plan references.
fn row_of(batch: &ColumnBatch, i: usize) -> Row {
    batch
        .columns
        .iter()
        .map(|c| c.as_ref().map_or(Value::Null, |c| c.value_at(i)))
        .collect()
}

fn materialize(batch: &ColumnBatch, sel: Option<&[u32]>) -> Vec<Row> {
    sel_iter(sel, batch.rows)
        .map(|i| row_of(batch, i))
        .collect()
}

fn materialize_out(out: VOut) -> Vec<Row> {
    match out {
        VOut::Rows(rows) => rows,
        VOut::Batch { batch, sel } => materialize(&batch, sel.as_deref()),
    }
}

/// Run an eligible plan on the vector path and materialize the result.
pub fn run(plan: &PhysicalPlan, ctx: &dyn ExecContext, env: &EvalEnv<'_>) -> Result<Vec<Row>> {
    vrun(plan, ctx, env, None).map(materialize_out)
}

/// Recursive batch executor. `needed` is the set of column positions any
/// ancestor will read (`None` = all); scans prune everything else.
fn vrun(
    plan: &PhysicalPlan,
    ctx: &dyn ExecContext,
    env: &EvalEnv<'_>,
    needed: Option<&[usize]>,
) -> Result<VOut> {
    match plan {
        PhysicalPlan::Values { rows } => {
            let out = rows
                .iter()
                .map(|exprs| {
                    exprs
                        .iter()
                        .map(|e| eval(e, &[], env))
                        .collect::<Result<Row>>()
                })
                .collect::<Result<Vec<_>>>()?;
            Ok(VOut::Rows(out))
        }
        PhysicalPlan::Scan {
            table,
            path,
            residual,
        } => {
            if !matches!(path, AccessPath::Full) {
                return Err(Error::Internal(
                    "vectorized scan requires a full access path".into(),
                ));
            }
            ctx.check_read(*table)?;
            let scan_needed: Option<Vec<usize>> = needed.map(|n| {
                let mut set: BTreeSet<usize> = n.iter().copied().collect();
                if let Some(p) = residual {
                    collect_refs(p, &mut set);
                }
                set.into_iter().collect()
            });
            let batch = ctx.db().table(*table)?.column_batch(scan_needed.as_deref());
            let sel = match residual {
                None => None,
                Some(p) => Some(pred_selection(p, &batch, None, env)?),
            };
            Ok(VOut::Batch { batch, sel })
        }
        PhysicalPlan::Filter { input, pred } => {
            let child_needed: Option<Vec<usize>> = needed.map(|n| {
                let mut set: BTreeSet<usize> = n.iter().copied().collect();
                collect_refs(pred, &mut set);
                set.into_iter().collect()
            });
            match vrun(input, ctx, env, child_needed.as_deref())? {
                VOut::Rows(rows) => {
                    let mut out = Vec::new();
                    for r in rows {
                        if eval_pred(pred, &r, env)? {
                            out.push(r);
                        }
                    }
                    Ok(VOut::Rows(out))
                }
                VOut::Batch { batch, sel } => {
                    let sel = pred_selection(pred, &batch, sel.as_deref(), env)?;
                    Ok(VOut::Batch {
                        batch,
                        sel: Some(sel),
                    })
                }
            }
        }
        PhysicalPlan::Project { input, exprs } => {
            let mut set = BTreeSet::new();
            for e in exprs {
                collect_refs(e, &mut set);
            }
            let child_needed: Vec<usize> = set.into_iter().collect();
            match vrun(input, ctx, env, Some(&child_needed))? {
                VOut::Rows(rows) => {
                    let out = rows
                        .iter()
                        .map(|r| {
                            exprs
                                .iter()
                                .map(|e| eval(e, r, env))
                                .collect::<Result<Row>>()
                        })
                        .collect::<Result<Vec<_>>>()?;
                    Ok(VOut::Rows(out))
                }
                VOut::Batch { batch, sel } => {
                    let sel = sel.as_deref();
                    if sel_count(sel, batch.rows) == 0 {
                        return Ok(VOut::Rows(Vec::new()));
                    }
                    let cols = exprs
                        .iter()
                        .map(|e| veval(e, &batch, sel, env))
                        .collect::<Result<Vec<_>>>()?;
                    let out = sel_iter(sel, batch.rows)
                        .map(|i| cols.iter().map(|c| c.value_at(i)).collect())
                        .collect();
                    Ok(VOut::Rows(out))
                }
            }
        }
        PhysicalPlan::Aggregate {
            input,
            group_exprs,
            aggs,
        } => {
            if group_exprs.is_empty() {
                if let Some(rows) = try_window_fast_path(input, aggs, ctx)? {
                    return Ok(VOut::Rows(rows));
                }
            }
            let mut set = BTreeSet::new();
            for e in group_exprs {
                collect_refs(e, &mut set);
            }
            for a in aggs {
                if let Some(arg) = &a.arg {
                    collect_refs(arg, &mut set);
                }
            }
            let child_needed: Vec<usize> = set.into_iter().collect();
            let rows = match vrun(input, ctx, env, Some(&child_needed))? {
                VOut::Rows(rows) => rows,
                VOut::Batch { batch, sel } => {
                    let sel = sel.as_deref();
                    if group_exprs.is_empty() && sel_count(sel, batch.rows) > 0 {
                        if let Some(row) = try_global_kernels(&batch, sel, aggs, env)? {
                            return Ok(VOut::Rows(vec![row]));
                        }
                    }
                    materialize(&batch, sel)
                }
            };
            run_aggregate(&rows, group_exprs, aggs, env).map(VOut::Rows)
        }
        PhysicalPlan::Sort { input, keys } => {
            let child_needed: Option<Vec<usize>> = needed.map(|n| {
                let mut set: BTreeSet<usize> = n.iter().copied().collect();
                set.extend(keys.iter().map(|(pos, _)| *pos));
                set.into_iter().collect()
            });
            let mut rows = materialize_out(vrun(input, ctx, env, child_needed.as_deref())?);
            rows.sort_by(|a, b| {
                for (pos, desc) in keys {
                    let ord = a[*pos].cmp_total(&b[*pos]);
                    let ord = if *desc { ord.reverse() } else { ord };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            Ok(VOut::Rows(rows))
        }
        PhysicalPlan::Limit { input, n } => {
            let k = *n as usize;
            match vrun(input, ctx, env, needed)? {
                VOut::Rows(mut rows) => {
                    rows.truncate(k);
                    Ok(VOut::Rows(rows))
                }
                VOut::Batch { batch, sel } => {
                    if sel_count(sel.as_deref(), batch.rows) <= k {
                        Ok(VOut::Batch { batch, sel })
                    } else {
                        let sel = sel_iter(sel.as_deref(), batch.rows)
                            .take(k)
                            .map(|i| i as u32)
                            .collect();
                        Ok(VOut::Batch {
                            batch,
                            sel: Some(sel),
                        })
                    }
                }
            }
        }
        PhysicalPlan::Distinct { input } => {
            let rows = materialize_out(vrun(input, ctx, env, None)?);
            let mut seen = std::collections::HashSet::new();
            let mut out = Vec::new();
            for r in rows {
                if seen.insert(r.clone()) {
                    out.push(r);
                }
            }
            Ok(VOut::Rows(out))
        }
        PhysicalPlan::NestedLoopJoin { left, right, on } => {
            let db = ctx.db();
            let arity_fn = |t: TableId| db.table(t).map(|tb| tb.schema().arity()).unwrap_or(0);
            let left_arity = left.arity(&arity_fn);
            let lout = vrun(left, ctx, env, None)?;
            let rout = vrun(right, ctx, env, None)?;
            let pairs = equi_pairs(on, left_arity);
            join_outputs(lout, rout, on, &pairs, env).map(VOut::Rows)
        }
    }
}

// ---------------------------------------------------------------------------
// Expression evaluation over batches
// ---------------------------------------------------------------------------

/// A batch-level expression result: a constant (same value for every
/// selected row), a borrowed input column, or a freshly computed one.
enum VCol<'a> {
    Const(Value),
    Ref(&'a Column),
    Owned(Column),
}

impl VCol<'_> {
    fn col(&self) -> Option<&Column> {
        match self {
            VCol::Const(_) => None,
            VCol::Ref(c) => Some(c),
            VCol::Owned(c) => Some(c),
        }
    }

    fn value_at(&self, i: usize) -> Value {
        match self {
            VCol::Const(v) => v.clone(),
            VCol::Ref(c) => c.value_at(i),
            VCol::Owned(c) => c.value_at(i),
        }
    }

    fn is_null_at(&self, i: usize) -> bool {
        match self {
            VCol::Const(v) => v.is_null(),
            VCol::Ref(c) => c.is_null_at(i),
            VCol::Owned(c) => c.is_null_at(i),
        }
    }
}

fn all_null(data: ColumnData, rows: usize) -> Column {
    Column {
        data,
        validity: Some(Bitmap::new_clear(rows)),
    }
}

/// View a result as a numeric kernel operand. The `bool` flag marks
/// timestamp-typed sources, whose arithmetic against floats must take the
/// scalar fallback (the row path's `as_float` rejects timestamps).
fn num_src<'v>(v: &'v VCol<'_>) -> Option<(NumSrc<'v>, Option<&'v Bitmap>, bool)> {
    match v {
        VCol::Const(Value::Int(k)) => Some((NumSrc::CI(*k), None, false)),
        VCol::Const(Value::Float(f)) => Some((NumSrc::CF(*f), None, false)),
        VCol::Const(Value::Timestamp(t)) => Some((NumSrc::CI(*t), None, true)),
        VCol::Const(_) => None,
        _ => {
            let c = v.col()?;
            let validity = c.validity.as_ref();
            match &c.data {
                ColumnData::Int(d) => Some((NumSrc::I(d), validity, false)),
                ColumnData::Timestamp(d) => Some((NumSrc::I(d), validity, true)),
                ColumnData::Float(d) => Some((NumSrc::F(d), validity, false)),
                _ => None,
            }
        }
    }
}

fn str_src<'v>(v: &'v VCol<'_>) -> Option<(StrSrc<'v>, Option<&'v Bitmap>)> {
    match v {
        VCol::Const(Value::Text(s)) => Some((StrSrc::Const(s), None)),
        VCol::Const(_) => None,
        _ => match v.col()? {
            Column {
                data: ColumnData::Text(d),
                validity,
            } => Some((StrSrc::Col(d), validity.as_ref())),
            _ => None,
        },
    }
}

fn bool_src<'v>(v: &'v VCol<'_>) -> Option<(BoolSrc<'v>, Option<&'v Bitmap>)> {
    match v {
        VCol::Const(Value::Bool(b)) => Some((BoolSrc::Const(*b), None)),
        VCol::Const(_) => None,
        _ => match v.col()? {
            Column {
                data: ColumnData::Bool(d),
                validity,
            } => Some((BoolSrc::Col(d), validity.as_ref())),
            _ => None,
        },
    }
}

fn is_const_null(v: &VCol<'_>) -> bool {
    matches!(v, VCol::Const(Value::Null))
}

fn cmp_op_of(op: crate::ast::BinOp) -> CmpOp {
    match op {
        crate::ast::BinOp::Eq => CmpOp::Eq,
        crate::ast::BinOp::Neq => CmpOp::Ne,
        crate::ast::BinOp::Lt => CmpOp::Lt,
        crate::ast::BinOp::Le => CmpOp::Le,
        crate::ast::BinOp::Gt => CmpOp::Gt,
        crate::ast::BinOp::Ge => CmpOp::Ge,
        other => unreachable!("not a comparison operator: {other:?}"),
    }
}

fn arith_op_of(op: crate::ast::BinOp) -> ArithOp {
    match op {
        crate::ast::BinOp::Add => ArithOp::Add,
        crate::ast::BinOp::Sub => ArithOp::Sub,
        crate::ast::BinOp::Mul => ArithOp::Mul,
        crate::ast::BinOp::Div => ArithOp::Div,
        crate::ast::BinOp::Mod => ArithOp::Mod,
        other => unreachable!("not an arithmetic operator: {other:?}"),
    }
}

/// Kernel dispatch for a comparison; `None` = operand shapes the kernels
/// don't cover (mixed-type lanes), caller takes the scalar fallback.
/// Comparisons never type-error (`cmp_total` is total), so heterogeneous
/// pairs are the only reason to bail.
fn vcmp(op: CmpOp, l: &VCol<'_>, r: &VCol<'_>, sel: Option<&[u32]>, rows: usize) -> Option<Column> {
    if is_const_null(l) || is_const_null(r) {
        return Some(all_null(ColumnData::Bool(vec![false; rows]), rows));
    }
    if let (Some((a, av, _)), Some((b, bv, _))) = (num_src(l), num_src(r)) {
        let (vals, validity) = cmp_num(op, a, av, b, bv, sel, rows);
        return Some(Column {
            data: ColumnData::Bool(vals),
            validity,
        });
    }
    if let (Some((a, av)), Some((b, bv))) = (str_src(l), str_src(r)) {
        let (vals, validity) = cmp_str(op, a, av, b, bv, sel, rows);
        return Some(Column {
            data: ColumnData::Bool(vals),
            validity,
        });
    }
    if let (Some((a, av)), Some((b, bv))) = (bool_src(l), bool_src(r)) {
        let (vals, validity) = cmp_bool(op, a, av, b, bv, sel, rows);
        return Some(Column {
            data: ColumnData::Bool(vals),
            validity,
        });
    }
    None
}

/// Kernel dispatch for arithmetic; `None` = take the scalar fallback.
fn varith(
    op: ArithOp,
    l: &VCol<'_>,
    r: &VCol<'_>,
    sel: Option<&[u32]>,
    rows: usize,
) -> Option<Result<Column>> {
    if is_const_null(l) || is_const_null(r) {
        // The row path checks NULL operands before anything else, so a
        // NULL constant nulls the whole column regardless of the other
        // operand's type.
        return Some(Ok(all_null(ColumnData::Int(vec![0; rows]), rows)));
    }
    let (a, av, a_ts) = num_src(l)?;
    let (b, bv, b_ts) = num_src(r)?;
    if (a_ts || b_ts) && !(a.is_int() && b.is_int()) {
        // Timestamp ⊕ Float errors in the row path; go scalar for parity.
        return None;
    }
    Some(arith_num(op, a, av, b, bv, sel, rows).map(|(data, validity)| Column { data, validity }))
}

/// Evaluate `e` over the selected rows of `batch`. Kernel-backed where the
/// operand lanes allow, scalar fallback otherwise. Callers must ensure the
/// selection is non-empty (constant subexpressions are evaluated eagerly,
/// and the row path never evaluates anything over zero rows).
fn veval<'a>(
    e: &BoundExpr,
    batch: &'a ColumnBatch,
    sel: Option<&[u32]>,
    env: &EvalEnv<'_>,
) -> Result<VCol<'a>> {
    match e {
        BoundExpr::Literal(v) => Ok(VCol::Const(v.clone())),
        BoundExpr::Param(i) => env
            .params
            .get(*i)
            .cloned()
            .map(VCol::Const)
            .ok_or_else(|| Error::Constraint(format!("missing parameter ?{i}"))),
        BoundExpr::SubqueryRef(i) => env
            .subs
            .get(*i)
            .cloned()
            .map(VCol::Const)
            .ok_or_else(|| Error::Internal(format!("missing subquery slot {i}"))),
        BoundExpr::ColumnRef(i) => {
            if *i >= batch.columns.len() {
                return Err(Error::Internal(format!("column offset {i} out of range")));
            }
            Ok(VCol::Ref(batch.column(*i)))
        }
        BoundExpr::Scalar { func, .. } if *func == crate::expr::ScalarFn::Now => {
            Ok(VCol::Const(Value::Timestamp(env.now)))
        }
        BoundExpr::IsNull { expr, negated } => {
            let c = veval(expr, batch, sel, env)?;
            let mut vals = vec![false; batch.rows];
            for i in sel_iter(sel, batch.rows) {
                vals[i] = c.is_null_at(i) != *negated;
            }
            Ok(VCol::Owned(Column {
                data: ColumnData::Bool(vals),
                validity: None,
            }))
        }
        BoundExpr::Binary { op, left, right } => match op {
            crate::ast::BinOp::And => vand_or(true, left, right, batch, sel, env),
            crate::ast::BinOp::Or => vand_or(false, left, right, batch, sel, env),
            crate::ast::BinOp::Eq
            | crate::ast::BinOp::Neq
            | crate::ast::BinOp::Lt
            | crate::ast::BinOp::Le
            | crate::ast::BinOp::Gt
            | crate::ast::BinOp::Ge => {
                let l = veval(left, batch, sel, env)?;
                let r = veval(right, batch, sel, env)?;
                match vcmp(cmp_op_of(*op), &l, &r, sel, batch.rows) {
                    Some(c) => Ok(VCol::Owned(c)),
                    None => veval_cellwise(e, batch, sel, env),
                }
            }
            crate::ast::BinOp::Add
            | crate::ast::BinOp::Sub
            | crate::ast::BinOp::Mul
            | crate::ast::BinOp::Div
            | crate::ast::BinOp::Mod => {
                let l = veval(left, batch, sel, env)?;
                let r = veval(right, batch, sel, env)?;
                match varith(arith_op_of(*op), &l, &r, sel, batch.rows) {
                    Some(res) => res.map(VCol::Owned),
                    None => veval_cellwise(e, batch, sel, env),
                }
            }
        },
        // IN / BETWEEN / unary ops / scalar functions: scalar fallback —
        // exact semantics, still batched through the selection.
        _ => veval_cellwise(e, batch, sel, env),
    }
}

/// Scalar fallback: evaluate the whole expression per selected row via
/// [`eval`], gathering referenced cells into a scratch row. Exact row-path
/// semantics including error order within the expression.
fn veval_cellwise(
    e: &BoundExpr,
    batch: &ColumnBatch,
    sel: Option<&[u32]>,
    env: &EvalEnv<'_>,
) -> Result<VCol<'static>> {
    let mut refs = BTreeSet::new();
    collect_refs(e, &mut refs);
    let mut scratch = vec![Value::Null; batch.columns.len()];
    let mut out = vec![Value::Null; batch.rows];
    for i in sel_iter(sel, batch.rows) {
        for &r in &refs {
            scratch[r] = batch.column(r).value_at(i);
        }
        out[i] = eval(e, &scratch, env)?;
    }
    Ok(VCol::Owned(Column {
        data: ColumnData::Generic(out),
        validity: None,
    }))
}

/// Three-valued `AND`/`OR` with short-circuit parity: the right operand is
/// only evaluated on rows the left side did not decide, so `x <> 0 AND
/// 10 / x > 1` never divides by zero — exactly like the row interpreter.
fn vand_or(
    is_and: bool,
    left: &BoundExpr,
    right: &BoundExpr,
    batch: &ColumnBatch,
    sel: Option<&[u32]>,
    env: &EvalEnv<'_>,
) -> Result<VCol<'static>> {
    let op_name = if is_and { "AND" } else { "OR" };
    let lcol = veval(left, batch, sel, env)?;
    let rows = batch.rows;
    let mut vals = vec![false; rows];
    let mut validity = Bitmap::new_set(rows);
    // Left tri-state per selected row; `sub` = rows not short-circuited.
    let mut ltri: Vec<Option<bool>> = vec![None; rows];
    let mut sub: Vec<u32> = Vec::new();
    for i in sel_iter(sel, rows) {
        let t = match lcol.value_at(i) {
            Value::Bool(b) => Some(b),
            Value::Null => None,
            other => {
                return Err(Error::TypeMismatch(format!("{op_name} applied to {other}")));
            }
        };
        ltri[i] = t;
        if t == Some(!is_and) {
            // AND short-circuits on false, OR on true.
            vals[i] = !is_and;
        } else {
            sub.push(i as u32);
        }
    }
    if !sub.is_empty() {
        let rcol = veval(right, batch, Some(&sub), env)?;
        for &iu in &sub {
            let i = iu as usize;
            match (rcol.value_at(i), ltri[i]) {
                // Mirrors the row path's merge: a decisive right side wins
                // even when the left was NULL.
                (Value::Bool(b), _) if b != is_and => vals[i] = !is_and,
                (Value::Null, _) | (Value::Bool(_), None) => validity.set(i, false),
                (Value::Bool(_), Some(_)) => vals[i] = is_and,
                (other, _) => {
                    return Err(Error::TypeMismatch(format!("{op_name} applied to {other}")));
                }
            }
        }
    }
    Ok(VCol::Owned(Column {
        data: ColumnData::Bool(vals),
        validity: Some(validity),
    }))
}

/// Evaluate a predicate over the selection and reduce it to the surviving
/// row indices. NULL counts as false (SQL `WHERE` semantics).
fn pred_selection(
    pred: &BoundExpr,
    batch: &ColumnBatch,
    sel: Option<&[u32]>,
    env: &EvalEnv<'_>,
) -> Result<Vec<u32>> {
    if sel_count(sel, batch.rows) == 0 {
        return Ok(Vec::new());
    }
    let c = veval(pred, batch, sel, env)?;
    if let Some(Column {
        data: ColumnData::Bool(vals),
        validity,
    }) = c.col()
    {
        return Ok(bool_to_sel(vals, validity.as_ref(), sel, batch.rows));
    }
    let mut out = Vec::new();
    for i in sel_iter(sel, batch.rows) {
        match c.value_at(i) {
            Value::Bool(true) => out.push(i as u32),
            Value::Bool(false) | Value::Null => {}
            other => {
                return Err(Error::TypeMismatch(format!(
                    "predicate evaluated to non-boolean {other}"
                )));
            }
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Aggregates
// ---------------------------------------------------------------------------

/// Global (ungrouped) aggregation straight off the lanes. `None` = some
/// aggregate isn't kernel-representable; caller falls back to the row
/// accumulator. Caller guarantees a non-empty selection.
fn try_global_kernels(
    batch: &ColumnBatch,
    sel: Option<&[u32]>,
    aggs: &[AggExpr],
    env: &EvalEnv<'_>,
) -> Result<Option<Row>> {
    if aggs.iter().any(|a| a.distinct) {
        return Ok(None);
    }
    let rows = batch.rows;
    let n = sel_count(sel, rows) as i64;
    let mut out: Vec<Value> = Vec::with_capacity(aggs.len());
    for agg in aggs {
        if agg.func == AggFunc::CountStar {
            out.push(Value::Int(n));
            continue;
        }
        let Some(arg) = &agg.arg else {
            return Ok(None);
        };
        let vc = veval(arg, batch, sel, env)?;
        let value = match (agg.func, vc.col()) {
            (AggFunc::Count, None) => {
                // Constant argument: NULL counts nothing, else every row.
                Value::Int(if vc.is_null_at(0) { 0 } else { n })
            }
            (AggFunc::Count, Some(c)) => match &c.data {
                ColumnData::Generic(_) => {
                    let mut k = 0i64;
                    for i in sel_iter(sel, rows) {
                        if !c.is_null_at(i) {
                            k += 1;
                        }
                    }
                    Value::Int(k)
                }
                _ => Value::Int(count_nonnull(c.validity.as_ref(), sel, rows)),
            },
            (AggFunc::Sum, Some(c)) => match &c.data {
                ColumnData::Int(d) => {
                    sum_int(d, c.validity.as_ref(), sel, rows)?.map_or(Value::Null, Value::Int)
                }
                ColumnData::Float(d) => {
                    sum_float(d, c.validity.as_ref(), sel, rows).map_or(Value::Null, Value::Float)
                }
                // Timestamp/Bool/Text/Generic sums carry row-path type
                // errors; use the accumulator for exact parity.
                _ => return Ok(None),
            },
            (AggFunc::Avg, Some(c)) => {
                let src = match &c.data {
                    ColumnData::Int(d) => NumSrc::I(d),
                    ColumnData::Float(d) => NumSrc::F(d),
                    _ => return Ok(None),
                };
                let (sum, k) = avg_num(src, c.validity.as_ref(), sel, rows);
                if k == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / k as f64)
                }
            }
            (AggFunc::Min | AggFunc::Max, Some(c)) => {
                let want_max = agg.func == AggFunc::Max;
                match &c.data {
                    ColumnData::Int(d) => min_max_int(d, c.validity.as_ref(), sel, rows, want_max)
                        .map_or(Value::Null, Value::Int),
                    ColumnData::Timestamp(d) => {
                        min_max_int(d, c.validity.as_ref(), sel, rows, want_max)
                            .map_or(Value::Null, Value::Timestamp)
                    }
                    ColumnData::Float(d) => {
                        min_max_float(d, c.validity.as_ref(), sel, rows, want_max)
                            .map_or(Value::Null, Value::Float)
                    }
                    _ => return Ok(None),
                }
            }
            _ => return Ok(None),
        };
        out.push(value);
    }
    Ok(Some(out.into()))
}

/// Answer ungrouped `COUNT/SUM/AVG` over a bare window scan from the
/// window's incremental aggregate cache — O(aggs) instead of O(window).
/// `None` = shape or cache not applicable; caller scans normally.
fn try_window_fast_path(
    input: &PhysicalPlan,
    aggs: &[AggExpr],
    ctx: &dyn ExecContext,
) -> Result<Option<Vec<Row>>> {
    let PhysicalPlan::Scan {
        table,
        path: AccessPath::Full,
        residual: None,
    } = input
    else {
        return Ok(None);
    };
    let db = ctx.db();
    let Ok(TableKind::Window(w)) = db.kind(*table) else {
        return Ok(None);
    };
    if !w.aggs.valid || w.aggs.rows != db.table(*table)?.len() as u64 {
        return Ok(None);
    }
    // Scope enforcement must fire even when the scan itself is skipped.
    ctx.check_read(*table)?;
    let meta = db
        .catalog()
        .meta(*table)
        .ok_or_else(|| Error::Internal(format!("table {table} missing from catalog")))?;
    let vis = &meta.visible_schema;
    let rows = w.aggs.rows;
    let mut out: Vec<Value> = Vec::with_capacity(aggs.len());
    for agg in aggs {
        if agg.distinct {
            return Ok(None);
        }
        let value = match (agg.func, agg.arg.as_ref()) {
            (AggFunc::CountStar, _) => Value::Int(rows as i64),
            (AggFunc::Count, Some(BoundExpr::ColumnRef(i))) if *i < vis.arity() => {
                match w.aggs.cols.get(*i) {
                    Some(c) => Value::Int(c.nonnull as i64),
                    None => return Ok(None),
                }
            }
            (AggFunc::Sum | AggFunc::Avg, Some(BoundExpr::ColumnRef(i)))
                if *i < vis.arity() && vis.columns()[*i].ty == DataType::Int =>
            {
                let Some(c) = w.aggs.cols.get(*i) else {
                    return Ok(None);
                };
                if c.overflow {
                    // Let the scan path raise the row-order overflow error.
                    return Ok(None);
                }
                if c.nonnull == 0 {
                    Value::Null
                } else if agg.func == AggFunc::Sum {
                    Value::Int(c.overflow_sum)
                } else {
                    Value::Float(c.overflow_sum as f64 / c.nonnull as f64)
                }
            }
            _ => return Ok(None),
        };
        out.push(value);
    }
    Ok(Some(vec![out.into()]))
}

// ---------------------------------------------------------------------------
// Joins
// ---------------------------------------------------------------------------

/// Hash join both inputs on the extracted equi-pairs, then apply the full
/// `ON` expression to each key-matching pair. Output order matches the
/// nested loop: left-major, right side in its scan order.
fn join_outputs(
    lout: VOut,
    rout: VOut,
    on: &BoundExpr,
    pairs: &[(usize, usize)],
    env: &EvalEnv<'_>,
) -> Result<Vec<Row>> {
    // Fast path: single `INT = INT` key over intact batches — probe with
    // the i64 kernel, no `Value` boxing on the key.
    if let (
        [(lp, rp)],
        VOut::Batch {
            batch: lb,
            sel: lsel,
        },
        VOut::Batch {
            batch: rb,
            sel: rsel,
        },
    ) = (pairs, &lout, &rout)
    {
        let lc = lb.column(*lp);
        let rc = rb.column(*rp);
        if let (
            ColumnData::Int(ld) | ColumnData::Timestamp(ld),
            ColumnData::Int(rd) | ColumnData::Timestamp(rd),
        ) = (&lc.data, &rc.data)
        {
            let matches = hash_join_i64(
                rd,
                rc.validity.as_ref(),
                rsel.as_deref(),
                ld,
                lc.validity.as_ref(),
                lsel.as_deref(),
            );
            let mut out = Vec::with_capacity(matches.len());
            let mut last_li = usize::MAX;
            let mut lrow = Row::default();
            for (li, ri) in matches {
                let (li, ri) = (li as usize, ri as usize);
                if li != last_li {
                    lrow = row_of(lb, li);
                    last_li = li;
                }
                let joined = lrow.concat(&row_of(rb, ri));
                if eval_pred(on, &joined, env)? {
                    out.push(joined);
                }
            }
            return Ok(out);
        }
    }
    let lrows = materialize_out(lout);
    let rrows = materialize_out(rout);
    if pairs.is_empty() {
        // Defensive: shouldn't happen under `eligible`, but degrade to the
        // exact nested loop rather than mis-joining.
        let mut out = Vec::new();
        for l in &lrows {
            for r in &rrows {
                let joined = l.concat(r);
                if eval_pred(on, &joined, env)? {
                    out.push(joined);
                }
            }
        }
        return Ok(out);
    }
    // Build on the right (inner) side. NULL key components never match
    // (`=` is NULL-rejecting), so those rows are skipped outright.
    let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
    'build: for (j, r) in rrows.iter().enumerate() {
        let mut key = Vec::with_capacity(pairs.len());
        for (_, rp) in pairs {
            let v = &r[*rp];
            if v.is_null() {
                continue 'build;
            }
            key.push(v.clone());
        }
        table.entry(key).or_default().push(j);
    }
    let mut out = Vec::new();
    'probe: for l in &lrows {
        let mut key = Vec::with_capacity(pairs.len());
        for (lp, _) in pairs {
            let v = &l[*lp];
            if v.is_null() {
                continue 'probe;
            }
            key.push(v.clone());
        }
        if let Some(js) = table.get(&key) {
            for &j in js {
                let joined = l.concat(&rrows[j]);
                if eval_pred(on, &joined, env)? {
                    out.push(joined);
                }
            }
        }
    }
    Ok(out)
}
