//! Name resolution and plan construction.

use crate::ast::{self, Expr, InsertSource, Select, SelectItem, Stmt};
use crate::expr::{BoundExpr, ScalarFn};
use crate::plan::{AccessPath, AggExpr, AggFunc, DdlOp, PhysicalPlan, PlannedStmt};
use sstore_common::{Column, Error, Result, Schema, TableId, Value};
use sstore_storage::Database;

/// One column visible to name resolution.
#[derive(Debug, Clone)]
struct LayoutCol {
    /// Table binding (alias or table name) this column came from.
    binding: String,
    /// Column name.
    name: String,
    /// Part of the user-visible schema (hidden lifecycle columns are
    /// resolvable by explicit name but excluded from `*`).
    visible: bool,
}

/// The row layout a plan fragment produces.
#[derive(Debug, Clone, Default)]
struct Layout {
    cols: Vec<LayoutCol>,
}

impl Layout {
    fn from_table(db: &Database, table: TableId, binding: &str) -> Result<Layout> {
        let meta = db
            .catalog()
            .meta(table)
            .ok_or_else(|| Error::NotFound(format!("table {table}")))?;
        let visible_arity = meta.visible_schema.arity();
        let storage = db.table(table)?.schema();
        let cols = storage
            .columns()
            .iter()
            .enumerate()
            .map(|(i, c)| LayoutCol {
                binding: binding.to_string(),
                name: c.name.clone(),
                visible: i < visible_arity,
            })
            .collect();
        Ok(Layout { cols })
    }

    fn concat(mut self, other: Layout) -> Layout {
        self.cols.extend(other.cols);
        self
    }

    fn resolve(&self, table: Option<&str>, name: &str) -> Result<usize> {
        let name = name.to_ascii_lowercase();
        let matches: Vec<usize> = self
            .cols
            .iter()
            .enumerate()
            .filter(|(_, c)| {
                c.name == name
                    && table
                        .map(|t| c.binding.eq_ignore_ascii_case(t))
                        .unwrap_or(true)
            })
            .map(|(i, _)| i)
            .collect();
        match matches.len() {
            0 => Err(Error::NotFound(format!(
                "column `{}{name}`",
                table.map(|t| format!("{t}.")).unwrap_or_default()
            ))),
            1 => Ok(matches[0]),
            _ => Err(Error::Parse(format!("ambiguous column `{name}`"))),
        }
    }

    fn visible_positions(&self) -> Vec<usize> {
        self.cols
            .iter()
            .enumerate()
            .filter(|(_, c)| c.visible)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Plan any statement against the current catalog.
pub fn plan_statement(stmt: &Stmt, db: &Database) -> Result<PlannedStmt> {
    match stmt {
        Stmt::Select(s) => {
            let mut subs = Vec::new();
            let (plan, columns) = plan_select(s, db, &mut subs)?;
            let arity = |t| db.table(t).map(|tb| tb.schema().arity()).unwrap_or(0);
            let vectorizable =
                crate::vexec::worthwhile(&plan) && crate::vexec::eligible(&plan, &arity);
            Ok(PlannedStmt::Query {
                plan,
                columns,
                subqueries: subs,
                vectorizable,
            })
        }
        Stmt::Insert(i) => plan_insert(i, db),
        Stmt::Update(u) => plan_update(u, db),
        Stmt::Delete(d) => plan_delete(d, db),
        Stmt::CreateTable(c) => {
            let mut cols = Vec::with_capacity(c.columns.len());
            for cd in &c.columns {
                let pk_col = c
                    .primary_key
                    .iter()
                    .any(|p| p.eq_ignore_ascii_case(&cd.name));
                let col = if cd.nullable && !pk_col {
                    Column::nullable(&cd.name, cd.ty)
                } else {
                    Column::new(&cd.name, cd.ty)
                };
                cols.push(col);
            }
            let pk_refs: Vec<&str> = c.primary_key.iter().map(String::as_str).collect();
            let schema = Schema::new(cols, &pk_refs)?;
            Ok(PlannedStmt::Ddl(DdlOp::CreateTable {
                name: c.name.clone(),
                schema,
            }))
        }
        Stmt::CreateStream(c) => {
            let schema = columns_to_schema(&c.columns)?;
            Ok(PlannedStmt::Ddl(DdlOp::CreateStream {
                name: c.name.clone(),
                schema,
            }))
        }
        Stmt::CreateWindow(c) => {
            let schema = columns_to_schema(&c.columns)?;
            Ok(PlannedStmt::Ddl(DdlOp::CreateWindow {
                name: c.name.clone(),
                schema,
                tuple_based: c.tuple_based,
                size: c.size,
                slide: c.slide,
            }))
        }
    }
}

fn columns_to_schema(defs: &[ast::ColumnDef]) -> Result<Schema> {
    let cols = defs
        .iter()
        .map(|cd| {
            if cd.nullable {
                Column::nullable(&cd.name, cd.ty)
            } else {
                Column::new(&cd.name, cd.ty)
            }
        })
        .collect();
    Schema::keyless(cols)
}

// ---------------------------------------------------------------------------
// Expression binding
// ---------------------------------------------------------------------------

struct Binder<'a, 'b> {
    layout: &'a Layout,
    db: &'a Database,
    subs: &'b mut Vec<PhysicalPlan>,
}

impl Binder<'_, '_> {
    fn bind(&mut self, e: &Expr) -> Result<BoundExpr> {
        Ok(match e {
            Expr::Literal(v) => BoundExpr::Literal(v.clone()),
            Expr::Param(i) => BoundExpr::Param(*i),
            Expr::Column { table, name } => {
                BoundExpr::ColumnRef(self.layout.resolve(table.as_deref(), name)?)
            }
            Expr::Unary { op, expr } => BoundExpr::Unary {
                op: *op,
                expr: Box::new(self.bind(expr)?),
            },
            Expr::Binary { op, left, right } => BoundExpr::Binary {
                op: *op,
                left: Box::new(self.bind(left)?),
                right: Box::new(self.bind(right)?),
            },
            Expr::IsNull { expr, negated } => BoundExpr::IsNull {
                expr: Box::new(self.bind(expr)?),
                negated: *negated,
            },
            Expr::InList {
                expr,
                list,
                negated,
            } => BoundExpr::InList {
                expr: Box::new(self.bind(expr)?),
                list: {
                    let mut out = Vec::with_capacity(list.len());
                    for e in list {
                        out.push(self.bind(e)?);
                    }
                    out
                },
                negated: *negated,
            },
            Expr::Between {
                expr,
                lo,
                hi,
                negated,
            } => BoundExpr::Between {
                expr: Box::new(self.bind(expr)?),
                lo: Box::new(self.bind(lo)?),
                hi: Box::new(self.bind(hi)?),
                negated: *negated,
            },
            Expr::Func {
                name,
                args,
                distinct,
            } => {
                if ast::is_aggregate(name) {
                    return Err(Error::Parse(format!("aggregate `{name}` not allowed here")));
                }
                if *distinct {
                    return Err(Error::Parse(format!(
                        "DISTINCT only applies to aggregates, not `{name}`"
                    )));
                }
                let func = ScalarFn::by_name(name)
                    .ok_or_else(|| Error::NotFound(format!("function `{name}`")))?;
                if let Some(n) = func.arity() {
                    if args.len() != n {
                        return Err(Error::Parse(format!(
                            "function `{name}` expects {n} argument(s)"
                        )));
                    }
                }
                BoundExpr::Scalar {
                    func,
                    args: {
                        let mut out = Vec::with_capacity(args.len());
                        for a in args {
                            out.push(self.bind(a)?);
                        }
                        out
                    },
                }
            }
            Expr::Wildcard => return Err(Error::Parse("`*` only allowed inside COUNT(*)".into())),
            Expr::Subquery(sel) => {
                let (plan, cols) = plan_select(sel, self.db, self.subs)?;
                if cols.len() != 1 {
                    return Err(Error::Parse(format!(
                        "scalar subquery must return one column, got {}",
                        cols.len()
                    )));
                }
                self.subs.push(plan);
                BoundExpr::SubqueryRef(self.subs.len() - 1)
            }
            Expr::Exists { select, negated } => {
                let counting = exists_to_count(select)?;
                let (plan, _) = plan_select(&counting, self.db, self.subs)?;
                self.subs.push(plan);
                let slot = BoundExpr::SubqueryRef(self.subs.len() - 1);
                BoundExpr::Binary {
                    op: if *negated {
                        crate::ast::BinOp::Eq
                    } else {
                        crate::ast::BinOp::Gt
                    },
                    left: Box::new(slot),
                    right: Box::new(BoundExpr::Literal(Value::Int(0))),
                }
            }
        })
    }
}

/// Desugar `EXISTS (sub)` into `SELECT COUNT(*) FROM sub.from WHERE ...`.
/// Only uncorrelated, non-grouped subqueries are supported.
fn exists_to_count(sub: &Select) -> Result<Select> {
    if !sub.group_by.is_empty() || sub.having.is_some() {
        return Err(Error::Parse(
            "EXISTS subqueries with GROUP BY/HAVING are not supported".into(),
        ));
    }
    Ok(Select {
        distinct: false,
        items: vec![SelectItem::Expr {
            expr: Expr::Func {
                name: "count".into(),
                args: vec![Expr::Wildcard],
                distinct: false,
            },
            alias: None,
        }],
        from: sub.from.clone(),
        where_pred: sub.where_pred.clone(),
        group_by: vec![],
        having: None,
        order_by: vec![],
        limit: None,
    })
}

// ---------------------------------------------------------------------------
// SELECT
// ---------------------------------------------------------------------------

fn plan_select(
    s: &Select,
    db: &Database,
    subs: &mut Vec<PhysicalPlan>,
) -> Result<(PhysicalPlan, Vec<String>)> {
    let (mut plan, layout) = plan_from(s, db, subs)?;

    // WHERE: try to fold simple equality conjuncts into an access path.
    if let Some(pred) = &s.where_pred {
        plan = apply_where(plan, &layout, pred, db, subs)?;
    }

    let aggregate_query = !s.group_by.is_empty()
        || s.items.iter().any(|i| match i {
            SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
            SelectItem::Star => false,
        })
        || s.having.as_ref().is_some_and(Expr::contains_aggregate)
        || s.order_by.iter().any(|k| k.expr.contains_aggregate());

    // Each path produces: the plan below the projection, the projection
    // expressions (select outputs first, appended sort keys after), the
    // output names, the real output arity, and the resolved sort keys.
    let (plan, proj_exprs, mut names, out_arity, sort_keys) = if aggregate_query {
        plan_aggregate_select(s, db, plan, &layout, subs)?
    } else {
        let mut binder = Binder {
            layout: &layout,
            db,
            subs,
        };
        let mut exprs = Vec::new();
        let mut names = Vec::new();
        for item in &s.items {
            match item {
                SelectItem::Star => {
                    for pos in layout.visible_positions() {
                        exprs.push(BoundExpr::ColumnRef(pos));
                        names.push(layout.cols[pos].name.clone());
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    exprs.push(binder.bind(expr)?);
                    names.push(output_name(expr, alias.as_deref(), names.len()));
                }
            }
        }
        if let Some(h) = &s.having {
            // HAVING without aggregates degenerates to a filter.
            let pred = binder.bind(h)?;
            plan = PhysicalPlan::Filter {
                input: Box::new(plan),
                pred,
            };
        }
        let out_arity = exprs.len();
        let mut sort_keys = Vec::new();
        for key in &s.order_by {
            match resolve_order_key(&key.expr, &names, out_arity)? {
                Some(pos) => sort_keys.push((pos, key.desc)),
                None => {
                    sort_keys.push((exprs.len(), key.desc));
                    exprs.push(binder.bind(&key.expr)?);
                }
            }
        }
        (plan, exprs, names, out_arity, sort_keys)
    };

    let proj_arity = proj_exprs.len();
    if s.distinct && proj_arity != out_arity {
        return Err(Error::Parse(
            "ORDER BY of a DISTINCT query must reference output columns".into(),
        ));
    }
    let mut plan = PhysicalPlan::Project {
        input: Box::new(plan),
        exprs: proj_exprs,
    };
    if s.distinct {
        plan = PhysicalPlan::Distinct {
            input: Box::new(plan),
        };
    }
    if !sort_keys.is_empty() {
        plan = PhysicalPlan::Sort {
            input: Box::new(plan),
            keys: sort_keys,
        };
    }
    if let Some(n) = s.limit {
        plan = PhysicalPlan::Limit {
            input: Box::new(plan),
            n,
        };
    }
    // Shave off appended sort-key columns.
    if proj_arity != out_arity {
        plan = PhysicalPlan::Project {
            input: Box::new(plan),
            exprs: (0..out_arity).map(BoundExpr::ColumnRef).collect(),
        };
    }
    names.truncate(out_arity);
    Ok((plan, names))
}

/// Resolve an ORDER BY key that refers to an output column: by alias/name
/// (`ORDER BY c`) or by position (`ORDER BY 1`). Returns `None` when the key
/// is a general expression the caller must bind and append.
fn resolve_order_key(expr: &Expr, names: &[String], out_arity: usize) -> Result<Option<usize>> {
    if let Expr::Column { table: None, name } = expr {
        if let Some(pos) = names.iter().position(|n| n.eq_ignore_ascii_case(name)) {
            return Ok(Some(pos));
        }
    }
    if let Expr::Literal(Value::Int(n)) = expr {
        let idx = *n - 1;
        if idx >= 0 && (idx as usize) < out_arity {
            return Ok(Some(idx as usize));
        }
        return Err(Error::Parse(format!("ORDER BY position {n} out of range")));
    }
    Ok(None)
}

/// Build the FROM tree and its layout.
fn plan_from(
    s: &Select,
    db: &Database,
    subs: &mut Vec<PhysicalPlan>,
) -> Result<(PhysicalPlan, Layout)> {
    match &s.from {
        None => Ok((
            PhysicalPlan::Values { rows: vec![vec![]] },
            Layout::default(),
        )),
        Some(f) => {
            let base_id = db.resolve(&f.base.name)?;
            let mut layout = Layout::from_table(db, base_id, f.base.binding())?;
            let mut plan = PhysicalPlan::Scan {
                table: base_id,
                path: AccessPath::Full,
                residual: None,
            };
            for (tref, on) in &f.joins {
                let tid = db.resolve(&tref.name)?;
                let right_layout = Layout::from_table(db, tid, tref.binding())?;
                layout = layout.concat(right_layout);
                let on_bound = Binder {
                    layout: &layout,
                    db,
                    subs,
                }
                .bind(on)?;
                plan = PhysicalPlan::NestedLoopJoin {
                    left: Box::new(plan),
                    right: Box::new(PhysicalPlan::Scan {
                        table: tid,
                        path: AccessPath::Full,
                        residual: None,
                    }),
                    on: on_bound,
                };
            }
            Ok((plan, layout))
        }
    }
}

/// Apply the WHERE clause, folding equality conjuncts into an index access
/// path when the plan is a bare single-table scan.
fn apply_where(
    plan: PhysicalPlan,
    layout: &Layout,
    pred: &Expr,
    db: &Database,
    subs: &mut Vec<PhysicalPlan>,
) -> Result<PhysicalPlan> {
    if let PhysicalPlan::Scan {
        table,
        path: AccessPath::Full,
        residual: None,
    } = &plan
    {
        let table = *table;
        let (path, residual) = choose_access_path(table, pred, layout, db, subs)?;
        return Ok(PhysicalPlan::Scan {
            table,
            path,
            residual,
        });
    }
    let mut binder = Binder { layout, db, subs };
    let bound = binder.bind(pred)?;
    Ok(PhysicalPlan::Filter {
        input: Box::new(plan),
        pred: bound,
    })
}

/// Pick the cheapest access path for a single-table predicate: a PK or
/// secondary-index point lookup when equality conjuncts cover a key, else
/// a full scan. The full predicate is always kept as the residual —
/// re-checking key columns is cheap and keeps the path trivially sound.
fn choose_access_path(
    table: TableId,
    pred: &Expr,
    layout: &Layout,
    db: &Database,
    subs: &mut Vec<PhysicalPlan>,
) -> Result<(AccessPath, Option<BoundExpr>)> {
    let mut binder = Binder { layout, db, subs };
    let conjuncts = split_conjuncts(pred);
    // Gather col-position -> value-expression equalities whose value side
    // references no columns (so it can be evaluated up front).
    let mut eqs: Vec<(usize, &Expr)> = Vec::new();
    for c in &conjuncts {
        if let Expr::Binary {
            op: ast::BinOp::Eq,
            left,
            right,
        } = c
        {
            for (col_side, val_side) in [(left, right), (right, left)] {
                if let Expr::Column { table: t, name } = col_side.as_ref() {
                    if !references_columns(val_side) {
                        if let Ok(pos) = layout.resolve(t.as_deref(), name) {
                            eqs.push((pos, val_side));
                            break;
                        }
                    }
                }
            }
        }
    }
    let tb = db.table(table)?;
    // Try the primary key first, then each secondary index.
    let candidates: Vec<(Option<String>, Vec<usize>)> = {
        let mut v = Vec::new();
        if tb.schema().has_pk() {
            v.push((None, tb.schema().pk_indices().to_vec()));
        }
        for ix in tb.indexes() {
            v.push((Some(ix.def.name.clone()), ix.def.key_cols.to_vec()));
        }
        v
    };
    for (index_name, key_cols) in candidates {
        let keys: Option<Vec<&Expr>> = key_cols
            .iter()
            .map(|kc| eqs.iter().find(|(pos, _)| pos == kc).map(|(_, e)| *e))
            .collect();
        if let Some(keys) = keys {
            let bound_keys: Vec<BoundExpr> =
                keys.iter().map(|e| binder.bind(e)).collect::<Result<_>>()?;
            let path = match index_name {
                None => AccessPath::PkPoint(bound_keys),
                Some(n) => AccessPath::IndexPoint(n, bound_keys),
            };
            let residual = Some(binder.bind(pred)?);
            return Ok((path, residual));
        }
    }
    Ok((AccessPath::Full, Some(binder.bind(pred)?)))
}

fn split_conjuncts(e: &Expr) -> Vec<&Expr> {
    let mut out = Vec::new();
    fn go<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
        if let Expr::Binary {
            op: ast::BinOp::And,
            left,
            right,
        } = e
        {
            go(left, out);
            go(right, out);
        } else {
            out.push(e);
        }
    }
    go(e, &mut out);
    out
}

fn references_columns(e: &Expr) -> bool {
    match e {
        Expr::Column { .. } => true,
        // Uncorrelated subqueries are evaluated before the statement, so
        // they act like constants for access-path purposes.
        Expr::Subquery(_) | Expr::Exists { .. } => false,
        Expr::Literal(_) | Expr::Param(_) | Expr::Wildcard => false,
        Expr::Unary { expr, .. } => references_columns(expr),
        Expr::Binary { left, right, .. } => references_columns(left) || references_columns(right),
        Expr::IsNull { expr, .. } => references_columns(expr),
        Expr::InList { expr, list, .. } => {
            references_columns(expr) || list.iter().any(references_columns)
        }
        Expr::Between { expr, lo, hi, .. } => {
            references_columns(expr) || references_columns(lo) || references_columns(hi)
        }
        Expr::Func { args, .. } => args.iter().any(references_columns),
    }
}

fn output_name(expr: &Expr, alias: Option<&str>, pos: usize) -> String {
    if let Some(a) = alias {
        return a.to_ascii_lowercase();
    }
    match expr {
        Expr::Column { name, .. } => name.clone(),
        Expr::Func { name, .. } => name.clone(),
        _ => format!("col{pos}"),
    }
}

// ---------------------------------------------------------------------------
// Aggregate SELECT
// ---------------------------------------------------------------------------

/// Plans an aggregate SELECT. Returns `(plan below projection, projection
/// exprs [outputs then appended sort keys], output names, real output
/// arity, resolved sort keys)`.
/// `(plan below projection, projection exprs, output names, real output
/// arity, resolved sort keys)`.
type AggregatePlanParts = (
    PhysicalPlan,
    Vec<BoundExpr>,
    Vec<String>,
    usize,
    Vec<(usize, bool)>,
);

fn plan_aggregate_select(
    s: &Select,
    db: &Database,
    input: PhysicalPlan,
    layout: &Layout,
    subs: &mut Vec<PhysicalPlan>,
) -> Result<AggregatePlanParts> {
    // 2. Collect unique aggregate calls from every post-group expression.
    let mut agg_calls: Vec<(String, Option<Expr>, bool)> = Vec::new(); // (func, arg, distinct)
    for item in &s.items {
        match item {
            SelectItem::Star => {
                return Err(Error::Parse(
                    "`SELECT *` cannot be combined with GROUP BY/aggregates".into(),
                ))
            }
            SelectItem::Expr { expr, .. } => collect_aggs(expr, &mut agg_calls),
        }
    }
    if let Some(h) = &s.having {
        collect_aggs(h, &mut agg_calls);
    }
    for k in &s.order_by {
        collect_aggs(&k.expr, &mut agg_calls);
    }

    // 1+2. Bind group-by keys and aggregate arguments over the input row.
    let (group_bound, aggs) = {
        let mut binder = Binder { layout, db, subs };
        let mut group_bound = Vec::with_capacity(s.group_by.len());
        for e in &s.group_by {
            group_bound.push(binder.bind(e)?);
        }
        let mut aggs: Vec<AggExpr> = Vec::with_capacity(agg_calls.len());
        for (name, arg, distinct) in &agg_calls {
            let func = match (name.as_str(), arg) {
                ("count", None) => AggFunc::CountStar,
                ("count", Some(_)) => AggFunc::Count,
                ("sum", Some(_)) => AggFunc::Sum,
                ("avg", Some(_)) => AggFunc::Avg,
                ("min", Some(_)) => AggFunc::Min,
                ("max", Some(_)) => AggFunc::Max,
                (other, None) => {
                    return Err(Error::Parse(format!("{other}(*) is not valid")));
                }
                _ => unreachable!(),
            };
            if *distinct && arg.is_none() {
                return Err(Error::Parse("COUNT(DISTINCT *) is not valid".into()));
            }
            let arg_bound = match arg {
                Some(a) => Some(binder.bind(a)?),
                None => None,
            };
            aggs.push(AggExpr {
                func,
                arg: arg_bound,
                distinct: *distinct,
            });
        }
        (group_bound, aggs)
    };

    let n_groups = group_bound.len();
    let plan = PhysicalPlan::Aggregate {
        input: Box::new(input),
        group_exprs: group_bound,
        aggs,
    };

    // 3. Rewriter: post-aggregate expressions over [groups..., aggs...].
    let mut rewrite = |e: &Expr| -> Result<BoundExpr> {
        rewrite_post_agg(e, &s.group_by, &agg_calls, n_groups, db, subs)
    };

    let mut plan = plan;
    if let Some(h) = &s.having {
        let pred = rewrite(h)?;
        plan = PhysicalPlan::Filter {
            input: Box::new(plan),
            pred,
        };
    }

    let mut out_exprs = Vec::new();
    let mut names = Vec::new();
    for item in &s.items {
        if let SelectItem::Expr { expr, alias } = item {
            out_exprs.push(rewrite(expr)?);
            names.push(output_name(expr, alias.as_deref(), names.len()));
        }
    }

    // 4. Resolve ORDER BY keys: aliases/positions point into the outputs;
    //    anything else is rewritten post-aggregate and appended.
    let out_arity = out_exprs.len();
    let mut sort_keys = Vec::new();
    for k in &s.order_by {
        match resolve_order_key(&k.expr, &names, out_arity)? {
            Some(pos) => sort_keys.push((pos, k.desc)),
            None => {
                sort_keys.push((out_exprs.len(), k.desc));
                out_exprs.push(rewrite(&k.expr)?);
            }
        }
    }

    Ok((plan, out_exprs, names, out_arity, sort_keys))
}

fn collect_aggs(e: &Expr, out: &mut Vec<(String, Option<Expr>, bool)>) {
    match e {
        Expr::Func {
            name,
            args,
            distinct,
        } if ast::is_aggregate(name) => {
            let arg = match args.first() {
                Some(Expr::Wildcard) | None => None,
                Some(a) => Some(a.clone()),
            };
            let entry = (name.clone(), arg, *distinct);
            if !out.contains(&entry) {
                out.push(entry);
            }
        }
        Expr::Func { args, .. } => args.iter().for_each(|a| collect_aggs(a, out)),
        Expr::Unary { expr, .. } => collect_aggs(expr, out),
        Expr::Binary { left, right, .. } => {
            collect_aggs(left, out);
            collect_aggs(right, out);
        }
        Expr::IsNull { expr, .. } => collect_aggs(expr, out),
        Expr::InList { expr, list, .. } => {
            collect_aggs(expr, out);
            list.iter().for_each(|e| collect_aggs(e, out));
        }
        Expr::Between { expr, lo, hi, .. } => {
            collect_aggs(expr, out);
            collect_aggs(lo, out);
            collect_aggs(hi, out);
        }
        _ => {}
    }
}

fn rewrite_post_agg(
    e: &Expr,
    group_by: &[Expr],
    agg_calls: &[(String, Option<Expr>, bool)],
    n_groups: usize,
    db: &Database,
    subs: &mut Vec<PhysicalPlan>,
) -> Result<BoundExpr> {
    // Whole-expression matches a group-by key?
    if let Some(pos) = group_by.iter().position(|g| g == e) {
        return Ok(BoundExpr::ColumnRef(pos));
    }
    // An aggregate call?
    if let Expr::Func {
        name,
        args,
        distinct,
    } = e
    {
        if ast::is_aggregate(name) {
            let arg = match args.first() {
                Some(Expr::Wildcard) | None => None,
                Some(a) => Some(a.clone()),
            };
            let key = (name.clone(), arg, *distinct);
            let slot = agg_calls
                .iter()
                .position(|c| *c == key)
                .ok_or_else(|| Error::Internal("aggregate not collected".into()))?;
            return Ok(BoundExpr::ColumnRef(n_groups + slot));
        }
    }
    // Otherwise recurse; bare columns that aren't group keys are invalid.
    Ok(match e {
        Expr::Literal(v) => BoundExpr::Literal(v.clone()),
        Expr::Param(i) => BoundExpr::Param(*i),
        Expr::Column { name, .. } => {
            return Err(Error::Parse(format!(
                "column `{name}` must appear in GROUP BY or inside an aggregate"
            )))
        }
        Expr::Unary { op, expr } => BoundExpr::Unary {
            op: *op,
            expr: Box::new(rewrite_post_agg(
                expr, group_by, agg_calls, n_groups, db, subs,
            )?),
        },
        Expr::Binary { op, left, right } => BoundExpr::Binary {
            op: *op,
            left: Box::new(rewrite_post_agg(
                left, group_by, agg_calls, n_groups, db, subs,
            )?),
            right: Box::new(rewrite_post_agg(
                right, group_by, agg_calls, n_groups, db, subs,
            )?),
        },
        Expr::IsNull { expr, negated } => BoundExpr::IsNull {
            expr: Box::new(rewrite_post_agg(
                expr, group_by, agg_calls, n_groups, db, subs,
            )?),
            negated: *negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => BoundExpr::InList {
            expr: Box::new(rewrite_post_agg(
                expr, group_by, agg_calls, n_groups, db, subs,
            )?),
            list: list
                .iter()
                .map(|e| rewrite_post_agg(e, group_by, agg_calls, n_groups, db, subs))
                .collect::<Result<_>>()?,
            negated: *negated,
        },
        Expr::Between {
            expr,
            lo,
            hi,
            negated,
        } => BoundExpr::Between {
            expr: Box::new(rewrite_post_agg(
                expr, group_by, agg_calls, n_groups, db, subs,
            )?),
            lo: Box::new(rewrite_post_agg(
                lo, group_by, agg_calls, n_groups, db, subs,
            )?),
            hi: Box::new(rewrite_post_agg(
                hi, group_by, agg_calls, n_groups, db, subs,
            )?),
            negated: *negated,
        },
        Expr::Func { name, args, .. } => {
            let func = ScalarFn::by_name(name)
                .ok_or_else(|| Error::NotFound(format!("function `{name}`")))?;
            BoundExpr::Scalar {
                func,
                args: args
                    .iter()
                    .map(|a| rewrite_post_agg(a, group_by, agg_calls, n_groups, db, subs))
                    .collect::<Result<_>>()?,
            }
        }
        Expr::Exists { select, negated } => {
            let counting = exists_to_count(select)?;
            let (plan, _) = plan_select(&counting, db, subs)?;
            subs.push(plan);
            let slot = BoundExpr::SubqueryRef(subs.len() - 1);
            BoundExpr::Binary {
                op: if *negated {
                    crate::ast::BinOp::Eq
                } else {
                    crate::ast::BinOp::Gt
                },
                left: Box::new(slot),
                right: Box::new(BoundExpr::Literal(Value::Int(0))),
            }
        }
        Expr::Wildcard => return Err(Error::Parse("stray `*`".into())),
        Expr::Subquery(sel) => {
            let (plan, cols) = plan_select(sel, db, subs)?;
            if cols.len() != 1 {
                return Err(Error::Parse(format!(
                    "scalar subquery must return one column, got {}",
                    cols.len()
                )));
            }
            subs.push(plan);
            BoundExpr::SubqueryRef(subs.len() - 1)
        }
    })
}

// ---------------------------------------------------------------------------
// DML
// ---------------------------------------------------------------------------

fn plan_insert(i: &ast::Insert, db: &Database) -> Result<PlannedStmt> {
    let table = db.resolve(&i.table)?;
    let meta = db
        .catalog()
        .meta(table)
        .ok_or_else(|| Error::NotFound(format!("table `{}`", i.table)))?;
    let visible = &meta.visible_schema;

    // Which visible columns does the source provide, in source order?
    let provided: Vec<usize> = if i.columns.is_empty() {
        (0..visible.arity()).collect()
    } else {
        i.columns
            .iter()
            .map(|c| {
                visible
                    .column_index(c)
                    .ok_or_else(|| Error::NotFound(format!("column `{c}` in `{}`", i.table)))
            })
            .collect::<Result<_>>()?
    };
    {
        let mut seen = provided.clone();
        seen.sort_unstable();
        seen.dedup();
        if seen.len() != provided.len() {
            return Err(Error::Parse("duplicate column in INSERT list".into()));
        }
    }

    let mut subs = Vec::new();
    let source = match &i.source {
        InsertSource::Values(rows) => {
            let empty = Layout::default();
            let mut binder = Binder {
                layout: &empty,
                db,
                subs: &mut subs,
            };
            let mut bound_rows = Vec::with_capacity(rows.len());
            for row in rows {
                if row.len() != provided.len() {
                    return Err(Error::Parse(format!(
                        "INSERT row has {} values but {} columns",
                        row.len(),
                        provided.len()
                    )));
                }
                let mut bound = Vec::with_capacity(row.len());
                for e in row {
                    bound.push(binder.bind(e)?);
                }
                bound_rows.push(bound);
            }
            PhysicalPlan::Values { rows: bound_rows }
        }
        InsertSource::Select(sel) => {
            let (plan, cols) = plan_select(sel, db, &mut subs)?;
            if cols.len() != provided.len() {
                return Err(Error::Parse(format!(
                    "INSERT SELECT produces {} columns but {} expected",
                    cols.len(),
                    provided.len()
                )));
            }
            plan
        }
    };

    // mapping[visible_pos] = source offset
    let mapping: Vec<Option<usize>> = (0..visible.arity())
        .map(|vp| provided.iter().position(|&p| p == vp))
        .collect();

    Ok(PlannedStmt::Insert {
        table,
        source,
        mapping,
        subqueries: subs,
    })
}

fn plan_update(u: &ast::Update, db: &Database) -> Result<PlannedStmt> {
    let table = db.resolve(&u.table)?;
    let layout = Layout::from_table(db, table, &u.table)?;
    let mut subs = Vec::new();
    let mut binder = Binder {
        layout: &layout,
        db,
        subs: &mut subs,
    };
    let meta = db
        .catalog()
        .meta(table)
        .ok_or_else(|| Error::NotFound(format!("table `{}`", u.table)))?;
    let visible_arity = meta.visible_schema.arity();

    let mut sets = Vec::with_capacity(u.sets.len());
    for (col, e) in &u.sets {
        let pos = layout.resolve(None, col)?;
        if pos >= visible_arity {
            return Err(Error::Scope(format!("cannot update hidden column `{col}`")));
        }
        sets.push((pos, binder.bind(e)?));
    }
    let _ = binder;
    let (path, pred) = match &u.where_pred {
        Some(p) => choose_access_path(table, p, &layout, db, &mut subs)?,
        None => (AccessPath::Full, None),
    };
    Ok(PlannedStmt::Update {
        table,
        path,
        pred,
        sets,
        subqueries: subs,
    })
}

fn plan_delete(d: &ast::Delete, db: &Database) -> Result<PlannedStmt> {
    let table = db.resolve(&d.table)?;
    let layout = Layout::from_table(db, table, &d.table)?;
    let mut subs = Vec::new();
    let (path, pred) = match &d.where_pred {
        Some(p) => choose_access_path(table, p, &layout, db, &mut subs)?,
        None => (AccessPath::Full, None),
    };
    Ok(PlannedStmt::Delete {
        table,
        path,
        pred,
        subqueries: subs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use sstore_common::DataType;

    fn test_db() -> Database {
        let mut db = Database::new();
        let schema = Schema::new(
            vec![
                Column::new("id", DataType::Int),
                Column::new("name", DataType::Text),
                Column::nullable("score", DataType::Float),
            ],
            &["id"],
        )
        .unwrap();
        db.create_table("t", schema).unwrap();
        let s2 = Schema::keyless(vec![Column::new("v", DataType::Int)]).unwrap();
        db.create_stream("s", s2).unwrap();
        db
    }

    fn plan(sql: &str) -> PlannedStmt {
        let db = test_db();
        plan_statement(&parse(sql).unwrap(), &db).unwrap()
    }

    fn plan_err(sql: &str) -> Error {
        let db = test_db();
        plan_statement(&parse(sql).unwrap(), &db).unwrap_err()
    }

    #[test]
    fn select_star_hides_hidden_columns() {
        match plan("SELECT * FROM s") {
            PlannedStmt::Query { plan, columns, .. } => {
                assert_eq!(columns, vec!["v"]);
                match plan {
                    PhysicalPlan::Project { exprs, .. } => assert_eq!(exprs.len(), 1),
                    other => panic!("{other:?}"),
                }
            }
            _ => panic!(),
        }
    }

    #[test]
    fn hidden_columns_resolvable_by_name() {
        match plan("SELECT __seq FROM s") {
            PlannedStmt::Query { columns, .. } => assert_eq!(columns, vec!["__seq"]),
            _ => panic!(),
        }
    }

    #[test]
    fn pk_point_lookup_detected() {
        match plan("SELECT name FROM t WHERE id = ?") {
            PlannedStmt::Query { plan, .. } => {
                let mut found = false;
                fn walk(p: &PhysicalPlan, found: &mut bool) {
                    match p {
                        PhysicalPlan::Scan {
                            path: AccessPath::PkPoint(_),
                            ..
                        } => *found = true,
                        PhysicalPlan::Project { input, .. }
                        | PhysicalPlan::Filter { input, .. }
                        | PhysicalPlan::Sort { input, .. }
                        | PhysicalPlan::Limit { input, .. } => walk(input, found),
                        _ => {}
                    }
                }
                walk(&plan, &mut found);
                assert!(found, "expected PK point lookup in {plan:?}");
            }
            _ => panic!(),
        }
    }

    #[test]
    fn non_key_predicate_scans_with_residual() {
        match plan("SELECT id FROM t WHERE score > 1.5") {
            PlannedStmt::Query { plan, .. } => {
                let s = format!("{plan:?}");
                assert!(s.contains("Full"), "{s}");
                assert!(s.contains("residual: Some"), "{s}");
                assert!(!s.contains("PkPoint"));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn dml_uses_index_access_paths() {
        match plan("UPDATE t SET score = 0.0 WHERE id = 7") {
            PlannedStmt::Update { path, .. } => {
                assert!(matches!(path, AccessPath::PkPoint(_)), "{path:?}");
            }
            _ => panic!(),
        }
        match plan("DELETE FROM t WHERE id = ?") {
            PlannedStmt::Delete { path, .. } => {
                assert!(matches!(path, AccessPath::PkPoint(_)), "{path:?}");
            }
            _ => panic!(),
        }
        // Non-key predicates fall back to full scans.
        match plan("DELETE FROM t WHERE score IS NULL") {
            PlannedStmt::Delete { path, .. } => {
                assert!(matches!(path, AccessPath::Full), "{path:?}");
            }
            _ => panic!(),
        }
    }

    #[test]
    fn unknown_column_rejected() {
        assert_eq!(plan_err("SELECT missing FROM t").kind(), "not_found");
        assert_eq!(plan_err("SELECT id FROM missing").kind(), "not_found");
    }

    #[test]
    fn aggregate_plan_shape() {
        match plan("SELECT name, COUNT(*) AS c FROM t GROUP BY name HAVING COUNT(*) > 1 ORDER BY c DESC LIMIT 3")
        {
            PlannedStmt::Query { plan, columns, .. } => {
                assert_eq!(columns, vec!["name", "c"]);
                let s = format!("{plan:?}");
                assert!(s.contains("Aggregate"));
                assert!(s.contains("Sort"));
                assert!(s.contains("Limit"));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn bare_column_outside_group_by_rejected() {
        let e = plan_err("SELECT score, COUNT(*) FROM t GROUP BY name");
        assert_eq!(e.kind(), "parse");
    }

    #[test]
    fn insert_mapping_default_and_explicit() {
        match plan("INSERT INTO t VALUES (1, 'x', 2.0)") {
            PlannedStmt::Insert { mapping, .. } => {
                assert_eq!(mapping, vec![Some(0), Some(1), Some(2)]);
            }
            _ => panic!(),
        }
        match plan("INSERT INTO t (name, id) VALUES ('x', 1)") {
            PlannedStmt::Insert { mapping, .. } => {
                assert_eq!(mapping, vec![Some(1), Some(0), None]);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn insert_arity_mismatch_rejected() {
        assert_eq!(plan_err("INSERT INTO t (id) VALUES (1, 2)").kind(), "parse");
        assert_eq!(
            plan_err("INSERT INTO t (id, id) VALUES (1, 2)").kind(),
            "parse"
        );
    }

    #[test]
    fn update_hidden_column_rejected() {
        let e = plan_err("UPDATE s SET __seq = 0");
        assert_eq!(e.kind(), "scope");
    }

    #[test]
    fn update_and_delete_plans() {
        match plan("UPDATE t SET score = score + 1 WHERE id = 3") {
            PlannedStmt::Update { sets, pred, .. } => {
                assert_eq!(sets.len(), 1);
                assert_eq!(sets[0].0, 2);
                assert!(pred.is_some());
            }
            _ => panic!(),
        }
        match plan("DELETE FROM t") {
            PlannedStmt::Delete { pred, .. } => assert!(pred.is_none()),
            _ => panic!(),
        }
    }

    #[test]
    fn ddl_plans() {
        match plan("CREATE TABLE x (id INT, PRIMARY KEY (id))") {
            PlannedStmt::Ddl(DdlOp::CreateTable { name, schema }) => {
                assert_eq!(name, "x");
                assert!(schema.has_pk());
                // pk column forced non-nullable
                assert!(!schema.columns()[0].nullable);
            }
            _ => panic!(),
        }
        match plan("CREATE WINDOW w (v INT) ROWS 10 SLIDE 2") {
            PlannedStmt::Ddl(DdlOp::CreateWindow {
                tuple_based, size, ..
            }) => {
                assert!(tuple_based);
                assert_eq!(size, 10);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn join_layout_resolution() {
        let db = {
            let mut db = test_db();
            let s = Schema::new(
                vec![
                    Column::new("id", DataType::Int),
                    Column::new("t_id", DataType::Int),
                ],
                &["id"],
            )
            .unwrap();
            db.create_table("u", s).unwrap();
            db
        };
        let stmt = parse("SELECT t.name, u.id FROM t JOIN u ON t.id = u.t_id").unwrap();
        let planned = plan_statement(&stmt, &db).unwrap();
        match planned {
            PlannedStmt::Query { columns, .. } => assert_eq!(columns, vec!["name", "id"]),
            _ => panic!(),
        }
        // ambiguous bare column
        let stmt = parse("SELECT id FROM t JOIN u ON t.id = u.t_id").unwrap();
        let err = plan_statement(&stmt, &db).unwrap_err();
        assert_eq!(err.kind(), "parse");
    }

    #[test]
    fn order_by_position_and_alias() {
        assert!(matches!(
            plan("SELECT id AS a FROM t ORDER BY a"),
            PlannedStmt::Query { .. }
        ));
        assert!(matches!(
            plan("SELECT id FROM t ORDER BY 1 DESC"),
            PlannedStmt::Query { .. }
        ));
        assert_eq!(plan_err("SELECT id FROM t ORDER BY 5").kind(), "parse");
    }
}
