//! Abstract syntax tree for the S-Store SQL subset.

use sstore_common::{DataType, Value};

/// Any parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `SELECT ...`
    Select(Select),
    /// `INSERT INTO ...`
    Insert(Insert),
    /// `UPDATE ...`
    Update(Update),
    /// `DELETE FROM ...`
    Delete(Delete),
    /// `CREATE TABLE ...`
    CreateTable(CreateTable),
    /// `CREATE STREAM ...`
    CreateStream(CreateStream),
    /// `CREATE WINDOW ...`
    CreateWindow(CreateWindow),
}

/// A `SELECT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    /// `SELECT DISTINCT` — deduplicate output rows.
    pub distinct: bool,
    /// Projection list.
    pub items: Vec<SelectItem>,
    /// `FROM` clause; `None` for table-less selects (`SELECT 1+1`).
    pub from: Option<FromClause>,
    /// `WHERE` predicate.
    pub where_pred: Option<Expr>,
    /// `GROUP BY` expressions.
    pub group_by: Vec<Expr>,
    /// `HAVING` predicate (requires `GROUP BY` or aggregates).
    pub having: Option<Expr>,
    /// `ORDER BY` keys with descending flags.
    pub order_by: Vec<OrderKey>,
    /// `LIMIT` row count.
    pub limit: Option<u64>,
}

/// One projection item.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*` — expands to the visible columns of the FROM tables.
    Star,
    /// `expr [AS alias]`
    Expr {
        /// The projected expression.
        expr: Expr,
        /// Optional output name.
        alias: Option<String>,
    },
}

/// `FROM base [JOIN t ON pred]*` — inner equi-joins only.
#[derive(Debug, Clone, PartialEq)]
pub struct FromClause {
    /// First table.
    pub base: TableRef,
    /// Joined tables with their `ON` predicates.
    pub joins: Vec<(TableRef, Expr)>,
}

/// A table reference with optional alias.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// Table/stream/window name.
    pub name: String,
    /// `AS` alias.
    pub alias: Option<String>,
}

impl TableRef {
    /// The name this reference binds in scope (alias if present).
    pub fn binding(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.name)
    }
}

/// One `ORDER BY` key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    /// Sort expression.
    pub expr: Expr,
    /// True for `DESC`.
    pub desc: bool,
}

/// `INSERT INTO table [(cols)] VALUES (...),(...)` or `INSERT INTO t SELECT`.
#[derive(Debug, Clone, PartialEq)]
pub struct Insert {
    /// Target table.
    pub table: String,
    /// Explicit column list (empty = all visible columns in order).
    pub columns: Vec<String>,
    /// The rows.
    pub source: InsertSource,
}

/// Where inserted rows come from.
#[derive(Debug, Clone, PartialEq)]
pub enum InsertSource {
    /// Literal row expressions.
    Values(Vec<Vec<Expr>>),
    /// A subquery.
    Select(Box<Select>),
}

/// `UPDATE table SET col = expr, ... [WHERE pred]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Update {
    /// Target table.
    pub table: String,
    /// Assignments.
    pub sets: Vec<(String, Expr)>,
    /// Row filter.
    pub where_pred: Option<Expr>,
}

/// `DELETE FROM table [WHERE pred]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Delete {
    /// Target table.
    pub table: String,
    /// Row filter.
    pub where_pred: Option<Expr>,
}

/// One column in a `CREATE` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Declared type.
    pub ty: DataType,
    /// True unless `NOT NULL` was given. (Primary-key columns are always
    /// non-nullable regardless.)
    pub nullable: bool,
}

/// `CREATE TABLE name (cols..., [PRIMARY KEY (cols)])`.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateTable {
    /// Table name.
    pub name: String,
    /// Columns.
    pub columns: Vec<ColumnDef>,
    /// Primary-key column names.
    pub primary_key: Vec<String>,
}

/// `CREATE STREAM name (cols...)`.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateStream {
    /// Stream name.
    pub name: String,
    /// Columns.
    pub columns: Vec<ColumnDef>,
}

/// `CREATE WINDOW name (cols...) ROWS n SLIDE m` or `... RANGE n SLIDE m`.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateWindow {
    /// Window name.
    pub name: String,
    /// Columns.
    pub columns: Vec<ColumnDef>,
    /// True for `ROWS` (tuple-based), false for `RANGE` (time-based, µs).
    pub tuple_based: bool,
    /// Window size (tuples or µs).
    pub size: i64,
    /// Slide (tuples or µs).
    pub slide: i64,
}

/// Binary operators, in one enum; precedence lives in the parser.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `=`
    Eq,
    /// `<>`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Numeric negation.
    Neg,
    /// Boolean NOT.
    Not,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal value.
    Literal(Value),
    /// Positional parameter (`?`), numbered left to right from 0.
    Param(usize),
    /// Column reference, optionally qualified (`t.c`).
    Column {
        /// Qualifier (table name or alias).
        table: Option<String>,
        /// Column name.
        name: String,
    },
    /// Unary operation.
    Unary {
        /// The operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Operand.
        expr: Box<Expr>,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
    /// `expr [NOT] IN (e1, e2, ...)`.
    InList {
        /// Test expression.
        expr: Box<Expr>,
        /// Candidate list.
        list: Vec<Expr>,
        /// True for `NOT IN`.
        negated: bool,
    },
    /// `expr [NOT] BETWEEN lo AND hi`.
    Between {
        /// Test expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        lo: Box<Expr>,
        /// Upper bound (inclusive).
        hi: Box<Expr>,
        /// True for `NOT BETWEEN`.
        negated: bool,
    },
    /// Function call — scalar (`ABS`, `SQRT`, ...) or aggregate
    /// (`COUNT`, `SUM`, `AVG`, `MIN`, `MAX`). `COUNT(*)` uses `Wildcard`
    /// as its only argument.
    Func {
        /// Function name, lower-cased.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// `DISTINCT` argument modifier (aggregates only).
        distinct: bool,
    },
    /// `[NOT] EXISTS (SELECT ...)` — uncorrelated only; desugared by the
    /// planner into a scalar COUNT subquery comparison.
    Exists {
        /// The subquery.
        select: Box<Select>,
        /// True for `NOT EXISTS`.
        negated: bool,
    },
    /// The `*` inside `COUNT(*)`.
    Wildcard,
    /// Uncorrelated scalar subquery `(SELECT ...)`: must produce one
    /// column; zero rows evaluate to NULL, more than one row is an error.
    Subquery(Box<Select>),
}

impl Expr {
    /// Convenience constructor for a bare column reference.
    pub fn col(name: &str) -> Expr {
        Expr::Column {
            table: None,
            name: name.to_string(),
        }
    }

    /// True if this expression (recursively) contains an aggregate call.
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Func { name, .. } if is_aggregate(name) => true,
            Expr::Func { args, .. } => args.iter().any(Expr::contains_aggregate),
            // EXISTS aggregates internally, not in the outer query.
            Expr::Exists { .. } => false,
            Expr::Unary { expr, .. } => expr.contains_aggregate(),
            Expr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            Expr::IsNull { expr, .. } => expr.contains_aggregate(),
            Expr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(Expr::contains_aggregate)
            }
            Expr::Between { expr, lo, hi, .. } => {
                expr.contains_aggregate() || lo.contains_aggregate() || hi.contains_aggregate()
            }
            // A subquery's aggregates are its own; they do not make the
            // outer query an aggregate query.
            Expr::Subquery(_) => false,
            _ => false,
        }
    }
}

/// True for the five supported aggregate function names (lower-case).
pub fn is_aggregate(name: &str) -> bool {
    matches!(name, "count" | "sum" | "avg" | "min" | "max")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_detection() {
        let agg = Expr::Func {
            name: "count".into(),
            args: vec![Expr::Wildcard],
            distinct: false,
        };
        assert!(agg.contains_aggregate());
        let nested = Expr::Binary {
            op: BinOp::Add,
            left: Box::new(Expr::Literal(Value::Int(1))),
            right: Box::new(agg),
        };
        assert!(nested.contains_aggregate());
        assert!(!Expr::col("x").contains_aggregate());
        let scalar = Expr::Func {
            name: "abs".into(),
            args: vec![Expr::col("x")],
            distinct: false,
        };
        assert!(!scalar.contains_aggregate());
    }

    #[test]
    fn table_ref_binding() {
        let t = TableRef {
            name: "votes".into(),
            alias: Some("v".into()),
        };
        assert_eq!(t.binding(), "v");
        let u = TableRef {
            name: "votes".into(),
            alias: None,
        };
        assert_eq!(u.binding(), "votes");
    }
}
