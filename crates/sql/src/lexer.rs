//! SQL tokenizer.

use sstore_common::{Error, Result};

/// One lexical token. Keywords are folded into `Ident` and recognized
/// case-insensitively by the parser (SQL identifiers are case-insensitive
/// throughout the engine).
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (original spelling preserved).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (quotes stripped, `''` unescaped).
    Str(String),
    /// Positional parameter `?`.
    Param,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl Token {
    /// True if this token is the given keyword (case-insensitive).
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenize SQL text.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // line comment
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            ';' => {
                out.push(Token::Semi);
                i += 1;
            }
            '.' => {
                out.push(Token::Dot);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '+' => {
                out.push(Token::Plus);
                i += 1;
            }
            '-' => {
                out.push(Token::Minus);
                i += 1;
            }
            '/' => {
                out.push(Token::Slash);
                i += 1;
            }
            '%' => {
                out.push(Token::Percent);
                i += 1;
            }
            '?' => {
                out.push(Token::Param);
                i += 1;
            }
            '=' => {
                out.push(Token::Eq);
                i += 1;
            }
            '!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Token::Neq);
                    i += 2;
                } else {
                    return Err(Error::Parse("stray `!`".into()));
                }
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Token::Le);
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    out.push(Token::Neq);
                    i += 2;
                } else {
                    out.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Token::Ge);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    if i >= bytes.len() {
                        return Err(Error::Parse("unterminated string literal".into()));
                    }
                    if bytes[i] == b'\'' {
                        if i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        // Copy the full UTF-8 character.
                        let ch_len = utf8_len(bytes[i]);
                        s.push_str(
                            std::str::from_utf8(&bytes[i..i + ch_len])
                                .map_err(|_| Error::Parse("invalid UTF-8 in string".into()))?,
                        );
                        i += ch_len;
                    }
                }
                out.push(Token::Str(s));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i + 1 < bytes.len() && bytes[i] == b'.' && bytes[i + 1].is_ascii_digit() {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                // exponent
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < bytes.len() && bytes[j].is_ascii_digit() {
                        is_float = true;
                        i = j;
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = &input[start..i];
                if is_float {
                    let f: f64 = text
                        .parse()
                        .map_err(|_| Error::Parse(format!("bad float literal `{text}`")))?;
                    out.push(Token::Float(f));
                } else {
                    let n: i64 = text
                        .parse()
                        .map_err(|_| Error::Parse(format!("bad int literal `{text}`")))?;
                    out.push(Token::Int(n));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                out.push(Token::Ident(input[start..i].to_string()));
            }
            other => {
                return Err(Error::Parse(format!("unexpected character `{other}`")));
            }
        }
    }
    Ok(out)
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_statement() {
        let toks = tokenize("SELECT a, b FROM t WHERE x = 1;").unwrap();
        assert_eq!(toks[0], Token::Ident("SELECT".into()));
        assert!(toks[0].is_kw("select"));
        assert!(toks.contains(&Token::Eq));
        assert!(toks.contains(&Token::Int(1)));
        assert_eq!(*toks.last().unwrap(), Token::Semi);
    }

    #[test]
    fn operators() {
        let toks = tokenize("<= >= <> != < > = + - * / %").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Le,
                Token::Ge,
                Token::Neq,
                Token::Neq,
                Token::Lt,
                Token::Gt,
                Token::Eq,
                Token::Plus,
                Token::Minus,
                Token::Star,
                Token::Slash,
                Token::Percent,
            ]
        );
    }

    #[test]
    fn string_escapes() {
        let toks = tokenize("'it''s'").unwrap();
        assert_eq!(toks, vec![Token::Str("it's".into())]);
        assert!(tokenize("'open").is_err());
    }

    #[test]
    fn numbers() {
        let toks = tokenize("1 2.5 3e2 10.25").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Int(1),
                Token::Float(2.5),
                Token::Float(300.0),
                Token::Float(10.25),
            ]
        );
    }

    #[test]
    fn dot_is_separate_from_int() {
        // t.c must lex as ident dot ident, and `1.` must not eat the dot
        // when not followed by a digit (qualified column after a number is
        // nonsense, but the lexer stays predictable).
        let toks = tokenize("t.c").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("t".into()),
                Token::Dot,
                Token::Ident("c".into())
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        let toks = tokenize("SELECT 1 -- trailing comment\n, 2").unwrap();
        assert_eq!(toks.len(), 4);
    }

    #[test]
    fn params_and_unicode() {
        let toks = tokenize("? 'héllo'").unwrap();
        assert_eq!(toks, vec![Token::Param, Token::Str("héllo".into())]);
    }

    #[test]
    fn stray_bang_rejected() {
        assert!(tokenize("!").is_err());
        assert!(tokenize("#").is_err());
    }
}
