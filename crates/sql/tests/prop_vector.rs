//! Property tests for the vectorized executor: every compute kernel is
//! bit-identical to evaluating the scalar `expr` path per selected row
//! (same NULL propagation, same checked-overflow errors in the same
//! order), and whole queries return identical results through the row
//! interpreter and the vectorized path.

use proptest::prelude::*;
use sstore_common::{Column as SchemaColumn, DataType, Result, Row, Schema, TableId, Value};
use sstore_sql::ast::BinOp;
use sstore_sql::exec::{run_sql, DirectContext, ExecContext, QueryResult};
use sstore_sql::expr::{eval, BoundExpr, EvalEnv};
use sstore_sql::ExecPath;
use sstore_storage::{Database, RowId};
use sstore_vector::column::valid_at;
use sstore_vector::compute::{
    arith_num, avg_num, bool_to_sel, cmp_num, count_nonnull, min_max_int, sum_float, sum_int,
};
use sstore_vector::join::hash_join_i64;
use sstore_vector::{ArithOp, Bitmap, CmpOp, ColumnData, NumSrc};

// ---------------------------------------------------------------------------
// Generators and lane-building helpers.
// ---------------------------------------------------------------------------

/// Columns are generated as fixed-capacity vectors plus a live length
/// (the vendored proptest has no `prop_flat_map` to tie lengths
/// together); helpers slice to `n` before building lanes.
const CAP: usize = 32;

/// Integers biased toward small values but including the overflow edges.
fn arb_i64() -> impl Strategy<Value = i64> {
    prop_oneof![
        (-100i64..100).boxed(),
        (-100i64..100).boxed(),
        (-100i64..100).boxed(),
        any::<i64>().boxed(),
        Just(i64::MAX).boxed(),
        Just(i64::MIN).boxed(),
    ]
}

fn arb_f64() -> impl Strategy<Value = f64> {
    prop_oneof![
        any::<f64>().boxed(),
        any::<f64>().boxed(),
        Just(f64::NAN).boxed(),
        Just(-0.0f64).boxed(),
        Just(0.0f64).boxed(),
    ]
}

/// A nullable column: raw values + null mask (true = NULL).
fn arb_int_col() -> impl Strategy<Value = (Vec<i64>, Vec<bool>)> {
    (
        prop::collection::vec(arb_i64(), CAP..CAP + 1),
        prop::collection::vec(any::<bool>(), CAP..CAP + 1),
    )
}

fn arb_float_col() -> impl Strategy<Value = (Vec<f64>, Vec<bool>)> {
    (
        prop::collection::vec(arb_f64(), CAP..CAP + 1),
        prop::collection::vec(any::<bool>(), CAP..CAP + 1),
    )
}

/// Materialize `Option` cells: NULL where the mask (damped to ~25%
/// nulls by pairing two bools) says so.
fn int_cells(col: &(Vec<i64>, Vec<bool>), n: usize) -> Vec<Option<i64>> {
    (0..n).map(|i| (!col.1[i]).then_some(col.0[i])).collect()
}

fn float_cells(col: &(Vec<f64>, Vec<bool>), n: usize) -> Vec<Option<f64>> {
    (0..n).map(|i| (!col.1[i]).then_some(col.0[i])).collect()
}

/// Build an i64 lane + validity bitmap from a nullable column. NULL slots
/// hold an arbitrary default that kernels must never read.
fn int_lane(vals: &[Option<i64>]) -> (Vec<i64>, Option<Bitmap>) {
    let data: Vec<i64> = vals.iter().map(|v| v.unwrap_or(0)).collect();
    if vals.iter().all(|v| v.is_some()) {
        return (data, None);
    }
    let mut bm = Bitmap::new_set(vals.len());
    for (i, v) in vals.iter().enumerate() {
        bm.set(i, v.is_some());
    }
    (data, Some(bm))
}

fn float_lane(vals: &[Option<f64>]) -> (Vec<f64>, Option<Bitmap>) {
    let data: Vec<f64> = vals.iter().map(|v| v.unwrap_or(0.0)).collect();
    if vals.iter().all(|v| v.is_some()) {
        return (data, None);
    }
    let mut bm = Bitmap::new_set(vals.len());
    for (i, v) in vals.iter().enumerate() {
        bm.set(i, v.is_some());
    }
    (data, Some(bm))
}

/// Selection vector from a keep-mask; `None` when the caller wants dense.
fn selection(mask: &[bool], dense: bool) -> Option<Vec<u32>> {
    if dense {
        None
    } else {
        Some(
            mask.iter()
                .enumerate()
                .filter(|(_, &k)| k)
                .map(|(i, _)| i as u32)
                .collect(),
        )
    }
}

fn sel_indices(sel: Option<&[u32]>, rows: usize) -> Vec<usize> {
    match sel {
        None => (0..rows).collect(),
        Some(s) => s.iter().map(|&i| i as usize).collect(),
    }
}

/// The scalar reference: evaluate `col0 <op> col1` through the row
/// interpreter's expression evaluator.
fn scalar_binary(op: BinOp, a: Value, b: Value) -> Result<Value> {
    let e = BoundExpr::Binary {
        op,
        left: Box::new(BoundExpr::ColumnRef(0)),
        right: Box::new(BoundExpr::ColumnRef(1)),
    };
    let env = EvalEnv {
        params: &[],
        now: 0,
        subs: &[],
    };
    eval(&e, &[a, b], &env)
}

fn int_value(v: Option<i64>) -> Value {
    v.map(Value::Int).unwrap_or(Value::Null)
}

fn float_value(v: Option<f64>) -> Value {
    v.map(Value::Float).unwrap_or(Value::Null)
}

const CMP_OPS: [(CmpOp, BinOp); 6] = [
    (CmpOp::Eq, BinOp::Eq),
    (CmpOp::Ne, BinOp::Neq),
    (CmpOp::Lt, BinOp::Lt),
    (CmpOp::Le, BinOp::Le),
    (CmpOp::Gt, BinOp::Gt),
    (CmpOp::Ge, BinOp::Ge),
];

const ARITH_OPS: [(ArithOp, BinOp); 5] = [
    (ArithOp::Add, BinOp::Add),
    (ArithOp::Sub, BinOp::Sub),
    (ArithOp::Mul, BinOp::Mul),
    (ArithOp::Div, BinOp::Div),
    (ArithOp::Mod, BinOp::Mod),
];

// ---------------------------------------------------------------------------
// Kernel ≡ scalar interpreter, per selected row.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn cmp_int_kernel_matches_scalar(
        a in arb_int_col(),
        b in arb_int_col(),
        shape in (0usize..CAP, prop::collection::vec(any::<bool>(), CAP..CAP + 1), any::<bool>()),
        op_ix in 0usize..6,
    ) {
        let (n, mask, dense) = shape;
        let (op, binop) = CMP_OPS[op_ix];
        let a = int_cells(&a, n);
        let b = int_cells(&b, n);
        let (ad, av) = int_lane(&a);
        let (bd, bv) = int_lane(&b);
        let sel = selection(&mask[..n], dense);
        let (out, validity) = cmp_num(
            op, NumSrc::I(&ad), av.as_ref(), NumSrc::I(&bd), bv.as_ref(),
            sel.as_deref(), n,
        );
        for i in sel_indices(sel.as_deref(), n) {
            let expect = scalar_binary(binop, int_value(a[i]), int_value(b[i])).unwrap();
            match expect {
                Value::Null => prop_assert!(!valid_at(validity.as_ref(), i)),
                Value::Bool(want) => {
                    prop_assert!(valid_at(validity.as_ref(), i));
                    prop_assert_eq!(out[i], want);
                }
                other => prop_assert!(false, "scalar cmp returned {:?}", other),
            }
        }
    }

    #[test]
    fn cmp_mixed_kernel_matches_scalar(
        a in arb_int_col(),
        b in arb_float_col(),
        shape in (0usize..CAP, prop::collection::vec(any::<bool>(), CAP..CAP + 1), any::<bool>()),
        op_ix in 0usize..6,
    ) {
        let (n, mask, dense) = shape;
        let (op, binop) = CMP_OPS[op_ix];
        let a = int_cells(&a, n);
        let b = float_cells(&b, n);
        let (ad, av) = int_lane(&a);
        let (bd, bv) = float_lane(&b);
        let sel = selection(&mask[..n], dense);
        let (out, validity) = cmp_num(
            op, NumSrc::I(&ad), av.as_ref(), NumSrc::F(&bd), bv.as_ref(),
            sel.as_deref(), n,
        );
        for i in sel_indices(sel.as_deref(), n) {
            let expect = scalar_binary(binop, int_value(a[i]), float_value(b[i])).unwrap();
            match expect {
                Value::Null => prop_assert!(!valid_at(validity.as_ref(), i)),
                Value::Bool(want) => {
                    prop_assert!(valid_at(validity.as_ref(), i));
                    prop_assert_eq!(out[i], want);
                }
                other => prop_assert!(false, "scalar cmp returned {:?}", other),
            }
        }
    }

    #[test]
    fn arith_int_kernel_matches_scalar_with_error_parity(
        a in arb_int_col(),
        b in arb_int_col(),
        shape in (0usize..CAP, prop::collection::vec(any::<bool>(), CAP..CAP + 1), any::<bool>()),
        op_ix in 0usize..5,
    ) {
        let (n, mask, dense) = shape;
        let (op, binop) = ARITH_OPS[op_ix];
        let a = int_cells(&a, n);
        let b = int_cells(&b, n);
        let (ad, av) = int_lane(&a);
        let (bd, bv) = int_lane(&b);
        let sel = selection(&mask[..n], dense);
        let kernel = arith_num(
            op, NumSrc::I(&ad), av.as_ref(), NumSrc::I(&bd), bv.as_ref(),
            sel.as_deref(), n,
        );
        // The reference: scalar eval in selection (= row) order, stopping
        // at the first error exactly like the interpreter does.
        let mut reference: Vec<(usize, Value)> = Vec::new();
        let mut ref_err = None;
        for i in sel_indices(sel.as_deref(), n) {
            match scalar_binary(binop, int_value(a[i]), int_value(b[i])) {
                Ok(v) => reference.push((i, v)),
                Err(e) => { ref_err = Some(e); break; }
            }
        }
        match (kernel, ref_err) {
            (Err(ke), Some(re)) => prop_assert_eq!(ke, re),
            (Err(ke), None) => prop_assert!(false, "kernel errored ({ke}) but scalar path succeeded"),
            (Ok(_), Some(re)) => prop_assert!(false, "scalar path errored ({re}) but kernel succeeded"),
            (Ok((ColumnData::Int(out), validity)), None) => {
                for (i, want) in reference {
                    match want {
                        Value::Null => prop_assert!(!valid_at(validity.as_ref(), i)),
                        Value::Int(w) => {
                            prop_assert!(valid_at(validity.as_ref(), i));
                            prop_assert_eq!(out[i], w);
                        }
                        other => prop_assert!(false, "scalar arith returned {:?}", other),
                    }
                }
            }
            (Ok((other, _)), None) => prop_assert!(false, "int·int arith produced {:?}", other),
        }
    }

    #[test]
    fn sum_int_kernel_matches_scalar_fold(
        a in arb_int_col(),
        shape in (0usize..CAP, prop::collection::vec(any::<bool>(), CAP..CAP + 1), any::<bool>()),
    ) {
        let (n, mask, dense) = shape;
        let a = int_cells(&a, n);
        let (ad, av) = int_lane(&a);
        let sel = selection(&mask[..n], dense);
        let kernel = sum_int(&ad, av.as_ref(), sel.as_deref(), n);
        // Reference: checked fold in selection order, as the row
        // aggregate accumulator does.
        let mut acc: Option<i64> = None;
        let mut ref_err = false;
        for i in sel_indices(sel.as_deref(), n) {
            if let Some(v) = a[i] {
                match acc.unwrap_or(0).checked_add(v) {
                    Some(s) => acc = Some(s),
                    None => { ref_err = true; break; }
                }
            }
        }
        match kernel {
            Err(_) => prop_assert!(ref_err, "kernel overflowed but reference did not"),
            Ok(got) => {
                prop_assert!(!ref_err, "reference overflowed but kernel returned {:?}", got);
                prop_assert_eq!(got, acc);
            }
        }
    }

    #[test]
    fn float_and_minmax_aggregates_match_folds(
        ints in arb_int_col(),
        floats in arb_float_col(),
        shape in (0usize..CAP, prop::collection::vec(any::<bool>(), CAP..CAP + 1), any::<bool>()),
    ) {
        let (n, mask, dense) = shape;
        let ints = int_cells(&ints, n);
        let floats = float_cells(&floats, n);
        let (id, iv) = int_lane(&ints);
        let (fd, fv) = float_lane(&floats);
        let sel = selection(&mask[..n], dense);
        let idx = sel_indices(sel.as_deref(), n);

        let live_ints: Vec<i64> = idx.iter().filter_map(|&i| ints[i]).collect();
        prop_assert_eq!(
            count_nonnull(iv.as_ref(), sel.as_deref(), n),
            live_ints.len() as i64
        );
        prop_assert_eq!(
            min_max_int(&id, iv.as_ref(), sel.as_deref(), n, false),
            live_ints.iter().copied().min()
        );
        prop_assert_eq!(
            min_max_int(&id, iv.as_ref(), sel.as_deref(), n, true),
            live_ints.iter().copied().max()
        );
        let (avg_sum, avg_n) = avg_num(NumSrc::I(&id), iv.as_ref(), sel.as_deref(), n);
        let mut want_sum = 0f64;
        for &v in &live_ints { want_sum += v as f64; }
        prop_assert_eq!(avg_n, live_ints.len() as i64);
        prop_assert_eq!(avg_sum.to_bits(), want_sum.to_bits());

        let live_floats: Vec<f64> = idx.iter().filter_map(|&i| floats[i]).collect();
        let mut fsum: Option<f64> = None;
        for &v in &live_floats { fsum = Some(fsum.unwrap_or(0.0) + v); }
        let got = sum_float(&fd, fv.as_ref(), sel.as_deref(), n);
        prop_assert_eq!(got.map(f64::to_bits), fsum.map(f64::to_bits));
    }

    #[test]
    fn bool_to_sel_matches_pred_semantics(
        a in arb_int_col(),
        b in arb_int_col(),
        shape in (0usize..CAP, prop::collection::vec(any::<bool>(), CAP..CAP + 1), any::<bool>()),
    ) {
        // Derive a boolean column from a comparison, then check the
        // filter keeps exactly the rows where the scalar predicate says
        // true (NULL → dropped, as eval_pred maps NULL to false).
        let (n, mask, dense) = shape;
        let a = int_cells(&a, n);
        let b = int_cells(&b, n);
        let (ad, av) = int_lane(&a);
        let (bd, bv) = int_lane(&b);
        let sel = selection(&mask[..n], dense);
        let (vals, validity) = cmp_num(
            CmpOp::Lt, NumSrc::I(&ad), av.as_ref(), NumSrc::I(&bd), bv.as_ref(),
            sel.as_deref(), n,
        );
        let got = bool_to_sel(&vals, validity.as_ref(), sel.as_deref(), n);
        let want: Vec<u32> = sel_indices(sel.as_deref(), n)
            .into_iter()
            .filter(|&i| matches!(
                scalar_binary(BinOp::Lt, int_value(a[i]), int_value(b[i])),
                Ok(Value::Bool(true))
            ))
            .map(|i| i as u32)
            .collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn hash_join_matches_nested_loop(
        build in (prop::collection::vec(-8i64..8, CAP..CAP + 1), prop::collection::vec(any::<bool>(), CAP..CAP + 1)),
        probe in (prop::collection::vec(-8i64..8, CAP..CAP + 1), prop::collection::vec(any::<bool>(), CAP..CAP + 1)),
        shape in (0usize..CAP, 0usize..CAP, any::<bool>(), any::<bool>()),
        masks in (prop::collection::vec(any::<bool>(), CAP..CAP + 1), prop::collection::vec(any::<bool>(), CAP..CAP + 1)),
    ) {
        let (bn, pn, bdense, pdense) = shape;
        let build = int_cells(&build, bn);
        let probe = int_cells(&probe, pn);
        let (bd, bv) = int_lane(&build);
        let (pd, pv) = int_lane(&probe);
        let bsel = selection(&masks.0[..bn], bdense);
        let psel = selection(&masks.1[..pn], pdense);
        let got = hash_join_i64(
            &bd, bv.as_ref(), bsel.as_deref(),
            &pd, pv.as_ref(), psel.as_deref(),
        );
        // Reference: the row interpreter's nested loop with the probe
        // side outer — probe-major, build matches in selection order,
        // NULL keys never matching.
        let mut want = Vec::new();
        for p in sel_indices(psel.as_deref(), pn) {
            let Some(pk) = probe[p] else { continue };
            for b in sel_indices(bsel.as_deref(), bn) {
                if build[b] == Some(pk) {
                    want.push((p as u32, b as u32));
                }
            }
        }
        prop_assert_eq!(got, want);
    }
}

// ---------------------------------------------------------------------------
// End-to-end: whole queries agree between the row interpreter and the
// vectorized executor.
// ---------------------------------------------------------------------------

/// Wraps [`DirectContext`] to pin the executor path regardless of the
/// process-wide `SSTORE_EXEC` setting.
struct PathCtx<'a> {
    inner: DirectContext<'a>,
    path: ExecPath,
}

impl ExecContext for PathCtx<'_> {
    fn db(&self) -> &Database {
        self.inner.db()
    }
    fn now(&self) -> i64 {
        self.inner.now()
    }
    fn check_read(&self, table: TableId) -> Result<()> {
        self.inner.check_read(table)
    }
    fn check_write(&self, table: TableId) -> Result<()> {
        self.inner.check_write(table)
    }
    fn insert_visible(&mut self, table: TableId, row: Row) -> Result<RowId> {
        self.inner.insert_visible(table, row)
    }
    fn delete_row(&mut self, table: TableId, rid: RowId) -> Result<Row> {
        self.inner.delete_row(table, rid)
    }
    fn update_row(&mut self, table: TableId, rid: RowId, new_row: Row) -> Result<()> {
        self.inner.update_row(table, rid, new_row)
    }
    fn exec_path(&self) -> ExecPath {
        self.path
    }
}

fn query_with(db: &mut Database, sql: &str, path: ExecPath) -> Result<QueryResult> {
    let mut ctx = PathCtx {
        inner: DirectContext { db, now_micros: 7 },
        path,
    };
    run_sql(sql, &mut ctx, &[])
}

/// Queries stressing every vectorized operator: scan+filter, projection
/// arithmetic, aggregates, text predicates, joins (both the i64 fast
/// path and the generic keyed path), sort/limit/distinct, grouped
/// aggregation, and IN/BETWEEN fallbacks that mix cellwise evaluation
/// into batches.
const E2E_QUERIES: &[&str] = &[
    "SELECT COUNT(*), COUNT(a), SUM(a), AVG(a), MIN(a), MAX(a) FROM t",
    "SELECT COUNT(*), SUM(f), MIN(f), MAX(f) FROM t WHERE a >= 0",
    "SELECT id, a + 1, a * 2, f * 0.5 FROM t WHERE a <> 3",
    "SELECT id, a FROM t WHERE a IS NULL",
    "SELECT s FROM t WHERE s >= 'f'",
    "SELECT id FROM t WHERE a IN (1, 2, 3) OR f > 10.0",
    "SELECT id FROM t WHERE a BETWEEN 0 AND 50 AND f < 100.0",
    "SELECT id, a FROM t WHERE a > 0 AND f > 0.0 ORDER BY a, id LIMIT 5",
    "SELECT DISTINCT a FROM t WHERE a IS NOT NULL",
    "SELECT t.id, d.name FROM t JOIN d ON t.k = d.k",
    "SELECT t.id, d.name FROM t JOIN d ON t.k = d.k AND t.a > 1",
    "SELECT COUNT(*) FROM t JOIN d ON t.s = d.name",
    "SELECT a, COUNT(*), SUM(f) FROM t GROUP BY a",
];

type E2eRow = (i64, Option<i64>, f64, String);

fn seed_db(rows: &[E2eRow]) -> Database {
    let mut db = Database::new();
    db.create_table(
        "t",
        Schema::new(
            vec![
                SchemaColumn::new("id", DataType::Int),
                SchemaColumn::nullable("a", DataType::Int),
                SchemaColumn::new("f", DataType::Float),
                SchemaColumn::new("s", DataType::Text),
                SchemaColumn::new("k", DataType::Int),
            ],
            &["id"],
        )
        .unwrap(),
    )
    .unwrap();
    db.create_table(
        "d",
        Schema::new(
            vec![
                SchemaColumn::new("k", DataType::Int),
                SchemaColumn::new("name", DataType::Text),
            ],
            &["k"],
        )
        .unwrap(),
    )
    .unwrap();
    let mut ctx = DirectContext {
        db: &mut db,
        now_micros: 0,
    };
    for (id, a, f, s) in rows {
        run_sql(
            "INSERT INTO t VALUES (?, ?, ?, ?, ?)",
            &mut ctx,
            &[
                Value::Int(*id),
                a.map(Value::Int).unwrap_or(Value::Null),
                Value::Float(*f),
                Value::Text(s.clone()),
                Value::Int(id.rem_euclid(6)),
            ],
        )
        .unwrap();
    }
    for k in 0..4 {
        run_sql(
            "INSERT INTO d VALUES (?, ?)",
            &mut ctx,
            &[Value::Int(k), Value::Text(format!("dim{k}"))],
        )
        .unwrap();
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn queries_agree_between_row_and_vector_paths(
        ids in prop::collection::vec(0i64..1000, 0..40),
        avals in prop::collection::vec(-5i64..100, 40..41),
        anulls in prop::collection::vec(any::<bool>(), 40..41),
        extra in (prop::collection::vec(any::<f64>(), 40..41), prop::collection::vec(".{0,6}", 40..41)),
    ) {
        // Dedup primary keys; keep first occurrence.
        let mut seen = std::collections::BTreeSet::new();
        let rows: Vec<E2eRow> = ids
            .iter()
            .enumerate()
            .filter(|(_, id)| seen.insert(**id))
            .map(|(i, id)| {
                let a = (!anulls[i]).then_some(avals[i]);
                (*id, a, extra.0[i], extra.1[i].clone())
            })
            .collect();
        let mut db = seed_db(&rows);
        for sql in E2E_QUERIES {
            let row = query_with(&mut db, sql, ExecPath::Row);
            let vec = query_with(&mut db, sql, ExecPath::Vector);
            match (row, vec) {
                (Ok(r), Ok(v)) => prop_assert_eq!(
                    r.rows, v.rows, "row/vector results differ for `{}`", sql
                ),
                (Err(re), Err(ve)) => prop_assert_eq!(
                    re.to_string(), ve.to_string(),
                    "row/vector errors differ for `{}`", sql
                ),
                (r, v) => prop_assert!(
                    false,
                    "row/vector outcome differs for `{}`: row={:?} vector={:?}",
                    sql, r.map(|q| q.rows.len()), v.map(|q| q.rows.len())
                ),
            }
        }
    }
}
