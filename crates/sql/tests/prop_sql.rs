//! Property tests for the SQL layer: the lexer/parser never panic, and
//! expression evaluation matches a reference interpreter on generated
//! arithmetic/boolean trees.

use proptest::prelude::*;
use sstore_common::Value;
use sstore_sql::exec::{run_sql, DirectContext};
use sstore_sql::lexer::tokenize;
use sstore_sql::parse;
use sstore_storage::Database;

// ---------------------------------------------------------------------------
// Robustness: arbitrary input must never panic the front end.
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn lexer_never_panics(s in ".{0,200}") {
        let _ = tokenize(&s);
    }

    #[test]
    fn parser_never_panics(s in ".{0,200}") {
        let _ = parse(&s);
    }

    #[test]
    fn parser_never_panics_on_sqlish_soup(
        parts in prop::collection::vec(
            prop_oneof![
                Just("SELECT"), Just("FROM"), Just("WHERE"), Just("GROUP"),
                Just("BY"), Just("ORDER"), Just("LIMIT"), Just("INSERT"),
                Just("INTO"), Just("VALUES"), Just("UPDATE"), Just("SET"),
                Just("DELETE"), Just("JOIN"), Just("ON"), Just("AND"),
                Just("OR"), Just("NOT"), Just("NULL"), Just("("), Just(")"),
                Just(","), Just("*"), Just("="), Just("t"), Just("x"),
                Just("1"), Just("2.5"), Just("'s'"), Just("?"),
            ],
            0..30,
        )
    ) {
        let sql = parts.join(" ");
        let _ = parse(&sql);
    }
}

// ---------------------------------------------------------------------------
// Semantics: generated integer expressions evaluate like a reference
// interpreter (with identical error cases).
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum IExpr {
    Lit(i32),
    Add(Box<IExpr>, Box<IExpr>),
    Sub(Box<IExpr>, Box<IExpr>),
    Mul(Box<IExpr>, Box<IExpr>),
    Div(Box<IExpr>, Box<IExpr>),
    Neg(Box<IExpr>),
}

impl IExpr {
    fn to_sql(&self) -> String {
        match self {
            IExpr::Lit(n) => {
                if *n < 0 {
                    format!("({n})")
                } else {
                    n.to_string()
                }
            }
            IExpr::Add(a, b) => format!("({} + {})", a.to_sql(), b.to_sql()),
            IExpr::Sub(a, b) => format!("({} - {})", a.to_sql(), b.to_sql()),
            IExpr::Mul(a, b) => format!("({} * {})", a.to_sql(), b.to_sql()),
            IExpr::Div(a, b) => format!("({} / {})", a.to_sql(), b.to_sql()),
            IExpr::Neg(a) => format!("(-{})", a.to_sql()),
        }
    }

    /// Reference semantics: i64 checked arithmetic, error on div-by-zero
    /// and overflow (mirroring the engine's rules).
    fn eval(&self) -> Option<i64> {
        Some(match self {
            IExpr::Lit(n) => *n as i64,
            IExpr::Add(a, b) => a.eval()?.checked_add(b.eval()?)?,
            IExpr::Sub(a, b) => a.eval()?.checked_sub(b.eval()?)?,
            IExpr::Mul(a, b) => a.eval()?.checked_mul(b.eval()?)?,
            IExpr::Div(a, b) => {
                let d = b.eval()?;
                if d == 0 {
                    return None;
                }
                a.eval()?.checked_div(d)?
            }
            IExpr::Neg(a) => a.eval()?.checked_neg()?,
        })
    }
}

fn arb_iexpr() -> impl Strategy<Value = IExpr> {
    let leaf = (-1000i32..1000).prop_map(IExpr::Lit);
    leaf.prop_recursive(4, 32, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| IExpr::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| IExpr::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| IExpr::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| IExpr::Div(Box::new(a), Box::new(b))),
            inner.prop_map(|a| IExpr::Neg(Box::new(a))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn expression_eval_matches_reference(e in arb_iexpr()) {
        let mut db = Database::new();
        let mut ctx = DirectContext { db: &mut db, now_micros: 0 };
        let sql = format!("SELECT {}", e.to_sql());
        let engine_result = run_sql(&sql, &mut ctx, &[]);
        match e.eval() {
            Some(expected) => {
                let r = engine_result.unwrap();
                prop_assert_eq!(r.rows[0][0].clone(), Value::Int(expected));
            }
            None => {
                prop_assert!(
                    engine_result.is_err(),
                    "reference errored but engine returned {:?}",
                    engine_result
                );
            }
        }
    }

    #[test]
    fn comparison_trichotomy_through_sql(a in -100i64..100, b in -100i64..100) {
        let mut db = Database::new();
        let mut ctx = DirectContext { db: &mut db, now_micros: 0 };
        let r = run_sql(
            &format!("SELECT {a} < {b}, {a} = {b}, {a} > {b}"),
            &mut ctx,
            &[],
        )
        .unwrap();
        let truths: Vec<bool> = r.rows[0].iter().map(|v| v.as_bool().unwrap()).collect();
        prop_assert_eq!(truths.iter().filter(|&&t| t).count(), 1);
        prop_assert_eq!(truths[0], a < b);
        prop_assert_eq!(truths[1], a == b);
        prop_assert_eq!(truths[2], a > b);
    }
}

// ---------------------------------------------------------------------------
// DML round-trip: inserted rows come back unchanged through scan + filter.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn insert_select_round_trip(rows in prop::collection::btree_map(0i64..1000, any::<i64>(), 0..50)) {
        let mut db = Database::new();
        {
            let mut ctx = DirectContext { db: &mut db, now_micros: 0 };
            run_sql(
                "CREATE TABLE t (id INT NOT NULL, v INT NOT NULL, PRIMARY KEY (id))",
                &mut ctx,
                &[],
            )
            .err(); // DDL rejected through executor
        }
        use sstore_common::{Column, DataType, Schema};
        let schema = Schema::new(
            vec![Column::new("id", DataType::Int), Column::new("v", DataType::Int)],
            &["id"],
        )
        .unwrap();
        db.create_table("t", schema).unwrap();
        let mut ctx = DirectContext { db: &mut db, now_micros: 0 };
        for (&k, &v) in &rows {
            run_sql(
                "INSERT INTO t VALUES (?, ?)",
                &mut ctx,
                &[Value::Int(k), Value::Int(v)],
            )
            .unwrap();
        }
        let r = run_sql("SELECT id, v FROM t ORDER BY id", &mut ctx, &[]).unwrap();
        prop_assert_eq!(r.rows.len(), rows.len());
        for (row, (&k, &v)) in r.rows.iter().zip(rows.iter()) {
            prop_assert_eq!(row[0].clone(), Value::Int(k));
            prop_assert_eq!(row[1].clone(), Value::Int(v));
        }
    }
}
