//! Deterministic city simulator.
//!
//! Stands in for the paper's live demo: virtual riders check bikes out,
//! ride straight-line trips with 1 Hz GPS reporting, accept nearby
//! discounts, and return bikes — while one in a while a "thief" moves a
//! bike at truck speed to exercise the anomaly detector. Everything is
//! seeded and clock-driven, so runs are exactly reproducible (a
//! prerequisite for the recovery experiments).

use crate::schema::{BikeConfig, SEC};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sstore_common::{Result, Value};
use sstore_core::SStore;

/// Aggregate counts from a simulation run (experiment E4's row).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimReport {
    /// Simulated seconds.
    pub ticks: u64,
    /// Successful checkouts.
    pub checkouts: u64,
    /// Checkouts aborted (no bike / rider busy).
    pub checkout_aborts: u64,
    /// Successful returns.
    pub returns: u64,
    /// Returns aborted (station full) — trip diverts.
    pub return_aborts: u64,
    /// GPS tuples ingested.
    pub gps_pings: u64,
    /// Stolen-bike alerts raised.
    pub alerts: u64,
    /// Discount acceptances committed.
    pub accepts: u64,
    /// Acceptance attempts that lost the race / arrived late.
    pub accept_conflicts: u64,
    /// Cents charged across completed rides.
    pub total_charged: i64,
}

#[derive(Debug, Clone)]
struct Trip {
    rider: i64,
    bike: i64,
    x: f64,
    y: f64,
    dest_station: i64,
    dest_x: f64,
    dest_y: f64,
    speed: f64,
    stolen: bool,
}

/// The simulator (see module docs).
#[derive(Debug)]
pub struct CitySim {
    cfg: BikeConfig,
    rng: StdRng,
    trips: Vec<Trip>,
    stations: Vec<(f64, f64)>,
    report: SimReport,
    /// Probability an idle rider starts a trip each tick.
    pub p_start: f64,
    /// Probability a trip is a theft (truck speed, never returned).
    pub p_theft: f64,
}

impl CitySim {
    /// Build a simulator over an installed BikeShare database.
    pub fn new(db: &mut SStore, cfg: BikeConfig, seed: u64) -> Result<CitySim> {
        let q = db.query(
            "SELECT station_id, x, y FROM stations ORDER BY station_id",
            &[],
        )?;
        let stations = q
            .rows
            .iter()
            .map(|r| Ok((r[1].as_float()?, r[2].as_float()?)))
            .collect::<Result<Vec<_>>>()?;
        Ok(CitySim {
            cfg,
            rng: StdRng::seed_from_u64(seed),
            trips: Vec::new(),
            stations,
            report: SimReport::default(),
            p_start: 0.1,
            p_theft: 0.01,
        })
    }

    /// The report so far.
    pub fn report(&self) -> &SimReport {
        &self.report
    }

    /// Run `ticks` simulated seconds.
    pub fn run(&mut self, db: &mut SStore, ticks: u64) -> Result<SimReport> {
        for _ in 0..ticks {
            self.step(db)?;
        }
        Ok(self.report.clone())
    }

    /// One simulated second.
    pub fn step(&mut self, db: &mut SStore) -> Result<()> {
        db.advance_clock(SEC);
        self.report.ticks += 1;

        self.maybe_start_trips(db)?;
        self.move_and_ping(db)?;
        self.maybe_accept_discounts(db)?;
        self.finish_arrivals(db)?;

        self.report.alerts += db.drain_sink("s_alerts")?.len() as u64;
        Ok(())
    }

    fn riding(&self, rider: i64) -> bool {
        self.trips.iter().any(|t| t.rider == rider)
    }

    fn maybe_start_trips(&mut self, db: &mut SStore) -> Result<()> {
        for rider in 0..self.cfg.riders {
            if self.riding(rider) || !self.rng.random_bool(self.p_start) {
                continue;
            }
            let from = self.rng.random_range(0..self.cfg.stations);
            let out = db.invoke("checkout", vec![vec![Value::Int(rider), Value::Int(from)]])?;
            if !out.is_committed() {
                self.report.checkout_aborts += 1;
                continue;
            }
            self.report.checkouts += 1;
            let bike = out.response.expect("checkout responds").rows[0][1].as_int()?;
            let mut dest = self.rng.random_range(0..self.cfg.stations);
            if dest == from {
                dest = (dest + 1) % self.cfg.stations;
            }
            let stolen = self.rng.random_bool(self.p_theft);
            let (sx, sy) = self.stations[from as usize];
            let (dx, dy) = self.stations[dest as usize];
            self.trips.push(Trip {
                rider,
                bike,
                x: sx,
                y: sy,
                dest_station: dest,
                dest_x: dx,
                dest_y: dy,
                speed: if stolen {
                    30.0
                } else {
                    4.0 + self.rng.random::<f64>() * 4.0
                },
                stolen,
            });
        }
        Ok(())
    }

    fn move_and_ping(&mut self, db: &mut SStore) -> Result<()> {
        let mut pings = Vec::new();
        for t in &mut self.trips {
            let (vx, vy) = (t.dest_x - t.x, t.dest_y - t.y);
            let dist = (vx * vx + vy * vy).sqrt();
            if dist > 0.0 {
                let step = t.speed.min(dist);
                t.x += vx / dist * step;
                t.y += vy / dist * step;
            }
            pings.push(vec![
                Value::Int(t.bike),
                Value::Float(t.x),
                Value::Float(t.y),
            ]);
        }
        if !pings.is_empty() {
            self.report.gps_pings += pings.len() as u64;
            db.submit_batch("gps_ingest", pings)?;
        }
        Ok(())
    }

    fn maybe_accept_discounts(&mut self, db: &mut SStore) -> Result<()> {
        // Riders close to their destination look for an offer there.
        let near: Vec<(i64, i64)> = self
            .trips
            .iter()
            .filter(|t| {
                let d = ((t.dest_x - t.x).powi(2) + (t.dest_y - t.y).powi(2)).sqrt();
                !t.stolen && d < self.cfg.discount_radius
            })
            .map(|t| (t.rider, t.dest_station))
            .collect();
        for (rider, station) in near {
            if !self.rng.random_bool(0.3) {
                continue;
            }
            let offers = db.query(
                "SELECT discount_id FROM discounts \
                 WHERE station_id = ? AND status = 0 ORDER BY discount_id LIMIT 1",
                &[Value::Int(station)],
            )?;
            if let Some(row) = offers.rows.first() {
                let did = row[0].clone();
                let out = db.invoke("accept_discount", vec![vec![Value::Int(rider), did]])?;
                if out.is_committed() {
                    self.report.accepts += 1;
                } else {
                    self.report.accept_conflicts += 1;
                }
            }
        }
        Ok(())
    }

    fn finish_arrivals(&mut self, db: &mut SStore) -> Result<()> {
        let mut still_riding = Vec::with_capacity(self.trips.len());
        for t in self.trips.drain(..) {
            let d = ((t.dest_x - t.x).powi(2) + (t.dest_y - t.y).powi(2)).sqrt();
            if t.stolen || d > 1.0 {
                still_riding.push(t);
                continue;
            }
            let out = db.invoke(
                "return_bike",
                vec![vec![Value::Int(t.rider), Value::Int(t.dest_station)]],
            )?;
            if out.is_committed() {
                self.report.returns += 1;
                self.report.total_charged +=
                    out.response.expect("return responds").rows[0][1].as_int()?;
            } else {
                // Station full: divert to the next station over.
                self.report.return_aborts += 1;
                let mut t = t;
                t.dest_station = (t.dest_station + 1) % self.cfg.stations;
                let (dx, dy) = self.stations[t.dest_station as usize];
                t.dest_x = dx;
                t.dest_y = dy;
                still_riding.push(t);
            }
        }
        self.trips = still_riding;
        Ok(())
    }
}

/// Check the invariants the demo's GUIs rely on. Panics with a
/// description on violation (used by tests and the `figures` harness).
pub fn verify_invariants(db: &mut SStore, cfg: &BikeConfig) -> Result<()> {
    let docked = db
        .query("SELECT COUNT(*) FROM bikes WHERE status = 0", &[])?
        .scalar_i64()?;
    let riding = db
        .query("SELECT COUNT(*) FROM bikes WHERE status = 1", &[])?
        .scalar_i64()?;
    assert_eq!(docked + riding, cfg.bikes, "bikes lost or duplicated");

    let available = db
        .query("SELECT SUM(bikes_available) FROM stations", &[])?
        .scalar_i64()?;
    assert_eq!(available, docked, "station counters out of sync with bikes");

    let overfull = db
        .query(
            "SELECT COUNT(*) FROM stations WHERE bikes_available > docks OR bikes_available < 0",
            &[],
        )?
        .scalar_i64()?;
    assert_eq!(overfull, 0, "station over/under-filled");

    // Every accepted/redeemed discount names a rider; available ones don't.
    let bad_claims = db
        .query(
            "SELECT COUNT(*) FROM discounts WHERE status = 1 AND rider_id IS NULL",
            &[],
        )?
        .scalar_i64()?;
    assert_eq!(bad_claims, 0, "accepted discount without a rider");
    let bad_avail = db
        .query(
            "SELECT COUNT(*) FROM discounts WHERE status = 0 AND rider_id IS NOT NULL",
            &[],
        )?
        .scalar_i64()?;
    assert_eq!(bad_avail, 0, "available discount bound to a rider");

    // No rider has two open rides.
    let riders_open = db
        .query(
            "SELECT rider_id, COUNT(*) FROM rides WHERE end_ts IS NULL \
             GROUP BY rider_id HAVING COUNT(*) > 1",
            &[],
        )?
        .rows
        .len();
    assert_eq!(riders_open, 0, "rider with two open rides");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::procs::install;
    use sstore_core::SStoreBuilder;

    fn city(seed: u64) -> (SStore, CitySim) {
        let mut db = SStoreBuilder::new().build().unwrap();
        let cfg = BikeConfig::tiny();
        install(&mut db, &cfg).unwrap();
        let sim = CitySim::new(&mut db, cfg, seed).unwrap();
        (db, sim)
    }

    #[test]
    fn simulation_is_deterministic() {
        let (mut db1, mut sim1) = city(9);
        let r1 = sim1.run(&mut db1, 120).unwrap();
        let (mut db2, mut sim2) = city(9);
        let r2 = sim2.run(&mut db2, 120).unwrap();
        assert_eq!(r1, r2);
        assert!(r1.checkouts > 0, "no trips started: {r1:?}");
        assert!(r1.gps_pings > 0);
    }

    #[test]
    fn invariants_hold_throughout() {
        let (mut db, mut sim) = city(4);
        for _ in 0..60 {
            sim.step(&mut db).unwrap();
            verify_invariants(&mut db, &BikeConfig::tiny()).unwrap();
        }
    }

    #[test]
    fn thefts_raise_alerts() {
        let (mut db, mut sim) = city(2);
        sim.p_theft = 0.5;
        sim.p_start = 0.5;
        let r = sim.run(&mut db, 60).unwrap();
        assert!(r.alerts > 0, "expected stolen-bike alerts: {r:?}");
    }

    #[test]
    fn completed_rides_are_charged() {
        let (mut db, mut sim) = city(12);
        sim.p_theft = 0.0;
        sim.p_start = 0.4;
        let r = sim.run(&mut db, 600).unwrap();
        assert!(r.returns > 0, "no completed trips: {r:?}");
        assert!(r.total_charged >= r.returns as i64 * BikeConfig::tiny().price_per_min);
        // The engine agrees with the client-side tally.
        let charged = db
            .query(
                "SELECT SUM(charged) FROM rides WHERE end_ts IS NOT NULL",
                &[],
            )
            .unwrap()
            .scalar_i64()
            .unwrap();
        assert_eq!(charged, r.total_charged);
    }

    #[test]
    fn mixed_workload_runs_in_one_system() {
        // The §3.2 headline: OLTP + streaming + hybrid in one engine.
        let (mut db, mut sim) = city(31);
        sim.p_start = 0.3;
        let r = sim.run(&mut db, 300).unwrap();
        assert!(r.checkouts > 10);
        assert!(r.gps_pings > 100);
        // Streaming side effects visible transactionally:
        let moved = db
            .query("SELECT COUNT(*) FROM rides WHERE distance > 0.0", &[])
            .unwrap()
            .scalar_i64()
            .unwrap();
        assert!(moved > 0);
        verify_invariants(&mut db, &BikeConfig::tiny()).unwrap();
    }
}
