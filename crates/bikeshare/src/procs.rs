//! BikeShare stored procedures: three OLTP request handlers and the
//! two-stage streaming workflow.

use crate::schema::{discount_status, install_schema, BikeConfig, SEC};
use sstore_common::{Result, Value};
use sstore_core::{ExecMode, ProcSpec, QueryResult, SStore};

/// Install the complete BikeShare application (schema + procedures).
///
/// OLTP procedures (`checkout`, `return_bike`, `accept_discount`) are
/// invoked directly by clients in either mode. The streaming workflow
/// (`gps_ingest` → `discount_calc`) is stream-wired in S-Store mode; in
/// H-Store mode the client must drive `discount_calc` itself.
pub fn install(db: &mut SStore, cfg: &BikeConfig) -> Result<()> {
    install_schema(db, cfg)?;
    let wired = db.mode() == ExecMode::SStore;
    register_checkout(db)?;
    register_return(db, cfg)?;
    register_accept_discount(db, cfg)?;
    register_gps_ingest(db, cfg, wired)?;
    register_discount_calc(db, cfg, wired)?;
    Ok(())
}

fn respond_row(ctx: &mut sstore_core::ProcContext<'_>, columns: &[&str], row: Vec<Value>) {
    ctx.respond(QueryResult {
        columns: columns.iter().map(|c| c.to_string()).collect(),
        rows: vec![row.into()],
        rows_affected: 0,
    });
}

/// OLTP: `checkout(rider_id, station_id)` — rent a bike.
fn register_checkout(db: &mut SStore) -> Result<()> {
    db.register(
        ProcSpec::new("checkout", |ctx| {
            let row = ctx
                .input()
                .rows
                .first()
                .cloned()
                .ok_or_else(|| ctx.abort("checkout requires (rider_id, station_id)"))?;
            let rider = row[0].clone();
            let station = row[1].clone();
            if !ctx
                .exec("active_ride", std::slice::from_ref(&rider))?
                .rows
                .is_empty()
            {
                return Err(ctx.abort("rider already has a bike"));
            }
            let bike_q = ctx.exec("pick_bike", std::slice::from_ref(&station))?;
            let Some(bike) = bike_q.rows.first().map(|r| r[0].clone()) else {
                return Err(ctx.abort("no bikes available at station"));
            };
            ctx.exec("bump_ride", &[])?;
            let ride_id = ctx.exec("get_ride", &[])?.scalar_i64()?;
            ctx.exec(
                "new_ride",
                &[
                    Value::Int(ride_id),
                    rider.clone(),
                    bike.clone(),
                    station.clone(),
                ],
            )?;
            ctx.exec("bike_out", &[rider, bike.clone()])?;
            ctx.exec("station_minus", &[station])?;
            respond_row(
                ctx,
                &["ride_id", "bike_id"],
                vec![Value::Int(ride_id), bike],
            );
            Ok(())
        })
        .stmt(
            "active_ride",
            "SELECT ride_id FROM rides WHERE rider_id = ? AND end_ts IS NULL",
        )
        .stmt(
            "pick_bike",
            "SELECT bike_id FROM bikes WHERE station_id = ? AND status = 0 \
             ORDER BY bike_id LIMIT 1",
        )
        .stmt(
            "bump_ride",
            "UPDATE counters SET next_ride = next_ride + 1 WHERE k = 0",
        )
        .stmt("get_ride", "SELECT next_ride FROM counters WHERE k = 0")
        .stmt(
            "new_ride",
            "INSERT INTO rides VALUES (?, ?, ?, ?, NULL, NOW(), NULL, 0.0, 0.0, NULL)",
        )
        .stmt(
            "bike_out",
            "UPDATE bikes SET status = 1, station_id = NULL, rider_id = ?, last_ts = NOW() \
             WHERE bike_id = ?",
        )
        .stmt(
            "station_minus",
            "UPDATE stations SET bikes_available = bikes_available - 1 WHERE station_id = ?",
        ),
    )?;
    Ok(())
}

/// OLTP: `return_bike(rider_id, station_id)` — end the ride, charge the
/// card, redeem an accepted discount if one applies.
fn register_return(db: &mut SStore, cfg: &BikeConfig) -> Result<()> {
    let price = cfg.price_per_min;
    db.register(
        ProcSpec::new("return_bike", move |ctx| {
            let row = ctx
                .input()
                .rows
                .first()
                .cloned()
                .ok_or_else(|| ctx.abort("return_bike requires (rider_id, station_id)"))?;
            let rider = row[0].clone();
            let station = row[1].clone();
            let ride_q = ctx.exec("active_ride", std::slice::from_ref(&rider))?;
            let Some(ride) = ride_q.rows.first().cloned() else {
                return Err(ctx.abort("no active ride for rider"));
            };
            let (ride_id, bike, start_ts) = (ride[0].clone(), ride[1].clone(), ride[2].as_int()?);
            let cap = ctx.exec("station_room", std::slice::from_ref(&station))?;
            if cap.rows.is_empty() {
                return Err(ctx.abort("no free dock at station"));
            }
            // Charge per started minute.
            let minutes = ((ctx.now() - start_ts) + 60 * SEC - 1) / (60 * SEC);
            let mut charge = minutes.max(1) * price;
            // Redeem an accepted, unexpired discount for this station.
            let d = ctx.exec(
                "my_discount",
                &[rider.clone(), station.clone(), Value::Timestamp(ctx.now())],
            )?;
            let mut discount_applied = Value::Null;
            if let Some(drow) = d.rows.first() {
                let (did, pct) = (drow[0].clone(), drow[1].as_int()?);
                charge = charge * (100 - pct) / 100;
                ctx.exec("redeem", std::slice::from_ref(&did))?;
                discount_applied = did;
            }
            let coords = ctx.exec("station_coords", std::slice::from_ref(&station))?;
            let (sx, sy) = (coords.rows[0][0].clone(), coords.rows[0][1].clone());
            ctx.exec(
                "end_ride",
                &[station.clone(), Value::Int(charge), ride_id.clone()],
            )?;
            ctx.exec("dock_bike", &[station.clone(), sx, sy, bike])?;
            ctx.exec("station_plus", &[station])?;
            respond_row(
                ctx,
                &["ride_id", "charged", "discount_id"],
                vec![ride_id, Value::Int(charge), discount_applied],
            );
            Ok(())
        })
        .stmt(
            "active_ride",
            "SELECT ride_id, bike_id, start_ts FROM rides \
             WHERE rider_id = ? AND end_ts IS NULL",
        )
        .stmt(
            "station_room",
            "SELECT station_id FROM stations \
             WHERE station_id = ? AND bikes_available < docks",
        )
        .stmt(
            "my_discount",
            "SELECT discount_id, pct FROM discounts \
             WHERE rider_id = ? AND station_id = ? AND status = 1 AND expires_ts > ? \
             ORDER BY discount_id LIMIT 1",
        )
        .stmt(
            "redeem",
            "UPDATE discounts SET status = 3 WHERE discount_id = ?",
        )
        .stmt(
            "station_coords",
            "SELECT x, y FROM stations WHERE station_id = ?",
        )
        .stmt(
            "end_ride",
            "UPDATE rides SET end_station = ?, end_ts = NOW(), charged = ? WHERE ride_id = ?",
        )
        .stmt(
            "dock_bike",
            "UPDATE bikes SET status = 0, station_id = ?, rider_id = NULL, x = ?, y = ?, \
             last_ts = NOW() WHERE bike_id = ?",
        )
        .stmt(
            "station_plus",
            "UPDATE stations SET bikes_available = bikes_available + 1 WHERE station_id = ?",
        ),
    )?;
    Ok(())
}

/// OLTP: `accept_discount(rider_id, discount_id)` — claim an offer.
/// Exclusive: the first acceptance wins; later ones abort. This is the
/// §3.2 operation that *requires* transactional processing.
fn register_accept_discount(db: &mut SStore, cfg: &BikeConfig) -> Result<()> {
    let expiry = cfg.discount_expiry;
    db.register(
        ProcSpec::new("accept_discount", move |ctx| {
            let row = ctx
                .input()
                .rows
                .first()
                .cloned()
                .ok_or_else(|| ctx.abort("accept_discount requires (rider_id, discount_id)"))?;
            let rider = row[0].clone();
            let did = row[1].clone();
            let q = ctx.exec("get_discount", std::slice::from_ref(&did))?;
            let Some(drow) = q.rows.first() else {
                return Err(ctx.abort("no such discount"));
            };
            let status = drow[0].as_int()?;
            let expires = drow[1].as_int()?;
            if status != discount_status::AVAILABLE || expires <= ctx.now() {
                return Err(ctx.abort("discount no longer available"));
            }
            ctx.exec(
                "claim",
                &[rider, Value::Timestamp(ctx.now() + expiry), did.clone()],
            )?;
            respond_row(ctx, &["discount_id"], vec![did]);
            Ok(())
        })
        .stmt(
            "get_discount",
            "SELECT status, expires_ts FROM discounts WHERE discount_id = ?",
        )
        .stmt(
            "claim",
            "UPDATE discounts SET status = 1, rider_id = ?, expires_ts = ? \
             WHERE discount_id = ?",
        ),
    )?;
    Ok(())
}

/// Streaming BSP: `gps_ingest` — per-second positions from every riding
/// bike: update position, accumulate ride stats, raise stolen-bike alerts,
/// forward rider movements downstream.
fn register_gps_ingest(db: &mut SStore, cfg: &BikeConfig, wired: bool) -> Result<()> {
    let alert_speed = cfg.alert_speed;
    let mut spec = ProcSpec::new("gps_ingest", move |ctx| {
        let rows = ctx.input().rows.clone();
        for row in rows {
            let bike = row[0].clone();
            let (x, y) = (row[1].as_float()?, row[2].as_float()?);
            let q = ctx.exec("bike_state", std::slice::from_ref(&bike))?;
            let Some(b) = q.rows.first() else {
                continue; // not riding (late ping after return)
            };
            let rider = b[0].clone();
            let last_ts = b[1].as_int()?;
            let (bx, by) = (b[2].as_float()?, b[3].as_float()?);
            let dist = ((x - bx).powi(2) + (y - by).powi(2)).sqrt();
            let dt = (ctx.now() - last_ts) as f64 / SEC as f64;
            let speed = if dt > 0.0 { dist / dt } else { 0.0 };
            ctx.exec(
                "move_bike",
                &[Value::Float(x), Value::Float(y), bike.clone()],
            )?;
            let ride_q = ctx.exec("ride_of", std::slice::from_ref(&rider))?;
            if let Some(r) = ride_q.rows.first() {
                let ride_id = r[0].clone();
                let max_speed = r[1].as_float()?;
                ctx.exec(
                    "ride_stats",
                    &[
                        Value::Float(dist),
                        Value::Float(speed.max(max_speed)),
                        ride_id,
                    ],
                )?;
            }
            if speed > alert_speed {
                ctx.exec("alert", &[bike, Value::Float(speed)])?;
            }
            if ctx.output_stream.is_some() {
                ctx.emit(vec![rider, Value::Float(x), Value::Float(y)])?;
            }
        }
        Ok(())
    })
    .stmt(
        "bike_state",
        "SELECT rider_id, last_ts, x, y FROM bikes WHERE bike_id = ? AND status = 1",
    )
    .stmt(
        "move_bike",
        "UPDATE bikes SET x = ?, y = ?, last_ts = NOW() WHERE bike_id = ?",
    )
    .stmt(
        "ride_of",
        "SELECT ride_id, max_speed FROM rides WHERE rider_id = ? AND end_ts IS NULL",
    )
    .stmt(
        "ride_stats",
        "UPDATE rides SET distance = distance + ?, max_speed = ? WHERE ride_id = ?",
    )
    .stmt("alert", "INSERT INTO s_alerts VALUES (?, ?, NOW())");
    if wired {
        spec = spec.consumes("s_gps").emits("s_moves");
    }
    db.register(spec)?;
    Ok(())
}

/// Streaming ISP: `discount_calc` — expire stale offers, then create an
/// offer at every bike-starved station near a moving rider.
fn register_discount_calc(db: &mut SStore, cfg: &BikeConfig, wired: bool) -> Result<()> {
    let div = cfg.low_bike_div;
    let radius2 = cfg.discount_radius * cfg.discount_radius;
    let pct = cfg.discount_pct;
    let expiry = cfg.discount_expiry;
    let mut spec = ProcSpec::new("discount_calc", move |ctx| {
        ctx.exec("expire", &[Value::Timestamp(ctx.now())])?;
        let rows = ctx.input().rows.clone();
        for row in rows {
            let (x, y) = (row[1].clone(), row[2].clone());
            let needy = ctx.exec(
                "needy_near",
                &[
                    Value::Int(div),
                    x.clone(),
                    x.clone(),
                    y.clone(),
                    y.clone(),
                    Value::Float(radius2),
                ],
            )?;
            for st in needy.rows {
                let station = st[0].clone();
                let live = ctx
                    .exec(
                        "live_offers",
                        &[station.clone(), Value::Timestamp(ctx.now())],
                    )?
                    .scalar_i64()?;
                if live == 0 {
                    ctx.exec("bump_discount", &[])?;
                    let did = ctx.exec("get_discount_id", &[])?.scalar_i64()?;
                    ctx.exec(
                        "offer",
                        &[
                            Value::Int(did),
                            station,
                            Value::Int(pct),
                            Value::Timestamp(ctx.now() + expiry),
                        ],
                    )?;
                }
            }
        }
        Ok(())
    })
    .stmt(
        "expire",
        "UPDATE discounts SET status = 2 WHERE status <= 1 AND expires_ts <= ?",
    )
    .stmt(
        "needy_near",
        "SELECT station_id FROM stations \
         WHERE bikes_available * ? < docks \
         AND (x - ?) * (x - ?) + (y - ?) * (y - ?) <= ?",
    )
    .stmt(
        "live_offers",
        "SELECT COUNT(*) FROM discounts \
         WHERE station_id = ? AND status = 0 AND expires_ts > ?",
    )
    .stmt(
        "bump_discount",
        "UPDATE counters SET next_discount = next_discount + 1 WHERE k = 0",
    )
    .stmt(
        "get_discount_id",
        "SELECT next_discount FROM counters WHERE k = 0",
    )
    .stmt(
        "offer",
        "INSERT INTO discounts VALUES (?, ?, NULL, ?, 0, ?)",
    );
    if wired {
        spec = spec.consumes("s_moves");
    }
    db.register(spec)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sstore_core::{SStoreBuilder, TxnStatus};

    fn city() -> SStore {
        let mut db = SStoreBuilder::new().build().unwrap();
        install(&mut db, &BikeConfig::tiny()).unwrap();
        db
    }

    fn bikes_at(db: &mut SStore, station: i64) -> i64 {
        db.query(
            "SELECT bikes_available FROM stations WHERE station_id = ?",
            &[Value::Int(station)],
        )
        .unwrap()
        .scalar_i64()
        .unwrap()
    }

    #[test]
    fn checkout_and_return_conserve_bikes() {
        let mut db = city();
        let before = bikes_at(&mut db, 0);
        let out = db
            .invoke("checkout", vec![vec![Value::Int(1), Value::Int(0)]])
            .unwrap();
        assert!(out.is_committed());
        assert_eq!(bikes_at(&mut db, 0), before - 1);

        db.advance_clock(5 * 60 * SEC); // a 5-minute ride
        let ret = db
            .invoke("return_bike", vec![vec![Value::Int(1), Value::Int(1)]])
            .unwrap();
        assert!(ret.is_committed());
        let charged = ret.response.unwrap().rows[0][1].as_int().unwrap();
        assert_eq!(charged, 5 * BikeConfig::tiny().price_per_min);
        assert_eq!(bikes_at(&mut db, 1), 3); // tiny: 2 bikes/station seeded
    }

    #[test]
    fn checkout_fails_cleanly_when_empty() {
        let mut db = city();
        // Station 0 holds 2 bikes in the tiny city; drain it.
        for rider in 0..2 {
            db.invoke("checkout", vec![vec![Value::Int(rider), Value::Int(0)]])
                .unwrap();
        }
        let out = db
            .invoke("checkout", vec![vec![Value::Int(5), Value::Int(0)]])
            .unwrap();
        assert_eq!(out.status, TxnStatus::Aborted);
        // Abort left no partial state behind.
        assert_eq!(bikes_at(&mut db, 0), 0);
        let rides = db
            .query("SELECT COUNT(*) FROM rides", &[])
            .unwrap()
            .scalar_i64()
            .unwrap();
        assert_eq!(rides, 2);
    }

    #[test]
    fn double_checkout_rejected() {
        let mut db = city();
        db.invoke("checkout", vec![vec![Value::Int(1), Value::Int(0)]])
            .unwrap();
        let again = db
            .invoke("checkout", vec![vec![Value::Int(1), Value::Int(1)]])
            .unwrap();
        assert_eq!(again.status, TxnStatus::Aborted);
    }

    #[test]
    fn gps_updates_ride_stats_and_alerts() {
        let mut db = city();
        let out = db
            .invoke("checkout", vec![vec![Value::Int(1), Value::Int(0)]])
            .unwrap();
        let bike = out.response.unwrap().rows[0][1].as_int().unwrap();

        // Normal pace: 5 m/s for two ticks.
        for (i, x) in [(1, 5.0f64), (2, 10.0)] {
            db.advance_clock(SEC);
            db.submit_batch(
                "gps_ingest",
                vec![vec![Value::Int(bike), Value::Float(x), Value::Float(0.0)]],
            )
            .unwrap();
            let _ = i;
        }
        let r = db
            .query(
                "SELECT distance, max_speed FROM rides WHERE end_ts IS NULL",
                &[],
            )
            .unwrap();
        assert_eq!(r.rows[0][0].as_float().unwrap(), 10.0);
        assert_eq!(r.rows[0][1].as_float().unwrap(), 5.0);
        assert!(db.drain_sink("s_alerts").unwrap().is_empty());

        // Truck-speed jump: 100 m in one second.
        db.advance_clock(SEC);
        db.submit_batch(
            "gps_ingest",
            vec![vec![
                Value::Int(bike),
                Value::Float(110.0),
                Value::Float(0.0),
            ]],
        )
        .unwrap();
        let alerts = db.drain_sink("s_alerts").unwrap();
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0][0], Value::Int(bike));
        assert!(alerts[0][1].as_float().unwrap() > 26.8);
    }

    #[test]
    fn discounts_offered_near_starved_stations() {
        let mut db = city();
        // Drain station 0 (2 bikes) => 2*5 < 4? 0*5 < 4 yes, starved.
        for rider in 0..2 {
            db.invoke("checkout", vec![vec![Value::Int(rider), Value::Int(0)]])
                .unwrap();
        }
        // A rider moves right next to station 0 (grid origin).
        let bike = db
            .query("SELECT bike_id FROM bikes WHERE rider_id = 0", &[])
            .unwrap()
            .scalar_i64()
            .unwrap();
        db.advance_clock(SEC);
        db.submit_batch(
            "gps_ingest",
            vec![vec![
                Value::Int(bike),
                Value::Float(10.0),
                Value::Float(10.0),
            ]],
        )
        .unwrap();
        let offers = db
            .query(
                "SELECT COUNT(*) FROM discounts WHERE station_id = 0 AND status = 0",
                &[],
            )
            .unwrap()
            .scalar_i64()
            .unwrap();
        assert_eq!(offers, 1);
        // Moving again doesn't duplicate the live offer.
        db.advance_clock(SEC);
        db.submit_batch(
            "gps_ingest",
            vec![vec![
                Value::Int(bike),
                Value::Float(12.0),
                Value::Float(12.0),
            ]],
        )
        .unwrap();
        let offers = db
            .query("SELECT COUNT(*) FROM discounts WHERE station_id = 0", &[])
            .unwrap()
            .scalar_i64()
            .unwrap();
        assert_eq!(offers, 1);
    }

    #[test]
    fn discount_acceptance_is_exclusive() {
        let mut db = city();
        // Manufacture an available offer.
        db.setup_sql(
            "INSERT INTO discounts VALUES (1, 0, NULL, 25, 0, ?)",
            &[Value::Timestamp(10 * 60 * SEC)],
        )
        .unwrap();
        let first = db
            .invoke("accept_discount", vec![vec![Value::Int(1), Value::Int(1)]])
            .unwrap();
        assert!(first.is_committed());
        let second = db
            .invoke("accept_discount", vec![vec![Value::Int(2), Value::Int(1)]])
            .unwrap();
        assert_eq!(second.status, TxnStatus::Aborted);
        // Holder recorded correctly.
        let holder = db
            .query("SELECT rider_id FROM discounts WHERE discount_id = 1", &[])
            .unwrap()
            .scalar_i64()
            .unwrap();
        assert_eq!(holder, 1);
    }

    #[test]
    fn accepted_discount_redeems_on_return() {
        let mut db = city();
        db.setup_sql(
            "INSERT INTO discounts VALUES (1, 2, NULL, 50, 0, ?)",
            &[Value::Timestamp(60 * 60 * SEC)],
        )
        .unwrap();
        db.invoke("checkout", vec![vec![Value::Int(1), Value::Int(0)]])
            .unwrap();
        db.invoke("accept_discount", vec![vec![Value::Int(1), Value::Int(1)]])
            .unwrap();
        db.advance_clock(10 * 60 * SEC);
        let ret = db
            .invoke("return_bike", vec![vec![Value::Int(1), Value::Int(2)]])
            .unwrap();
        let resp = ret.response.unwrap();
        let charged = resp.rows[0][1].as_int().unwrap();
        // 10 minutes at 10c = 100c, halved by the 50% discount.
        assert_eq!(charged, 50);
        let status = db
            .query("SELECT status FROM discounts WHERE discount_id = 1", &[])
            .unwrap()
            .scalar_i64()
            .unwrap();
        assert_eq!(status, discount_status::REDEEMED);
    }

    #[test]
    fn expired_acceptance_does_not_discount() {
        let mut db = city();
        db.setup_sql(
            "INSERT INTO discounts VALUES (1, 2, NULL, 50, 0, ?)",
            &[Value::Timestamp(60 * 60 * SEC)],
        )
        .unwrap();
        db.invoke("checkout", vec![vec![Value::Int(1), Value::Int(0)]])
            .unwrap();
        db.invoke("accept_discount", vec![vec![Value::Int(1), Value::Int(1)]])
            .unwrap();
        // Ride far past the 15-minute acceptance window.
        db.advance_clock(30 * 60 * SEC);
        let ret = db
            .invoke("return_bike", vec![vec![Value::Int(1), Value::Int(2)]])
            .unwrap();
        let charged = ret.response.unwrap().rows[0][1].as_int().unwrap();
        assert_eq!(charged, 300); // 30 min * 10c, undiscounted
    }
}
