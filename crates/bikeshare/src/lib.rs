//! # sstore-bikeshare — BikeShare (paper §3.2)
//!
//! A city-scale bicycle-rental workload mixing the three kinds of work the
//! paper highlights:
//!
//! * **pure OLTP** — bike checkouts, returns, and discount acceptances are
//!   client requests ([`SStore::invoke`](sstore_core::SStore)) hitting
//!   shared state with full ACID semantics;
//! * **pure streaming** — every bike reports GPS at ~1 Hz; a border
//!   procedure ingests positions, maintains per-ride statistics (distance,
//!   max speed), and raises stolen-bike alerts (a bike moving at 60 mph is
//!   probably on a truck);
//! * **both at once** — real-time discounts: stations running out of bikes
//!   continuously offer discounts to riders nearby, computed from the
//!   streaming positions and *claimed transactionally* (an offer can only
//!   be granted to one rider; it expires after 15 minutes).
//!
//! [`sim::CitySim`] generates a deterministic virtual city: stations on a
//! grid, riders taking trips, GPS traces along the way — the stand-in for
//! the paper's live demo data (see DESIGN.md §1.5).

pub mod procs;
pub mod schema;
pub mod sim;

pub use procs::install;
pub use schema::BikeConfig;
pub use sim::{verify_invariants, CitySim, SimReport};
