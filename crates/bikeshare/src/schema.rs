//! BikeShare schema and configuration.

use sstore_common::{Result, Value};
use sstore_core::SStore;

/// Microseconds per simulated second.
pub const SEC: i64 = 1_000_000;

/// Tunables for the BikeShare application.
#[derive(Debug, Clone)]
pub struct BikeConfig {
    /// Number of stations (grid-placed).
    pub stations: i64,
    /// Docks per station.
    pub docks_per_station: i64,
    /// Bikes initially docked (spread round-robin).
    pub bikes: i64,
    /// Registered riders.
    pub riders: i64,
    /// Speed above which a stolen-bike alert fires (m/s). 60 mph ≈ 26.8.
    pub alert_speed: f64,
    /// Stations offer discounts when `bikes_available * low_bike_div <
    /// docks` (paper: stations "in need of bikes").
    pub low_bike_div: i64,
    /// Radius within which riders see a station's discount (meters).
    pub discount_radius: f64,
    /// Discount percentage offered.
    pub discount_pct: i64,
    /// Offer/acceptance lifetime (µs). Paper: 15 minutes.
    pub discount_expiry: i64,
    /// Ride price per started minute (cents).
    pub price_per_min: i64,
}

impl Default for BikeConfig {
    fn default() -> Self {
        BikeConfig {
            stations: 50,
            docks_per_station: 10,
            bikes: 300,
            riders: 200,
            alert_speed: 26.8,
            low_bike_div: 5,
            discount_radius: 500.0,
            discount_pct: 25,
            discount_expiry: 15 * 60 * SEC,
            price_per_min: 10,
        }
    }
}

impl BikeConfig {
    /// A small city for unit tests.
    pub fn tiny() -> Self {
        BikeConfig {
            stations: 4,
            docks_per_station: 4,
            bikes: 8,
            riders: 6,
            ..BikeConfig::default()
        }
    }
}

/// Bike status codes (the `bikes.status` column).
pub mod bike_status {
    /// Docked at a station.
    pub const DOCKED: i64 = 0;
    /// Checked out, riding.
    pub const RIDING: i64 = 1;
}

/// Discount status codes (the `discounts.status` column).
pub mod discount_status {
    /// Offered, unclaimed.
    pub const AVAILABLE: i64 = 0;
    /// Claimed by a rider (exclusive).
    pub const ACCEPTED: i64 = 1;
    /// Lapsed before redemption.
    pub const EXPIRED: i64 = 2;
    /// Used on a return.
    pub const REDEEMED: i64 = 3;
}

/// Install tables, streams, indexes, and seed the city.
///
/// Station coordinates form a √n×√n grid with 1 km spacing; bikes are
/// docked round-robin.
pub fn install_schema(db: &mut SStore, cfg: &BikeConfig) -> Result<()> {
    db.ddl(
        "CREATE TABLE stations (station_id INT NOT NULL, x FLOAT NOT NULL, y FLOAT NOT NULL, \
         docks INT NOT NULL, bikes_available INT NOT NULL, PRIMARY KEY (station_id))",
    )?;
    db.ddl(
        "CREATE TABLE bikes (bike_id INT NOT NULL, status INT NOT NULL, station_id INT, \
         rider_id INT, x FLOAT NOT NULL, y FLOAT NOT NULL, last_ts TIMESTAMP, \
         PRIMARY KEY (bike_id))",
    )?;
    db.create_index("bikes", "bikes_by_station", &["station_id"], false)?;
    db.create_index("bikes", "bikes_by_rider", &["rider_id"], false)?;
    db.ddl(
        "CREATE TABLE riders (rider_id INT NOT NULL, name VARCHAR(32) NOT NULL, \
         PRIMARY KEY (rider_id))",
    )?;
    db.ddl(
        "CREATE TABLE rides (ride_id INT NOT NULL, rider_id INT NOT NULL, bike_id INT NOT NULL, \
         start_station INT NOT NULL, end_station INT, start_ts TIMESTAMP NOT NULL, \
         end_ts TIMESTAMP, distance FLOAT NOT NULL, max_speed FLOAT NOT NULL, \
         charged INT, PRIMARY KEY (ride_id))",
    )?;
    db.create_index("rides", "rides_by_rider", &["rider_id"], false)?;
    db.ddl(
        "CREATE TABLE discounts (discount_id INT NOT NULL, station_id INT NOT NULL, \
         rider_id INT, pct INT NOT NULL, status INT NOT NULL, expires_ts TIMESTAMP NOT NULL, \
         PRIMARY KEY (discount_id))",
    )?;
    db.create_index("discounts", "discounts_by_station", &["station_id"], false)?;
    db.ddl(
        "CREATE TABLE counters (k INT NOT NULL, next_ride INT NOT NULL, \
         next_discount INT NOT NULL, PRIMARY KEY (k))",
    )?;
    // Streams: GPS input, rider movements (workflow edge), alert sink.
    db.ddl("CREATE STREAM s_gps (bike_id INT, x FLOAT, y FLOAT)")?;
    db.ddl("CREATE STREAM s_moves (rider_id INT, x FLOAT, y FLOAT)")?;
    db.ddl("CREATE STREAM s_alerts (bike_id INT, speed FLOAT, at_ts TIMESTAMP)")?;

    // Seed the city.
    let side = (cfg.stations as f64).sqrt().ceil() as i64;
    for s in 0..cfg.stations {
        let x = (s % side) as f64 * 1000.0;
        let y = (s / side) as f64 * 1000.0;
        db.setup_sql(
            "INSERT INTO stations VALUES (?, ?, ?, ?, 0)",
            &[
                Value::Int(s),
                Value::Float(x),
                Value::Float(y),
                Value::Int(cfg.docks_per_station),
            ],
        )?;
    }
    for b in 0..cfg.bikes {
        let station = b % cfg.stations;
        let sx = (station % side) as f64 * 1000.0;
        let sy = (station / side) as f64 * 1000.0;
        db.setup_sql(
            "INSERT INTO bikes VALUES (?, 0, ?, NULL, ?, ?, 0)",
            &[
                Value::Int(b),
                Value::Int(station),
                Value::Float(sx),
                Value::Float(sy),
            ],
        )?;
        db.setup_sql(
            "UPDATE stations SET bikes_available = bikes_available + 1 WHERE station_id = ?",
            &[Value::Int(station)],
        )?;
    }
    for r in 0..cfg.riders {
        db.setup_sql(
            "INSERT INTO riders VALUES (?, ?)",
            &[Value::Int(r), Value::Text(format!("Rider {r}"))],
        )?;
    }
    db.setup_sql("INSERT INTO counters VALUES (0, 0, 0)", &[])?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sstore_core::SStoreBuilder;

    #[test]
    fn seeds_city_consistently() {
        let mut db = SStoreBuilder::new().build().unwrap();
        let cfg = BikeConfig::tiny();
        install_schema(&mut db, &cfg).unwrap();
        let stations = db
            .query("SELECT COUNT(*) FROM stations", &[])
            .unwrap()
            .scalar_i64()
            .unwrap();
        assert_eq!(stations, 4);
        // Bike conservation at rest: all bikes docked and counted.
        let available = db
            .query("SELECT SUM(bikes_available) FROM stations", &[])
            .unwrap()
            .scalar_i64()
            .unwrap();
        assert_eq!(available, cfg.bikes);
        let docked = db
            .query("SELECT COUNT(*) FROM bikes WHERE status = 0", &[])
            .unwrap()
            .scalar_i64()
            .unwrap();
        assert_eq!(docked, cfg.bikes);
    }

    #[test]
    fn no_station_overfilled_at_seed() {
        let mut db = SStoreBuilder::new().build().unwrap();
        let cfg = BikeConfig::tiny();
        install_schema(&mut db, &cfg).unwrap();
        let over = db
            .query(
                "SELECT COUNT(*) FROM stations WHERE bikes_available > docks",
                &[],
            )
            .unwrap()
            .scalar_i64()
            .unwrap();
        assert_eq!(over, 0);
    }
}
