//! Per-transaction undo log.
//!
//! Under H-Store-style serial execution there is no concurrency to isolate
//! against, but atomicity still requires rolling back a partially-executed
//! transaction on abort. Every mutation the execution engine performs
//! appends its inverse here; [`UndoLog::rollback`] applies them in reverse.

use crate::database::Database;
use sstore_common::{Result, Row, TableId};

use crate::index::RowId;

/// The inverse of one storage mutation.
#[derive(Debug, Clone)]
pub enum UndoOp {
    /// A row was inserted; undo deletes it.
    Insert {
        /// Table the row went into.
        table: TableId,
        /// Slot the row occupies.
        rid: RowId,
    },
    /// A row was deleted; undo restores it into its original slot.
    Delete {
        /// Table the row came from.
        table: TableId,
        /// Original slot.
        rid: RowId,
        /// The deleted row.
        row: Row,
    },
    /// A row was updated; undo writes the old image back.
    Update {
        /// Table containing the row.
        table: TableId,
        /// Slot of the row.
        rid: RowId,
        /// Pre-update image.
        old: Row,
    },
    /// Stream/window lifecycle counters changed; undo restores the saved
    /// metadata blob. Saved as an opaque closure-free snapshot of the
    /// catalog kind so aborts also rewind sequence numbers.
    KindMeta {
        /// Table whose lifecycle metadata changed.
        table: TableId,
        /// The prior `TableKind` (with its embedded counters).
        prior: crate::catalog::TableKind,
    },
    /// A window arrival was recorded (deque push_back); undo pops it.
    WindowPushed {
        /// The window table.
        table: TableId,
    },
    /// A window evicted its oldest arrival (deque pop_front); undo pushes
    /// the entry back to the front (LIFO replay restores original order).
    WindowPopped {
        /// The window table.
        table: TableId,
        /// The popped row id.
        rid: RowId,
    },
    /// An out-of-band delete excised an arrival from the middle of the
    /// deque; undo reinserts it at its original position.
    WindowExcised {
        /// The window table.
        table: TableId,
        /// The excised row id.
        rid: RowId,
        /// Its index in the deque before excision.
        pos: usize,
    },
}

/// Append-only undo log for one transaction execution.
#[derive(Debug, Default)]
pub struct UndoLog {
    ops: Vec<UndoOp>,
}

impl UndoLog {
    /// Empty log.
    pub fn new() -> Self {
        UndoLog::default()
    }

    /// Record one inverse operation.
    pub fn push(&mut self, op: UndoOp) {
        self.ops.push(op);
    }

    /// Number of recorded operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// A savepoint marker: the current length. Rolling back to a savepoint
    /// undoes only operations recorded after it (used for per-statement
    /// atomicity inside procedures).
    pub fn savepoint(&self) -> usize {
        self.ops.len()
    }

    /// Undo everything after `savepoint`, newest first.
    pub fn rollback_to(&mut self, db: &mut Database, savepoint: usize) -> Result<()> {
        while self.ops.len() > savepoint {
            let op = self.ops.pop().expect("len checked");
            Self::apply(db, op)?;
        }
        Ok(())
    }

    /// Undo the entire transaction, newest first.
    pub fn rollback(mut self, db: &mut Database) -> Result<()> {
        while let Some(op) = self.ops.pop() {
            Self::apply(db, op)?;
        }
        Ok(())
    }

    /// Commit: drop the log without applying anything.
    pub fn commit(self) {
        // Dropping is sufficient; method exists for call-site clarity.
    }

    fn apply(db: &mut Database, op: UndoOp) -> Result<()> {
        match op {
            UndoOp::Insert { table, rid } => {
                db.table_mut(table)?.delete(rid)?;
            }
            UndoOp::Delete { table, rid, row } => {
                db.table_mut(table)?.restore(rid, row)?;
            }
            UndoOp::Update { table, rid, old } => {
                db.table_mut(table)?.update(rid, old)?;
            }
            UndoOp::KindMeta { table, prior } => {
                if let Some(meta) = db.catalog_mut().meta_mut(table) {
                    meta.kind = prior;
                }
            }
            UndoOp::WindowPushed { table } => {
                if let Some(meta) = db.catalog_mut().meta_mut(table) {
                    meta.arrivals.pop_back();
                }
            }
            UndoOp::WindowPopped { table, rid } => {
                if let Some(meta) = db.catalog_mut().meta_mut(table) {
                    meta.arrivals.push_front(rid);
                }
            }
            UndoOp::WindowExcised { table, rid, pos } => {
                if let Some(meta) = db.catalog_mut().meta_mut(table) {
                    let pos = pos.min(meta.arrivals.len());
                    meta.arrivals.insert(pos, rid);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sstore_common::{Column, DataType, Schema, Value};

    fn db_with_table() -> (Database, TableId) {
        let mut db = Database::new();
        let schema = Schema::new(
            vec![
                Column::new("id", DataType::Int),
                Column::new("v", DataType::Int),
            ],
            &["id"],
        )
        .unwrap();
        let id = db.create_table("t", schema).unwrap();
        (db, id)
    }

    fn row(id: i64, v: i64) -> Row {
        vec![Value::Int(id), Value::Int(v)].into()
    }

    #[test]
    fn rollback_insert() {
        let (mut db, t) = db_with_table();
        let mut undo = UndoLog::new();
        let rid = db.table_mut(t).unwrap().insert(row(1, 10)).unwrap();
        undo.push(UndoOp::Insert { table: t, rid });
        undo.rollback(&mut db).unwrap();
        assert!(db.table(t).unwrap().is_empty());
    }

    #[test]
    fn rollback_delete_restores_exact_slot() {
        let (mut db, t) = db_with_table();
        let rid = db.table_mut(t).unwrap().insert(row(1, 10)).unwrap();
        let mut undo = UndoLog::new();
        let old = db.table_mut(t).unwrap().delete(rid).unwrap();
        undo.push(UndoOp::Delete {
            table: t,
            rid,
            row: old,
        });
        undo.rollback(&mut db).unwrap();
        let table = db.table(t).unwrap();
        assert_eq!(table.get(rid).unwrap()[1], Value::Int(10));
        assert_eq!(table.pk_lookup(&[Value::Int(1)]), Some(rid));
    }

    #[test]
    fn rollback_update_restores_old_image() {
        let (mut db, t) = db_with_table();
        let rid = db.table_mut(t).unwrap().insert(row(1, 10)).unwrap();
        let mut undo = UndoLog::new();
        let old = db.table_mut(t).unwrap().update(rid, row(1, 20)).unwrap();
        undo.push(UndoOp::Update { table: t, rid, old });
        undo.rollback(&mut db).unwrap();
        assert_eq!(db.table(t).unwrap().get(rid).unwrap()[1], Value::Int(10));
    }

    #[test]
    fn savepoint_partial_rollback() {
        let (mut db, t) = db_with_table();
        let mut undo = UndoLog::new();
        let r1 = db.table_mut(t).unwrap().insert(row(1, 10)).unwrap();
        undo.push(UndoOp::Insert { table: t, rid: r1 });
        let sp = undo.savepoint();
        let r2 = db.table_mut(t).unwrap().insert(row(2, 20)).unwrap();
        undo.push(UndoOp::Insert { table: t, rid: r2 });
        undo.rollback_to(&mut db, sp).unwrap();
        // Row 2 gone, row 1 still present.
        assert_eq!(db.table(t).unwrap().len(), 1);
        assert!(db.table(t).unwrap().pk_lookup(&[Value::Int(1)]).is_some());
        // Full rollback clears row 1 too.
        undo.rollback(&mut db).unwrap();
        assert!(db.table(t).unwrap().is_empty());
    }

    #[test]
    fn rollback_order_is_lifo() {
        // insert then update the same row: undo must reverse the update
        // first, then the insert — otherwise delete of rid fails.
        let (mut db, t) = db_with_table();
        let mut undo = UndoLog::new();
        let rid = db.table_mut(t).unwrap().insert(row(1, 10)).unwrap();
        undo.push(UndoOp::Insert { table: t, rid });
        let old = db.table_mut(t).unwrap().update(rid, row(1, 30)).unwrap();
        undo.push(UndoOp::Update { table: t, rid, old });
        undo.rollback(&mut db).unwrap();
        assert!(db.table(t).unwrap().is_empty());
    }

    #[test]
    fn kind_meta_rollback_restores_counters() {
        let mut db = Database::new();
        let schema = Schema::keyless(vec![Column::new("v", DataType::Int)]).unwrap();
        let sid = db.create_stream("s", schema).unwrap();
        let prior = db.catalog().meta(sid).unwrap().kind.clone();
        let mut undo = UndoLog::new();
        undo.push(UndoOp::KindMeta {
            table: sid,
            prior: prior.clone(),
        });
        // Mutate the stream counter.
        if let crate::catalog::TableKind::Stream(s) =
            &mut db.catalog_mut().meta_mut(sid).unwrap().kind
        {
            s.next_seq = 42;
        }
        undo.rollback(&mut db).unwrap();
        assert_eq!(db.catalog().meta(sid).unwrap().kind, prior);
    }
}
