//! The catalog: object names, schemas, and kinds.
//!
//! S-Store's "uniform state management" (paper §2) stores streams and
//! windows in ordinary tables; the catalog records which kind each table is
//! plus the kind-specific lifecycle metadata:
//!
//! * **streams** carry hidden `__batch`/`__seq` columns and a GC watermark;
//! * **windows** carry hidden `__seq`/`__ts` columns, a [`WindowSpec`], and
//!   an owner procedure for the paper's transaction-scope rule.

use crate::index::RowId;
use serde::{json, DeError, Deserialize, Serialize};
use sstore_common::{codec, Column, DataType, Error, ProcId, Result, Schema, TableId, Value};
use std::collections::{HashMap, VecDeque};

/// Hidden column appended to streams/windows: batch id.
pub const COL_BATCH: &str = "__batch";
/// Hidden column appended to streams/windows: per-table sequence number.
pub const COL_SEQ: &str = "__seq";
/// Hidden column appended to windows: logical arrival timestamp (µs).
pub const COL_TS: &str = "__ts";

/// Sliding-window policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WindowKind {
    /// Tuple-based: keep the newest `size` tuples; downstream processing
    /// fires every `slide` insertions.
    Tuple {
        /// Window size in tuples.
        size: u64,
        /// Slide interval in tuples.
        slide: u64,
    },
    /// Time-based: keep tuples newer than `range` µs; fires every `slide` µs.
    Time {
        /// Window range in microseconds.
        range: i64,
        /// Slide interval in microseconds.
        slide: i64,
    },
}

/// Full window definition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowSpec {
    /// The slide policy.
    pub kind: WindowKind,
    /// Scope owner: only consecutive TEs of this procedure may read or
    /// write the window (paper §2, "scope of a transaction execution").
    /// `None` means the window is not yet bound to a procedure.
    pub owner: Option<ProcId>,
}

/// Stream lifecycle metadata.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamMeta {
    /// Next sequence number to assign on append.
    pub next_seq: u64,
    /// All tuples with `__batch <= gc_watermark` may be garbage collected
    /// (their batch has been fully consumed downstream).
    pub gc_watermark: Option<u64>,
}

/// Incremental aggregate state for one visible window column: enough to
/// answer `COUNT(col)`, `SUM(col)`, and `AVG(col)` for INT columns without
/// scanning the window extent.
#[derive(Debug, Clone, Default)]
pub struct ColAgg {
    /// Non-NULL cells currently in the window.
    pub nonnull: u64,
    /// Running integer sum of the non-NULL cells (INT/TIMESTAMP lanes).
    pub overflow_sum: i64,
    /// Sticky: some add/remove over this column over- or underflowed `i64`,
    /// so `overflow_sum` is unusable (COUNT stays exact). Cleared only by a
    /// full rebuild.
    pub overflow: bool,
}

/// Running aggregates over a window's visible columns, maintained
/// incrementally on insert/evict/delete/update so sliding-window
/// `COUNT/SUM/AVG` queries are O(1) instead of O(window size).
///
/// This is **derived** state: `valid = false` means it must be rebuilt
/// from a scan before use (the state of affairs after snapshot decode,
/// or after a mutation path that does not carry undo information). It is
/// deliberately excluded from equality comparisons and serialized as
/// JSON `null` so every persistent format is unchanged.
#[derive(Debug, Clone, Default)]
pub struct WindowAggState {
    /// False = state unknown; rebuild before trusting `rows`/`cols`.
    pub valid: bool,
    /// Live rows in the window.
    pub rows: u64,
    /// Per-visible-column accumulators.
    pub cols: Vec<ColAgg>,
}

impl WindowAggState {
    /// Fresh, trusted-empty state (for a newly created window).
    pub fn new_valid() -> Self {
        WindowAggState {
            valid: true,
            rows: 0,
            cols: Vec::new(),
        }
    }

    /// Drop all accumulated state and mark it unknown.
    pub fn invalidate(&mut self) {
        self.valid = false;
        self.rows = 0;
        self.cols.clear();
    }

    fn ensure_width(&mut self, n: usize) {
        if self.cols.len() < n {
            // Widening after rows were accumulated would mean the new
            // columns never saw those rows; only trust a resize at zero.
            if self.rows > 0 && !self.cols.is_empty() {
                self.invalidate();
                return;
            }
            self.cols.resize_with(n, ColAgg::default);
        }
    }

    /// Fold one visible row into the state.
    pub fn add(&mut self, visible: &[Value]) {
        if !self.valid {
            return;
        }
        self.ensure_width(visible.len());
        if !self.valid {
            return;
        }
        self.rows += 1;
        for (c, v) in visible.iter().enumerate() {
            let agg = &mut self.cols[c];
            match v {
                Value::Null => {}
                Value::Int(i) | Value::Timestamp(i) => {
                    agg.nonnull += 1;
                    match agg.overflow_sum.checked_add(*i) {
                        Some(s) => agg.overflow_sum = s,
                        None => agg.overflow = true,
                    }
                }
                _ => agg.nonnull += 1,
            }
        }
    }

    /// Remove one visible row from the state (it must have been added).
    pub fn remove(&mut self, visible: &[Value]) {
        if !self.valid {
            return;
        }
        if self.rows == 0 || self.cols.len() < visible.len() {
            self.invalidate();
            return;
        }
        self.rows -= 1;
        for (c, v) in visible.iter().enumerate() {
            let agg = &mut self.cols[c];
            match v {
                Value::Null => {}
                Value::Int(i) | Value::Timestamp(i) => {
                    if agg.nonnull == 0 {
                        self.invalidate();
                        return;
                    }
                    agg.nonnull -= 1;
                    match agg.overflow_sum.checked_sub(*i) {
                        Some(s) => agg.overflow_sum = s,
                        None => agg.overflow = true,
                    }
                }
                _ => {
                    if agg.nonnull == 0 {
                        self.invalidate();
                        return;
                    }
                    agg.nonnull -= 1;
                }
            }
        }
    }

    /// Rebuild from a full scan of the window's visible rows.
    pub fn rebuild<'a>(&mut self, rows: impl Iterator<Item = &'a [Value]>) {
        self.valid = true;
        self.rows = 0;
        self.cols.clear();
        for r in rows {
            self.add(r);
        }
    }
}

/// Derived state compares equal to anything: two windows with the same
/// committed contents are the same window, whether or not a cache has
/// been warmed. This keeps `WindowMeta`'s undo-snapshot comparison and
/// codec round-trip tests meaningful.
impl PartialEq for WindowAggState {
    fn eq(&self, _: &WindowAggState) -> bool {
        true
    }
}
impl Eq for WindowAggState {}

/// Serialized as JSON `null` (derived cache, rebuilt on demand), so log
/// and snapshot formats are byte-identical with or without the field.
impl Serialize for WindowAggState {
    fn to_json(&self) -> json::Value {
        json::Value::Null
    }
}

/// Any serialized form decodes to "unknown, rebuild before use".
impl Deserialize for WindowAggState {
    fn from_json(_: &json::Value) -> std::result::Result<Self, DeError> {
        Ok(WindowAggState::default())
    }
}

/// Window lifecycle metadata.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowMeta {
    /// The window definition.
    pub spec: WindowSpec,
    /// Next sequence number to assign on append.
    pub next_seq: u64,
    /// Tuples inserted since the window last slid (tuple windows) or the
    /// logical time of the last slide (time windows).
    pub pending: i64,
    /// Total tuples ever inserted (for slide arithmetic and stats).
    pub total_inserted: u64,
    /// Incremental `COUNT/SUM/AVG` cache over the visible columns.
    pub aggs: WindowAggState,
}

/// What kind of object a table is.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TableKind {
    /// Regular OLTP table.
    Base,
    /// Unbounded stream (append-only, GC'd after consumption).
    Stream(StreamMeta),
    /// Bounded sliding window over a stream.
    Window(WindowMeta),
}

impl TableKind {
    /// True for `TableKind::Stream`.
    pub fn is_stream(&self) -> bool {
        matches!(self, TableKind::Stream(_))
    }
    /// True for `TableKind::Window`.
    pub fn is_window(&self) -> bool {
        matches!(self, TableKind::Window(_))
    }
}

/// Catalog entry for one table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableMeta {
    /// Dense id used everywhere else in the engine.
    pub id: TableId,
    /// Lower-cased object name.
    pub name: String,
    /// The *visible* schema (what SQL sees). The storage schema may append
    /// hidden lifecycle columns; see [`Catalog::storage_schema`].
    pub visible_schema: Schema,
    /// Object kind and lifecycle state.
    pub kind: TableKind,
    /// Window only: live row ids in arrival order (front = oldest).
    /// Because window timestamps/sequence numbers are assigned from a
    /// monotone per-partition clock, eviction is always a prefix of this
    /// deque — slide maintenance pops O(evicted) entries instead of
    /// rescanning the table. Kept outside [`TableKind`] so the per-insert
    /// undo snapshot of the lifecycle counters stays O(1); the undo log
    /// restores the deque through its own `WindowPushed`/`WindowPopped`/
    /// `WindowExcised` operations. Empty for base tables and streams.
    pub arrivals: VecDeque<RowId>,
}

/// Name → metadata registry for one partition.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Catalog {
    by_name: HashMap<String, TableId>,
    metas: Vec<TableMeta>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    fn register(&mut self, name: &str, visible_schema: Schema, kind: TableKind) -> Result<TableId> {
        let lname = name.to_ascii_lowercase();
        if self.by_name.contains_key(&lname) {
            return Err(Error::AlreadyExists(format!("table `{lname}`")));
        }
        let id = TableId::new(self.metas.len() as u32);
        self.by_name.insert(lname.clone(), id);
        self.metas.push(TableMeta {
            id,
            name: lname,
            visible_schema,
            kind,
            arrivals: VecDeque::new(),
        });
        Ok(id)
    }

    /// Register a base table.
    pub fn add_table(&mut self, name: &str, schema: Schema) -> Result<TableId> {
        self.register(name, schema, TableKind::Base)
    }

    /// Register a stream.
    pub fn add_stream(&mut self, name: &str, schema: Schema) -> Result<TableId> {
        self.register(name, schema, TableKind::Stream(StreamMeta::default()))
    }

    /// Register a window.
    pub fn add_window(&mut self, name: &str, schema: Schema, spec: WindowSpec) -> Result<TableId> {
        self.register(
            name,
            schema,
            TableKind::Window(WindowMeta {
                spec,
                next_seq: 0,
                pending: 0,
                total_inserted: 0,
                aggs: WindowAggState::new_valid(),
            }),
        )
    }

    /// The storage-level schema for a catalog entry: the visible schema
    /// plus any hidden lifecycle columns required by the kind.
    pub fn storage_schema(meta: &TableMeta) -> Result<Schema> {
        match &meta.kind {
            TableKind::Base => Ok(meta.visible_schema.clone()),
            TableKind::Stream(_) => meta.visible_schema.with_hidden(vec![
                Column::new(COL_BATCH, DataType::Int),
                Column::new(COL_SEQ, DataType::Int),
            ]),
            TableKind::Window(_) => meta.visible_schema.with_hidden(vec![
                Column::new(COL_SEQ, DataType::Int),
                Column::new(COL_TS, DataType::Timestamp),
            ]),
        }
    }

    /// Resolve a name (case-insensitive).
    pub fn resolve(&self, name: &str) -> Option<TableId> {
        self.by_name.get(&name.to_ascii_lowercase()).copied()
    }

    /// Metadata by id.
    pub fn meta(&self, id: TableId) -> Option<&TableMeta> {
        self.metas.get(id.raw() as usize)
    }

    /// Mutable metadata by id (lifecycle updates: seq counters, watermarks).
    pub fn meta_mut(&mut self, id: TableId) -> Option<&mut TableMeta> {
        self.metas.get_mut(id.raw() as usize)
    }

    /// Metadata by name.
    pub fn meta_by_name(&self, name: &str) -> Option<&TableMeta> {
        self.resolve(name).and_then(|id| self.meta(id))
    }

    /// All registered objects.
    pub fn all(&self) -> &[TableMeta] {
        &self.metas
    }

    /// Number of registered objects.
    pub fn len(&self) -> usize {
        self.metas.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.metas.is_empty()
    }

    /// Binary-encode the whole catalog straight into `out` — no serde
    /// tree. `by_name` is not serialized (it is derivable from the metas),
    /// so the encoding is deterministic regardless of hash-map iteration
    /// order, unlike the tree-bridge form it replaces.
    pub fn encode_binary(&self, out: &mut Vec<u8>) {
        codec::count_direct_meta_encode();
        codec::put_uvarint(out, self.metas.len() as u64);
        for m in &self.metas {
            codec::put_str(out, &m.name);
            m.visible_schema.encode_binary(out);
            match &m.kind {
                TableKind::Base => out.push(0),
                TableKind::Stream(s) => {
                    out.push(1);
                    codec::put_uvarint(out, s.next_seq);
                    match s.gc_watermark {
                        None => out.push(0),
                        Some(w) => {
                            out.push(1);
                            codec::put_uvarint(out, w);
                        }
                    }
                }
                TableKind::Window(w) => {
                    out.push(2);
                    match w.spec.kind {
                        WindowKind::Tuple { size, slide } => {
                            out.push(0);
                            codec::put_uvarint(out, size);
                            codec::put_uvarint(out, slide);
                        }
                        WindowKind::Time { range, slide } => {
                            out.push(1);
                            codec::put_ivarint(out, range);
                            codec::put_ivarint(out, slide);
                        }
                    }
                    match w.spec.owner {
                        None => out.push(0),
                        Some(p) => {
                            out.push(1);
                            codec::put_uvarint(out, p.raw() as u64);
                        }
                    }
                    codec::put_uvarint(out, w.next_seq);
                    codec::put_ivarint(out, w.pending);
                    codec::put_uvarint(out, w.total_inserted);
                }
            }
            codec::put_uvarint(out, m.arrivals.len() as u64);
            for &rid in &m.arrivals {
                codec::put_uvarint(out, rid);
            }
        }
    }

    /// Decode a catalog encoded by [`Catalog::encode_binary`]; `by_name`
    /// is rebuilt from the decoded metas.
    pub fn decode_binary(r: &mut codec::Reader<'_>) -> Result<Catalog> {
        let n = r.uvarint()? as usize;
        if n > r.remaining() {
            return Err(Error::Codec(format!(
                "catalog entry count {n} exceeds remaining input"
            )));
        }
        let mut cat = Catalog::new();
        for i in 0..n {
            let name = r.str()?.to_string();
            let visible_schema = Schema::decode_binary(r)?;
            let kind = match r.u8()? {
                0 => TableKind::Base,
                1 => {
                    let next_seq = r.uvarint()?;
                    let gc_watermark = match r.u8()? {
                        0 => None,
                        1 => Some(r.uvarint()?),
                        t => return Err(Error::Codec(format!("bad watermark tag {t}"))),
                    };
                    TableKind::Stream(StreamMeta {
                        next_seq,
                        gc_watermark,
                    })
                }
                2 => {
                    let kind = match r.u8()? {
                        0 => WindowKind::Tuple {
                            size: r.uvarint()?,
                            slide: r.uvarint()?,
                        },
                        1 => WindowKind::Time {
                            range: r.ivarint()?,
                            slide: r.ivarint()?,
                        },
                        t => return Err(Error::Codec(format!("bad window-kind tag {t}"))),
                    };
                    let owner = match r.u8()? {
                        0 => None,
                        1 => Some(ProcId::new(r.uvarint()? as u32)),
                        t => return Err(Error::Codec(format!("bad owner tag {t}"))),
                    };
                    TableKind::Window(WindowMeta {
                        spec: WindowSpec { kind, owner },
                        next_seq: r.uvarint()?,
                        pending: r.ivarint()?,
                        total_inserted: r.uvarint()?,
                        // The binary format does not carry the derived
                        // aggregate cache; rebuild lazily on first insert.
                        aggs: WindowAggState::default(),
                    })
                }
                t => return Err(Error::Codec(format!("bad table-kind tag {t}"))),
            };
            let n_arrivals = r.uvarint()? as usize;
            if n_arrivals > r.remaining() {
                return Err(Error::Codec(format!(
                    "arrival count {n_arrivals} exceeds remaining input"
                )));
            }
            let mut arrivals = VecDeque::with_capacity(n_arrivals);
            for _ in 0..n_arrivals {
                arrivals.push_back(r.uvarint()?);
            }
            let id = TableId::new(i as u32);
            cat.by_name.insert(name.clone(), id);
            cat.metas.push(TableMeta {
                id,
                name,
                visible_schema,
                kind,
                arrivals,
            });
        }
        Ok(cat)
    }

    /// Bind a window to its owning procedure (scope rule). Errors if the
    /// window is already owned by a different procedure.
    pub fn bind_window_owner(&mut self, id: TableId, owner: ProcId) -> Result<()> {
        let meta = self
            .meta_mut(id)
            .ok_or_else(|| Error::NotFound(format!("table {id}")))?;
        match &mut meta.kind {
            TableKind::Window(w) => match w.spec.owner {
                None => {
                    w.spec.owner = Some(owner);
                    Ok(())
                }
                Some(existing) if existing == owner => Ok(()),
                Some(existing) => Err(Error::Scope(format!(
                    "window `{}` is scoped to {existing}, cannot rebind to {owner}",
                    meta.name
                ))),
            },
            _ => Err(Error::Internal(format!("`{}` is not a window", meta.name))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::keyless(vec![Column::new("v", DataType::Int)]).unwrap()
    }

    #[test]
    fn register_and_resolve_case_insensitive() {
        let mut c = Catalog::new();
        let id = c.add_table("Votes", schema()).unwrap();
        assert_eq!(c.resolve("VOTES"), Some(id));
        assert_eq!(c.meta(id).unwrap().name, "votes");
        assert!(c.add_stream("votes", schema()).is_err());
    }

    #[test]
    fn stream_gets_hidden_columns() {
        let mut c = Catalog::new();
        let id = c.add_stream("s1", schema()).unwrap();
        let meta = c.meta(id).unwrap();
        assert!(meta.kind.is_stream());
        let storage = Catalog::storage_schema(meta).unwrap();
        assert_eq!(storage.arity(), 3);
        assert!(storage.column_index(COL_BATCH).is_some());
        assert!(storage.column_index(COL_SEQ).is_some());
    }

    #[test]
    fn window_gets_hidden_columns_and_owner_binding() {
        let mut c = Catalog::new();
        let spec = WindowSpec {
            kind: WindowKind::Tuple {
                size: 100,
                slide: 1,
            },
            owner: None,
        };
        let id = c.add_window("w1", schema(), spec).unwrap();
        let storage = Catalog::storage_schema(c.meta(id).unwrap()).unwrap();
        assert!(storage.column_index(COL_TS).is_some());

        c.bind_window_owner(id, ProcId::new(1)).unwrap();
        // Idempotent for the same owner.
        c.bind_window_owner(id, ProcId::new(1)).unwrap();
        // Different owner violates scope.
        let err = c.bind_window_owner(id, ProcId::new(2)).unwrap_err();
        assert_eq!(err.kind(), "scope");
    }

    #[test]
    fn bind_owner_on_base_table_fails() {
        let mut c = Catalog::new();
        let id = c.add_table("t", schema()).unwrap();
        assert!(c.bind_window_owner(id, ProcId::new(1)).is_err());
    }

    #[test]
    fn binary_codec_round_trips_all_kinds() {
        let mut c = Catalog::new();
        c.add_table(
            "base_t",
            Schema::new(vec![Column::new("id", DataType::Int)], &["id"]).unwrap(),
        )
        .unwrap();
        let sid = c.add_stream("s", schema()).unwrap();
        let wid = c
            .add_window(
                "w",
                schema(),
                WindowSpec {
                    kind: WindowKind::Time {
                        range: 1_000,
                        slide: -5,
                    },
                    owner: Some(ProcId::new(3)),
                },
            )
            .unwrap();
        // Dirty the lifecycle state so non-default fields round-trip.
        if let TableKind::Stream(s) = &mut c.meta_mut(sid).unwrap().kind {
            s.next_seq = 42;
            s.gc_watermark = Some(7);
        }
        c.meta_mut(wid).unwrap().arrivals.extend([9u64, 1, 4]);

        let mut buf = Vec::new();
        c.encode_binary(&mut buf);
        let back = Catalog::decode_binary(&mut codec::Reader::new(&buf)).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back.resolve("base_t"), c.resolve("base_t"));
        assert_eq!(back.meta(sid).unwrap().kind, c.meta(sid).unwrap().kind);
        assert_eq!(back.meta(wid).unwrap().kind, c.meta(wid).unwrap().kind);
        assert_eq!(
            back.meta(wid).unwrap().arrivals,
            c.meta(wid).unwrap().arrivals
        );
        assert_eq!(
            back.meta(sid).unwrap().visible_schema,
            c.meta(sid).unwrap().visible_schema
        );
    }

    #[test]
    fn binary_codec_rejects_garbage_without_panic() {
        let garbage: Vec<u8> = (0..48u8).map(|i| i.wrapping_mul(73) ^ 0x5A).collect();
        assert!(Catalog::decode_binary(&mut codec::Reader::new(&garbage)).is_err());
    }

    #[test]
    fn meta_by_name_and_len() {
        let mut c = Catalog::new();
        assert!(c.is_empty());
        c.add_table("a", schema()).unwrap();
        c.add_stream("b", schema()).unwrap();
        assert_eq!(c.len(), 2);
        assert!(c.meta_by_name("b").unwrap().kind.is_stream());
        assert!(c.meta_by_name("missing").is_none());
    }
}
