//! Whole-partition snapshots.
//!
//! H-Store's fault tolerance combines command logging with periodic
//! snapshots (Malviya et al., ICDE 2014 — the paper's reference 7).
//! S-Store inherits that machinery; the recovery module in `sstore-txn`
//! loads the latest snapshot and replays the command log from there.
//!
//! Two on-disk formats are live ([`sstore_common::DurabilityFormat`]):
//!
//! * **Binary** (default): a `SSNP` magic + version header, then CRC32
//!   frames — one metadata frame (envelope fields + the catalog through
//!   the serde-tree bridge) followed by one frame per table in the
//!   compact value codec (`sstore_common::codec`). Row encoding borrows
//!   the shared COW cells, so capturing + encoding never deep-copies
//!   tuples.
//! * **Json**: the legacy versioned JSON envelope, kept for back-compat
//!   reads of pre-binary durability dirs and the E6 json-vs-binary
//!   benchmarks.
//!
//! [`Snapshot::read_from`] sniffs the magic, so either format loads
//! transparently. The envelope records enough metadata (`last_txn`,
//! `last_batch`, `clock_micros`) for replay to resume exactly.

use crate::catalog::Catalog;
use crate::database::Database;
use crate::table::{SlotOp, Table, TableDirt};
use serde::{Deserialize, Serialize};
use sstore_common::codec::{self, FrameRead};
use sstore_common::fault;
use sstore_common::{BatchId, DurabilityFormat, Error, Result, TxnId};
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Snapshot format version; bumped on breaking layout changes. The binary
/// format carries its own version in the file header
/// ([`codec::CODEC_VERSION`]); this constant versions the JSON envelope.
pub const SNAPSHOT_VERSION: u32 = 1;

/// A consistent point-in-time image of one partition.
#[derive(Debug, Serialize, Deserialize)]
pub struct Snapshot {
    /// Format version (must equal [`SNAPSHOT_VERSION`]).
    pub version: u32,
    /// Highest transaction id included in the image.
    pub last_txn: Option<TxnId>,
    /// Highest border-input batch id fully applied in the image.
    pub last_batch: Option<BatchId>,
    /// Logical clock at snapshot time.
    pub clock_micros: i64,
    /// The data.
    pub database: Database,
}

impl Snapshot {
    /// Capture the current state.
    pub fn capture(
        db: &Database,
        last_txn: Option<TxnId>,
        last_batch: Option<BatchId>,
        clock_micros: i64,
    ) -> Self {
        Snapshot {
            version: SNAPSHOT_VERSION,
            last_txn,
            last_batch,
            clock_micros,
            database: db.clone(),
        }
    }

    /// Write to `path` atomically (write temp + rename) in `format`.
    pub fn write_to(&self, path: &Path, format: DurabilityFormat) -> Result<()> {
        let bytes = match format {
            DurabilityFormat::Binary => self.encode_binary(),
            DurabilityFormat::Json => serde_json::to_string(self)
                .map_err(|e| Error::Io(format!("snapshot encode: {e}")))?
                .into_bytes(),
        };
        if let Some(e) = fault::io_error("snapshot-io-error") {
            // Injected temp-file write failure: nothing reached the real
            // name, so recovery still reads the previous image (or none)
            // plus the un-GC'd log. The caller keeps the old retention
            // state and retries at the next boundary.
            return Err(e);
        }
        let tmp = path.with_extension("tmp");
        {
            let mut file = fs::File::create(&tmp)?;
            file.write_all(&bytes)?;
            file.sync_all()?;
        }
        // Kill point: the new image is fully written but not yet visible
        // under the real name. A crash here must leave recovery reading
        // the previous snapshot (or none) plus the un-GC'd log.
        fault::kill_point("snapshot-mid-write");
        fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Load from `path`, sniffing the format by its magic and verifying
    /// the version. Any codec or checksum failure surfaces as a recovery
    /// error: snapshots are written atomically (temp + rename), so unlike
    /// a command-log tail there is no benign torn-write case.
    pub fn read_from(path: &Path) -> Result<Snapshot> {
        let bytes = fs::read(path)?;
        if codec::has_magic(&bytes, codec::SNAPSHOT_MAGIC) {
            return Self::decode_binary(&bytes)
                .map_err(|e| Error::Recovery(format!("snapshot decode: {e}")));
        }
        let text = std::str::from_utf8(&bytes)
            .map_err(|e| Error::Recovery(format!("snapshot decode: {e}")))?;
        let snap: Snapshot = serde_json::from_str(text)
            .map_err(|e| Error::Recovery(format!("snapshot decode: {e}")))?;
        if snap.version != SNAPSHOT_VERSION {
            return Err(Error::Recovery(format!(
                "snapshot version {} unsupported (expected {SNAPSHOT_VERSION})",
                snap.version
            )));
        }
        Ok(snap)
    }

    /// The chain-identity key of this image: the envelope triple. Every
    /// retention point is separated from the previous one by at least one
    /// commit, so the triple strictly advances between images — a delta
    /// carrying this key as its base provably chains onto exactly this
    /// state and no other.
    pub fn key(&self) -> SnapshotKey {
        SnapshotKey {
            last_txn: self.last_txn,
            last_batch: self.last_batch,
            clock_micros: self.clock_micros,
        }
    }

    fn encode_binary(&self) -> Vec<u8> {
        let mut out = Vec::new();
        codec::put_file_header(&mut out, codec::SNAPSHOT_MAGIC);
        // Metadata frame: kind byte (v3: full image vs delta), envelope
        // fields, catalog, table count. The catalog is encoded straight
        // into the frame buffer (v2) — the serde-tree bridge the v1
        // layout used allocated an intermediate tree node per catalog
        // field on every snapshot.
        let meta = codec::begin_frame(&mut out);
        out.push(KIND_FULL);
        encode_opt_u64(&mut out, self.last_txn.map(TxnId::raw));
        encode_opt_u64(&mut out, self.last_batch.map(BatchId::raw));
        codec::put_ivarint(&mut out, self.clock_micros);
        self.database.catalog().encode_binary(&mut out);
        codec::put_uvarint(&mut out, self.database.tables().len() as u64);
        codec::end_frame(&mut out, meta);
        // One frame per table, TableId order.
        for table in self.database.tables() {
            let f = codec::begin_frame(&mut out);
            table.encode_binary(&mut out);
            codec::end_frame(&mut out, f);
        }
        out
    }

    fn decode_binary(bytes: &[u8]) -> Result<Snapshot> {
        let mut r = codec::Reader::new(bytes);
        let version = codec::check_file_header(&mut r, codec::SNAPSHOT_MAGIC)?;
        let meta = next_frame(&mut r)?;
        let mut m = codec::Reader::new(meta);
        // v3 opens the meta frame with a kind byte; pre-v3 images are
        // implicitly full.
        if version >= 3 {
            let kind = m.u8()?;
            if kind != KIND_FULL {
                return Err(Error::Codec(format!(
                    "expected a full snapshot image, found kind {kind} \
                     (a delta cannot load without its base)"
                )));
            }
        }
        let last_txn = decode_opt_u64(&mut m)?.map(TxnId::new);
        let last_batch = decode_opt_u64(&mut m)?.map(BatchId::new);
        let clock_micros = m.ivarint()?;
        // v1 images carried the catalog through the serde-tree bridge
        // (length-prefixed); v2+ encode it directly into the frame.
        let catalog = if version >= 2 {
            Catalog::decode_binary(&mut m)?
        } else {
            codec::from_bytes(m.bytes()?)?
        };
        let table_count = m.uvarint()? as usize;
        let mut tables = Vec::with_capacity(table_count.min(bytes.len()));
        for i in 0..table_count {
            let payload = next_frame(&mut r)
                .map_err(|e| Error::Codec(format!("table {i}/{table_count}: {e}")))?;
            let mut tr = codec::Reader::new(payload);
            tables.push(Table::decode_binary(&mut tr, version)?);
        }
        Ok(Snapshot {
            version: SNAPSHOT_VERSION,
            last_txn,
            last_batch,
            clock_micros,
            database: Database::from_parts(catalog, tables),
        })
    }
}

/// Meta-frame kind byte (v3+): a self-contained full image.
const KIND_FULL: u8 = 0;
/// Meta-frame kind byte (v3+): an incremental delta chained to a base.
const KIND_DELTA: u8 = 1;

/// Table-delta mode: replay a journaled op sequence against the base.
const MODE_OPS: u8 = 0;
/// Table-delta mode: the table is embedded as a full image (journal
/// unavailable, structural change, or op overflow).
const MODE_FULL: u8 = 1;

/// Identity of one image in a snapshot chain — see [`Snapshot::key`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotKey {
    /// Highest transaction id in the image.
    pub last_txn: Option<TxnId>,
    /// Highest fully-applied border batch in the image.
    pub last_batch: Option<BatchId>,
    /// Logical clock at image time.
    pub clock_micros: i64,
}

/// Per-table payload inside a delta.
enum TableDelta {
    /// Replay these ops through the table mutators.
    Ops(Vec<SlotOp>),
    /// Replace (or append, for tables created since the base) wholesale.
    Full(Box<Table>),
}

/// An incremental snapshot: only what changed since the predecessor
/// image, chained to it by the predecessor's [`SnapshotKey`]. On disk it
/// shares the `SSNP` header with full images; the meta frame's kind byte
/// (v3) tells them apart, so a delta can never be mistaken for a base.
pub struct SnapshotDelta {
    /// Key of the image this delta chains onto.
    pub base: SnapshotKey,
    /// Position in the chain (1 = first delta after the base). Checked
    /// against the file name on load so a stray copy cannot splice in.
    pub chain_index: u64,
    /// Envelope of the state *after* applying this delta.
    pub last_txn: Option<TxnId>,
    /// See [`Snapshot::last_batch`].
    pub last_batch: Option<BatchId>,
    /// See [`Snapshot::clock_micros`].
    pub clock_micros: i64,
    /// Full catalog at delta time (small, and it carries mutable
    /// lifecycle state — stream/window counters — that must replace the
    /// base's wholesale).
    catalog: Catalog,
    /// Total table count after this delta (alignment check).
    table_count: usize,
    /// Changed tables only, by `TableId` position.
    tables: Vec<(u64, TableDelta)>,
}

impl SnapshotDelta {
    /// Capture the changes journaled in `db` since the image identified
    /// by `base`. Tables with no journal (created since the base) and
    /// tables whose journal overflowed embed as full images; clean tables
    /// are omitted entirely.
    pub fn capture(
        db: &Database,
        base: SnapshotKey,
        chain_index: u64,
        last_txn: Option<TxnId>,
        last_batch: Option<BatchId>,
        clock_micros: i64,
    ) -> Self {
        let mut tables = Vec::new();
        for (tid, t) in db.tables().iter().enumerate() {
            match t.dirt() {
                TableDirt::Clean => {}
                TableDirt::Ops(ops) => {
                    tables.push((tid as u64, TableDelta::Ops(ops.to_vec())));
                }
                TableDirt::Full => {
                    tables.push((tid as u64, TableDelta::Full(Box::new(t.clone()))));
                }
            }
        }
        SnapshotDelta {
            base,
            chain_index,
            last_txn,
            last_batch,
            clock_micros,
            catalog: db.catalog().clone(),
            table_count: db.tables().len(),
            tables,
        }
    }

    /// Write to `path` atomically (write temp + rename). Deltas are
    /// binary-only: the JSON envelope stays a full-image format.
    pub fn write_to(&self, path: &Path) -> Result<()> {
        let bytes = self.encode_binary();
        if let Some(e) = fault::io_error("snapshot-io-error") {
            // Same contract as the base writer: zero partial state, the
            // chain prefix on disk stays authoritative.
            return Err(e);
        }
        let tmp = path.with_extension("tmp");
        {
            let mut file = fs::File::create(&tmp)?;
            file.write_all(&bytes)?;
            file.sync_all()?;
        }
        // Kill point: the delta is durable but not yet visible under its
        // chain name. A crash here must leave recovery on the intact
        // chain prefix plus the un-GC'd command log.
        fault::kill_point("delta-snapshot-mid-write");
        fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Load a delta, verifying magic, version, checksums, and kind.
    pub fn read_from(path: &Path) -> Result<SnapshotDelta> {
        let bytes = fs::read(path)?;
        Self::decode_binary(&bytes)
            .map_err(|e| Error::Recovery(format!("snapshot delta decode: {e}")))
    }

    fn encode_binary(&self) -> Vec<u8> {
        let mut out = Vec::new();
        codec::put_file_header(&mut out, codec::SNAPSHOT_MAGIC);
        let meta = codec::begin_frame(&mut out);
        out.push(KIND_DELTA);
        encode_opt_u64(&mut out, self.base.last_txn.map(TxnId::raw));
        encode_opt_u64(&mut out, self.base.last_batch.map(BatchId::raw));
        codec::put_ivarint(&mut out, self.base.clock_micros);
        codec::put_uvarint(&mut out, self.chain_index);
        encode_opt_u64(&mut out, self.last_txn.map(TxnId::raw));
        encode_opt_u64(&mut out, self.last_batch.map(BatchId::raw));
        codec::put_ivarint(&mut out, self.clock_micros);
        self.catalog.encode_binary(&mut out);
        codec::put_uvarint(&mut out, self.table_count as u64);
        codec::put_uvarint(&mut out, self.tables.len() as u64);
        codec::end_frame(&mut out, meta);
        // One frame per dirty table.
        for (tid, delta) in &self.tables {
            let f = codec::begin_frame(&mut out);
            codec::put_uvarint(&mut out, *tid);
            match delta {
                TableDelta::Ops(ops) => {
                    out.push(MODE_OPS);
                    codec::put_uvarint(&mut out, ops.len() as u64);
                    for op in ops {
                        op.encode_binary(&mut out);
                    }
                }
                TableDelta::Full(table) => {
                    out.push(MODE_FULL);
                    table.encode_binary(&mut out);
                }
            }
            codec::end_frame(&mut out, f);
        }
        out
    }

    fn decode_binary(bytes: &[u8]) -> Result<SnapshotDelta> {
        let mut r = codec::Reader::new(bytes);
        let version = codec::check_file_header(&mut r, codec::SNAPSHOT_MAGIC)?;
        if version < 3 {
            return Err(Error::Codec(format!(
                "snapshot delta requires header v3+, found v{version}"
            )));
        }
        let meta = next_frame(&mut r)?;
        let mut m = codec::Reader::new(meta);
        let kind = m.u8()?;
        if kind != KIND_DELTA {
            return Err(Error::Codec(format!(
                "expected a snapshot delta, found kind {kind}"
            )));
        }
        let base = SnapshotKey {
            last_txn: decode_opt_u64(&mut m)?.map(TxnId::new),
            last_batch: decode_opt_u64(&mut m)?.map(BatchId::new),
            clock_micros: m.ivarint()?,
        };
        let chain_index = m.uvarint()?;
        let last_txn = decode_opt_u64(&mut m)?.map(TxnId::new);
        let last_batch = decode_opt_u64(&mut m)?.map(BatchId::new);
        let clock_micros = m.ivarint()?;
        let catalog = Catalog::decode_binary(&mut m)?;
        let table_count = m.uvarint()? as usize;
        let n_dirty = m.uvarint()? as usize;
        let mut tables = Vec::with_capacity(n_dirty.min(bytes.len()));
        for i in 0..n_dirty {
            let payload = next_frame(&mut r)
                .map_err(|e| Error::Codec(format!("table delta {i}/{n_dirty}: {e}")))?;
            let mut tr = codec::Reader::new(payload);
            let tid = tr.uvarint()?;
            let delta = match tr.u8()? {
                MODE_OPS => {
                    let n_ops = tr.uvarint()? as usize;
                    let mut ops = Vec::with_capacity(n_ops.min(payload.len()));
                    for _ in 0..n_ops {
                        ops.push(SlotOp::decode_binary(&mut tr)?);
                    }
                    TableDelta::Ops(ops)
                }
                MODE_FULL => TableDelta::Full(Box::new(Table::decode_binary(&mut tr, version)?)),
                mode => {
                    return Err(Error::Codec(format!(
                        "bad table-delta mode {mode} for table {tid}"
                    )))
                }
            };
            tables.push((tid, delta));
        }
        Ok(SnapshotDelta {
            base,
            chain_index,
            last_txn,
            last_batch,
            clock_micros,
            catalog,
            table_count,
            tables,
        })
    }
}

impl Snapshot {
    /// Apply one delta in place. The caller must already have verified
    /// `delta.base == self.key()` (the chain loader uses a mismatch as
    /// the benign end-of-prefix signal, so `apply_delta` treats it as a
    /// hard internal error).
    pub fn apply_delta(&mut self, delta: SnapshotDelta) -> Result<()> {
        if delta.base != self.key() {
            return Err(Error::Recovery(format!(
                "delta {} does not chain onto this image",
                delta.chain_index
            )));
        }
        let (_old_catalog, mut tables) = std::mem::take(&mut self.database).into_parts();
        for (tid, td) in delta.tables {
            let tid = tid as usize;
            match td {
                TableDelta::Ops(ops) => {
                    let table = tables.get_mut(tid).ok_or_else(|| {
                        Error::Recovery(format!("delta ops for unknown table {tid}"))
                    })?;
                    for op in &ops {
                        table
                            .apply_slot_op(op)
                            .map_err(|e| Error::Recovery(format!("delta replay: {e}")))?;
                    }
                }
                TableDelta::Full(table) => {
                    if tid < tables.len() {
                        tables[tid] = *table;
                    } else if tid == tables.len() {
                        // Table created since the base image.
                        tables.push(*table);
                    } else {
                        return Err(Error::Recovery(format!(
                            "delta full image for out-of-order table {tid}"
                        )));
                    }
                }
            }
        }
        if tables.len() != delta.table_count {
            return Err(Error::Recovery(format!(
                "delta leaves {} tables, expected {}",
                tables.len(),
                delta.table_count
            )));
        }
        self.database = Database::from_parts(delta.catalog, tables);
        self.last_txn = delta.last_txn;
        self.last_batch = delta.last_batch;
        self.clock_micros = delta.clock_micros;
        Ok(())
    }

    /// Load a snapshot chain: the base image at `base_path` plus every
    /// delta `delta_path(1), delta_path(2), …` that chains onto it.
    /// Returns the materialized snapshot and the number of deltas applied.
    ///
    /// Chain-walk rules:
    /// * a **missing** delta file ends the chain (normal case);
    /// * a **stale** delta — wrong base key or wrong chain index, i.e. a
    ///   leftover from a superseded chain after a full-image rewrite —
    ///   ends the chain at the intact prefix (the envelope key makes this
    ///   detection exact, since keys strictly advance between images);
    /// * a **corrupt** delta is a loud recovery error: deltas become
    ///   visible only via atomic rename, and the command log may already
    ///   be GC'd against them, so silently dropping one would lose data.
    pub fn read_chain(
        base_path: &Path,
        delta_path: impl Fn(u64) -> PathBuf,
    ) -> Result<(Snapshot, u64)> {
        let mut snap = sstore_common::obs::timed_phase("recovery.base_image", || {
            Snapshot::read_from(base_path)
        })?;
        sstore_common::obs::timed_phase("recovery.delta_apply", || {
            let mut applied = 0u64;
            loop {
                let next = delta_path(applied + 1);
                if !next.exists() {
                    break;
                }
                let delta = SnapshotDelta::read_from(&next)?;
                if delta.chain_index != applied + 1 || delta.base != snap.key() {
                    break;
                }
                snap.apply_delta(delta)?;
                applied += 1;
            }
            Ok((snap, applied))
        })
    }
}

fn encode_opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
    match v {
        None => out.push(0),
        Some(v) => {
            out.push(1);
            codec::put_uvarint(out, v);
        }
    }
}

fn decode_opt_u64(r: &mut codec::Reader<'_>) -> Result<Option<u64>> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(r.uvarint()?)),
        tag => Err(Error::Codec(format!("bad option tag {tag}"))),
    }
}

/// Read one frame that must be complete and valid (snapshot context).
fn next_frame<'a>(r: &mut codec::Reader<'a>) -> Result<&'a [u8]> {
    match codec::read_frame(r) {
        FrameRead::Frame(payload) => Ok(payload),
        FrameRead::Eof | FrameRead::Torn { .. } => Err(Error::Codec(
            "snapshot truncated (missing frame)".to_string(),
        )),
        FrameRead::Corrupt { offset, detail } => Err(Error::Codec(format!(
            "snapshot corrupted at byte {offset}: {detail}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sstore_common::{Column, DataType, Row, Schema, Value};

    fn tempdir() -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "sstore-snap-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        fs::create_dir_all(&p).unwrap();
        p
    }

    fn sample_db() -> Database {
        let mut db = Database::new();
        let schema = Schema::new(
            vec![
                Column::new("id", DataType::Int),
                Column::new("name", DataType::Text),
            ],
            &["id"],
        )
        .unwrap();
        let t = db.create_table("t", schema).unwrap();
        for i in 0..10 {
            db.table_mut(t)
                .unwrap()
                .insert(vec![Value::Int(i), Value::Text(format!("row{i}"))])
                .unwrap();
        }
        db
    }

    #[test]
    fn snapshot_round_trip_both_formats() {
        for format in [DurabilityFormat::Binary, DurabilityFormat::Json] {
            let dir = tempdir();
            let path = dir.join("snap.dat");
            let db = sample_db();
            let snap = Snapshot::capture(&db, Some(TxnId::new(7)), Some(BatchId::new(3)), 123);
            snap.write_to(&path, format).unwrap();

            let loaded = Snapshot::read_from(&path).unwrap();
            assert_eq!(loaded.last_txn, Some(TxnId::new(7)));
            assert_eq!(loaded.last_batch, Some(BatchId::new(3)));
            assert_eq!(loaded.clock_micros, 123);
            let t = loaded.database.resolve("t").unwrap();
            assert_eq!(loaded.database.table(t).unwrap().len(), 10);
            // Indexes survive the round trip.
            assert!(loaded
                .database
                .table(t)
                .unwrap()
                .pk_lookup(&[Value::Int(5)])
                .is_some());
            fs::remove_dir_all(dir).ok();
        }
    }

    #[test]
    fn binary_and_json_load_identical_state() {
        let dir = tempdir();
        let db = sample_db();
        let snap = Snapshot::capture(&db, Some(TxnId::new(2)), None, 5);
        let bin = dir.join("snap.bin");
        let json = dir.join("snap.json");
        snap.write_to(&bin, DurabilityFormat::Binary).unwrap();
        snap.write_to(&json, DurabilityFormat::Json).unwrap();
        let from_bin = Snapshot::read_from(&bin).unwrap();
        let from_json = Snapshot::read_from(&json).unwrap();
        assert_eq!(
            serde_json::to_string(&from_bin.database).unwrap(),
            serde_json::to_string(&from_json.database).unwrap()
        );
        // The binary image is substantially smaller than the JSON one.
        let bin_len = fs::metadata(&bin).unwrap().len();
        let json_len = fs::metadata(&json).unwrap().len();
        assert!(
            bin_len * 2 < json_len,
            "binary snapshot {bin_len}B not < half of JSON {json_len}B"
        );
        fs::remove_dir_all(dir).ok();
    }

    /// The v2 write path encodes catalog and schema metadata straight to
    /// the frame buffer: zero serde-tree nodes allocated, and the direct
    /// counter moves. (The legacy assertion is in the same test so the
    /// process-wide counters aren't raced by a sibling test.)
    /// Serializes the tests that read the process-wide codec counters
    /// against the one test that still drives the tree bridge.
    static TREE_COUNTER_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn binary_snapshot_bypasses_the_serde_tree_bridge() {
        use sstore_common::CodecMetrics;
        let _guard = TREE_COUNTER_LOCK.lock().unwrap();
        let dir = tempdir();
        let snap = Snapshot::capture(&sample_db(), None, None, 0);

        let before = CodecMetrics::snapshot();
        snap.write_to(&dir.join("v2.dat"), DurabilityFormat::Binary)
            .unwrap();
        let direct = CodecMetrics::snapshot().since(&before);
        assert_eq!(
            direct.tree_nodes_encoded, 0,
            "binary snapshot must not allocate serde-tree nodes"
        );
        assert!(direct.direct_meta_encodes >= 1);

        // The old path (still live for JSON snapshots) pays the tree tax.
        let before = CodecMetrics::snapshot();
        let _ = codec::to_bytes(sample_db().catalog());
        let tree = CodecMetrics::snapshot().since(&before);
        assert!(tree.tree_nodes_encoded > 0);
        fs::remove_dir_all(dir).ok();
    }

    /// A v1 binary snapshot (catalog, schemas, and index definitions
    /// through the serde-tree bridge) still loads: every decoder branches
    /// on the header version. The v1 image is written byte-by-byte here —
    /// exactly the layout the PR 4 encoder produced for this database.
    #[test]
    fn v1_binary_snapshot_still_loads() {
        use crate::index::IndexDef;
        let _guard = TREE_COUNTER_LOCK.lock().unwrap();

        // The database the v1 image describes: `t (id INT PK)` with two
        // rows, inserted in order (slots 0 and 1, no free slots).
        let mut db = Database::new();
        let schema = Schema::new(vec![Column::new("id", DataType::Int)], &["id"]).unwrap();
        let t = db.create_table("t", schema.clone()).unwrap();
        db.table_mut(t)
            .unwrap()
            .insert(vec![Value::Int(1)])
            .unwrap();
        db.table_mut(t)
            .unwrap()
            .insert(vec![Value::Int(2)])
            .unwrap();

        let mut v1 = Vec::new();
        v1.extend_from_slice(&codec::SNAPSHOT_MAGIC);
        v1.extend_from_slice(&1u32.to_le_bytes());
        // Meta frame: envelope + tree-bridged catalog + table count.
        let f = codec::begin_frame(&mut v1);
        encode_opt_u64(&mut v1, Some(7)); // last_txn
        encode_opt_u64(&mut v1, Some(3)); // last_batch
        codec::put_ivarint(&mut v1, 123); // clock
        codec::put_bytes(&mut v1, &codec::to_bytes(db.catalog()));
        codec::put_uvarint(&mut v1, 1); // table count
        codec::end_frame(&mut v1, f);
        // Table frame, v1 layout: name, tree-bridged schema, slots, free
        // list, pk index (tree-bridged def + entries), secondary count.
        let f = codec::begin_frame(&mut v1);
        codec::put_str(&mut v1, "t");
        codec::put_bytes(&mut v1, &codec::to_bytes(&schema));
        codec::put_uvarint(&mut v1, 2); // slots
        for i in 1..=2i64 {
            v1.push(1);
            codec::encode_row(&Row::new(vec![Value::Int(i)]), &mut v1);
        }
        codec::put_uvarint(&mut v1, 0); // free list
        v1.push(1); // pk index present
        codec::put_bytes(
            &mut v1,
            &codec::to_bytes(&IndexDef {
                name: "__pk".into(),
                key_cols: vec![0],
                unique: true,
                ordered: true,
            }),
        );
        codec::put_uvarint(&mut v1, 2); // entries
        for (key, rid) in [(1i64, 0u64), (2, 1)] {
            codec::put_uvarint(&mut v1, 1);
            codec::encode_value(&Value::Int(key), &mut v1);
            codec::put_uvarint(&mut v1, 1);
            codec::put_uvarint(&mut v1, rid);
        }
        codec::put_uvarint(&mut v1, 0); // secondary indexes
        codec::end_frame(&mut v1, f);

        let dir = tempdir();
        let path = dir.join("v1.dat");
        fs::write(&path, &v1).unwrap();
        let loaded = Snapshot::read_from(&path).unwrap();
        assert_eq!(loaded.last_txn, Some(TxnId::new(7)));
        assert_eq!(loaded.last_batch, Some(BatchId::new(3)));
        assert_eq!(loaded.clock_micros, 123);
        let lt = loaded.database.resolve("t").unwrap();
        assert_eq!(loaded.database.table(lt).unwrap().len(), 2);
        assert_eq!(
            loaded
                .database
                .table(lt)
                .unwrap()
                .pk_lookup(&[Value::Int(2)]),
            Some(1)
        );
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn corrupted_binary_snapshot_is_a_clear_error() {
        let dir = tempdir();
        let path = dir.join("snap.dat");
        let snap = Snapshot::capture(&sample_db(), None, None, 0);
        snap.write_to(&path, DurabilityFormat::Binary).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        let err = Snapshot::read_from(&path).unwrap_err();
        assert_eq!(err.kind(), "recovery");
        assert!(err.to_string().contains("snapshot"), "{err}");
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn missing_snapshot_is_an_error() {
        let dir = tempdir();
        let err = Snapshot::read_from(&dir.join("nope.json")).unwrap_err();
        assert_eq!(err.kind(), "io");
        fs::remove_dir_all(dir).ok();
    }

    /// A v2 binary snapshot (pre-delta-chain: no kind byte in the meta
    /// frame) still loads — the decoder only expects the kind byte from
    /// v3 on. The image is hand-assembled with an explicit v2 header and
    /// the current body encoders (the v2→v3 body layout is unchanged
    /// apart from that byte).
    #[test]
    fn v2_binary_snapshot_still_loads() {
        let db = sample_db();
        let mut v2 = Vec::new();
        v2.extend_from_slice(&codec::SNAPSHOT_MAGIC);
        v2.extend_from_slice(&2u32.to_le_bytes());
        let f = codec::begin_frame(&mut v2);
        encode_opt_u64(&mut v2, Some(7)); // last_txn
        encode_opt_u64(&mut v2, None); // last_batch
        codec::put_ivarint(&mut v2, 42); // clock
        db.catalog().encode_binary(&mut v2);
        codec::put_uvarint(&mut v2, db.tables().len() as u64);
        codec::end_frame(&mut v2, f);
        for table in db.tables() {
            let f = codec::begin_frame(&mut v2);
            table.encode_binary(&mut v2);
            codec::end_frame(&mut v2, f);
        }

        let dir = tempdir();
        let path = dir.join("v2.dat");
        fs::write(&path, &v2).unwrap();
        let loaded = Snapshot::read_from(&path).unwrap();
        assert_eq!(loaded.last_txn, Some(TxnId::new(7)));
        assert_eq!(loaded.clock_micros, 42);
        let t = loaded.database.resolve("t").unwrap();
        assert_eq!(loaded.database.table(t).unwrap().len(), 10);
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn delta_chain_roundtrip_matches_live_state() {
        let dir = tempdir();
        let base_path = dir.join("snapshot.dat");
        let delta_path = |k: u64| dir.join(format!("snapshot.d{k}.dat"));

        let mut db = sample_db();
        let t = db.resolve("t").unwrap();
        let base = Snapshot::capture(&db, Some(TxnId::new(10)), None, 100);
        base.write_to(&base_path, DurabilityFormat::Binary).unwrap();
        db.enable_change_tracking();

        // Delta 1: mutate a handful of rows out of the 10.
        let rid = db.table(t).unwrap().pk_lookup(&[Value::Int(3)]).unwrap();
        db.table_mut(t)
            .unwrap()
            .update(rid, vec![Value::Int(3), Value::Text("updated".into())])
            .unwrap();
        db.table_mut(t)
            .unwrap()
            .insert(vec![Value::Int(100), Value::Text("new".into())])
            .unwrap();
        let d1 = SnapshotDelta::capture(&db, base.key(), 1, Some(TxnId::new(12)), None, 200);
        d1.write_to(&delta_path(1)).unwrap();
        db.enable_change_tracking();

        // Delta 2: delete + a table created since the base (full embed).
        let rid = db.table(t).unwrap().pk_lookup(&[Value::Int(0)]).unwrap();
        db.table_mut(t).unwrap().delete(rid).unwrap();
        let schema2 = Schema::keyless(vec![Column::new("v", DataType::Int)]).unwrap();
        let t2 = db.create_table("t2", schema2).unwrap();
        db.table_mut(t2)
            .unwrap()
            .insert(vec![Value::Int(9)])
            .unwrap();
        let key1 = SnapshotKey {
            last_txn: Some(TxnId::new(12)),
            last_batch: None,
            clock_micros: 200,
        };
        let d2 = SnapshotDelta::capture(&db, key1, 2, Some(TxnId::new(15)), None, 300);
        d2.write_to(&delta_path(2)).unwrap();

        let (loaded, applied) = Snapshot::read_chain(&base_path, delta_path).unwrap();
        assert_eq!(applied, 2);
        assert_eq!(loaded.last_txn, Some(TxnId::new(15)));
        assert_eq!(loaded.clock_micros, 300);
        // Byte-identical to a fresh full capture of the live database.
        let live = Snapshot::capture(&db, Some(TxnId::new(15)), None, 300);
        assert_eq!(loaded.encode_binary(), live.encode_binary());
        fs::remove_dir_all(dir).ok();
    }

    /// Stale deltas left behind by a full-image rewrite (crash before
    /// cleanup) must not splice into the new chain: their base key names
    /// the superseded image.
    #[test]
    fn stale_delta_after_full_rewrite_is_ignored() {
        let dir = tempdir();
        let base_path = dir.join("snapshot.dat");
        let delta_path = |k: u64| dir.join(format!("snapshot.d{k}.dat"));

        let mut db = sample_db();
        let old_base = Snapshot::capture(&db, Some(TxnId::new(1)), None, 10);
        old_base
            .write_to(&base_path, DurabilityFormat::Binary)
            .unwrap();
        db.enable_change_tracking();
        let t = db.resolve("t").unwrap();
        db.table_mut(t)
            .unwrap()
            .insert(vec![Value::Int(50), Value::Text("x".into())])
            .unwrap();
        SnapshotDelta::capture(&db, old_base.key(), 1, Some(TxnId::new(2)), None, 20)
            .write_to(&delta_path(1))
            .unwrap();

        // Full rewrite at a later point; the old d1 is now stale.
        db.table_mut(t)
            .unwrap()
            .insert(vec![Value::Int(51), Value::Text("y".into())])
            .unwrap();
        let new_base = Snapshot::capture(&db, Some(TxnId::new(5)), None, 50);
        new_base
            .write_to(&base_path, DurabilityFormat::Binary)
            .unwrap();

        let (loaded, applied) = Snapshot::read_chain(&base_path, delta_path).unwrap();
        assert_eq!(applied, 0, "stale delta must not apply");
        assert_eq!(loaded.last_txn, Some(TxnId::new(5)));
        assert_eq!(loaded.database.table(t).unwrap().len(), 12);
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn corrupt_delta_is_a_loud_error() {
        let dir = tempdir();
        let base_path = dir.join("snapshot.dat");
        let delta_path = |k: u64| dir.join(format!("snapshot.d{k}.dat"));
        let mut db = sample_db();
        let base = Snapshot::capture(&db, Some(TxnId::new(1)), None, 10);
        base.write_to(&base_path, DurabilityFormat::Binary).unwrap();
        db.enable_change_tracking();
        let t = db.resolve("t").unwrap();
        db.table_mut(t)
            .unwrap()
            .insert(vec![Value::Int(77), Value::Text("z".into())])
            .unwrap();
        SnapshotDelta::capture(&db, base.key(), 1, Some(TxnId::new(2)), None, 20)
            .write_to(&delta_path(1))
            .unwrap();
        let mut bytes = fs::read(delta_path(1)).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(delta_path(1), &bytes).unwrap();
        // The log may already be GC'd against this delta; dropping it
        // silently would lose data, so this must not fall back.
        let err = Snapshot::read_chain(&base_path, delta_path).unwrap_err();
        assert_eq!(err.kind(), "recovery");
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn delta_where_full_expected_rejected() {
        let dir = tempdir();
        let db = sample_db();
        let key = SnapshotKey {
            last_txn: None,
            last_batch: None,
            clock_micros: 0,
        };
        let delta = SnapshotDelta::capture(&db, key, 1, Some(TxnId::new(1)), None, 5);
        let path = dir.join("masquerade.dat");
        delta.write_to(&path).unwrap();
        let err = Snapshot::read_from(&path).unwrap_err();
        assert_eq!(err.kind(), "recovery");
        assert!(err.to_string().contains("kind"), "{err}");
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn version_mismatch_rejected() {
        let dir = tempdir();
        let path = dir.join("bad.json");
        let db = Database::new();
        let mut snap = Snapshot::capture(&db, None, None, 0);
        snap.version = 999;
        // (JSON envelope: the binary header carries its own version.)
        // Bypass write_to's implicit current-version (capture sets it; we
        // overwrote it) — write manually.
        fs::write(&path, serde_json::to_string(&snap).unwrap()).unwrap();
        let err = Snapshot::read_from(&path).unwrap_err();
        assert_eq!(err.kind(), "recovery");
        fs::remove_dir_all(dir).ok();
    }
}
