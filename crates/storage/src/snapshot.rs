//! Whole-partition snapshots.
//!
//! H-Store's fault tolerance combines command logging with periodic
//! snapshots (Malviya et al., ICDE 2014 — the paper's reference 7).
//! S-Store inherits that machinery; the recovery module in `sstore-txn`
//! loads the latest snapshot and replays the command log from there.
//!
//! Two on-disk formats are live ([`sstore_common::DurabilityFormat`]):
//!
//! * **Binary** (default): a `SSNP` magic + version header, then CRC32
//!   frames — one metadata frame (envelope fields + the catalog through
//!   the serde-tree bridge) followed by one frame per table in the
//!   compact value codec (`sstore_common::codec`). Row encoding borrows
//!   the shared COW cells, so capturing + encoding never deep-copies
//!   tuples.
//! * **Json**: the legacy versioned JSON envelope, kept for back-compat
//!   reads of pre-binary durability dirs and the E6 json-vs-binary
//!   benchmarks.
//!
//! [`Snapshot::read_from`] sniffs the magic, so either format loads
//! transparently. The envelope records enough metadata (`last_txn`,
//! `last_batch`, `clock_micros`) for replay to resume exactly.

use crate::database::Database;
use crate::table::Table;
use serde::{Deserialize, Serialize};
use sstore_common::codec::{self, FrameRead};
use sstore_common::{BatchId, DurabilityFormat, Error, Result, TxnId};
use std::fs;
use std::io::Write;
use std::path::Path;

/// Snapshot format version; bumped on breaking layout changes. The binary
/// format carries its own version in the file header
/// ([`codec::CODEC_VERSION`]); this constant versions the JSON envelope.
pub const SNAPSHOT_VERSION: u32 = 1;

/// A consistent point-in-time image of one partition.
#[derive(Debug, Serialize, Deserialize)]
pub struct Snapshot {
    /// Format version (must equal [`SNAPSHOT_VERSION`]).
    pub version: u32,
    /// Highest transaction id included in the image.
    pub last_txn: Option<TxnId>,
    /// Highest border-input batch id fully applied in the image.
    pub last_batch: Option<BatchId>,
    /// Logical clock at snapshot time.
    pub clock_micros: i64,
    /// The data.
    pub database: Database,
}

impl Snapshot {
    /// Capture the current state.
    pub fn capture(
        db: &Database,
        last_txn: Option<TxnId>,
        last_batch: Option<BatchId>,
        clock_micros: i64,
    ) -> Self {
        Snapshot {
            version: SNAPSHOT_VERSION,
            last_txn,
            last_batch,
            clock_micros,
            database: db.clone(),
        }
    }

    /// Write to `path` atomically (write temp + rename) in `format`.
    pub fn write_to(&self, path: &Path, format: DurabilityFormat) -> Result<()> {
        let bytes = match format {
            DurabilityFormat::Binary => self.encode_binary(),
            DurabilityFormat::Json => serde_json::to_string(self)
                .map_err(|e| Error::Io(format!("snapshot encode: {e}")))?
                .into_bytes(),
        };
        let tmp = path.with_extension("tmp");
        {
            let mut file = fs::File::create(&tmp)?;
            file.write_all(&bytes)?;
            file.sync_all()?;
        }
        fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Load from `path`, sniffing the format by its magic and verifying
    /// the version. Any codec or checksum failure surfaces as a recovery
    /// error: snapshots are written atomically (temp + rename), so unlike
    /// a command-log tail there is no benign torn-write case.
    pub fn read_from(path: &Path) -> Result<Snapshot> {
        let bytes = fs::read(path)?;
        if codec::has_magic(&bytes, codec::SNAPSHOT_MAGIC) {
            return Self::decode_binary(&bytes)
                .map_err(|e| Error::Recovery(format!("snapshot decode: {e}")));
        }
        let text = std::str::from_utf8(&bytes)
            .map_err(|e| Error::Recovery(format!("snapshot decode: {e}")))?;
        let snap: Snapshot = serde_json::from_str(text)
            .map_err(|e| Error::Recovery(format!("snapshot decode: {e}")))?;
        if snap.version != SNAPSHOT_VERSION {
            return Err(Error::Recovery(format!(
                "snapshot version {} unsupported (expected {SNAPSHOT_VERSION})",
                snap.version
            )));
        }
        Ok(snap)
    }

    fn encode_binary(&self) -> Vec<u8> {
        let mut out = Vec::new();
        codec::put_file_header(&mut out, codec::SNAPSHOT_MAGIC);
        // Metadata frame: envelope fields + catalog + table count.
        let meta = codec::begin_frame(&mut out);
        encode_opt_u64(&mut out, self.last_txn.map(TxnId::raw));
        encode_opt_u64(&mut out, self.last_batch.map(BatchId::raw));
        codec::put_ivarint(&mut out, self.clock_micros);
        codec::put_bytes(&mut out, &codec::to_bytes(self.database.catalog()));
        codec::put_uvarint(&mut out, self.database.tables().len() as u64);
        codec::end_frame(&mut out, meta);
        // One frame per table, TableId order.
        for table in self.database.tables() {
            let f = codec::begin_frame(&mut out);
            table.encode_binary(&mut out);
            codec::end_frame(&mut out, f);
        }
        out
    }

    fn decode_binary(bytes: &[u8]) -> Result<Snapshot> {
        let mut r = codec::Reader::new(bytes);
        codec::check_file_header(&mut r, codec::SNAPSHOT_MAGIC)?;
        let meta = next_frame(&mut r)?;
        let mut m = codec::Reader::new(meta);
        let last_txn = decode_opt_u64(&mut m)?.map(TxnId::new);
        let last_batch = decode_opt_u64(&mut m)?.map(BatchId::new);
        let clock_micros = m.ivarint()?;
        let catalog = codec::from_bytes(m.bytes()?)?;
        let table_count = m.uvarint()? as usize;
        let mut tables = Vec::with_capacity(table_count.min(bytes.len()));
        for i in 0..table_count {
            let payload = next_frame(&mut r)
                .map_err(|e| Error::Codec(format!("table {i}/{table_count}: {e}")))?;
            let mut tr = codec::Reader::new(payload);
            tables.push(Table::decode_binary(&mut tr)?);
        }
        Ok(Snapshot {
            version: SNAPSHOT_VERSION,
            last_txn,
            last_batch,
            clock_micros,
            database: Database::from_parts(catalog, tables),
        })
    }
}

fn encode_opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
    match v {
        None => out.push(0),
        Some(v) => {
            out.push(1);
            codec::put_uvarint(out, v);
        }
    }
}

fn decode_opt_u64(r: &mut codec::Reader<'_>) -> Result<Option<u64>> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(r.uvarint()?)),
        tag => Err(Error::Codec(format!("bad option tag {tag}"))),
    }
}

/// Read one frame that must be complete and valid (snapshot context).
fn next_frame<'a>(r: &mut codec::Reader<'a>) -> Result<&'a [u8]> {
    match codec::read_frame(r) {
        FrameRead::Frame(payload) => Ok(payload),
        FrameRead::Eof | FrameRead::Torn { .. } => Err(Error::Codec(
            "snapshot truncated (missing frame)".to_string(),
        )),
        FrameRead::Corrupt { offset, detail } => Err(Error::Codec(format!(
            "snapshot corrupted at byte {offset}: {detail}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sstore_common::{Column, DataType, Schema, Value};

    fn tempdir() -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "sstore-snap-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        fs::create_dir_all(&p).unwrap();
        p
    }

    fn sample_db() -> Database {
        let mut db = Database::new();
        let schema = Schema::new(
            vec![
                Column::new("id", DataType::Int),
                Column::new("name", DataType::Text),
            ],
            &["id"],
        )
        .unwrap();
        let t = db.create_table("t", schema).unwrap();
        for i in 0..10 {
            db.table_mut(t)
                .unwrap()
                .insert(vec![Value::Int(i), Value::Text(format!("row{i}"))])
                .unwrap();
        }
        db
    }

    #[test]
    fn snapshot_round_trip_both_formats() {
        for format in [DurabilityFormat::Binary, DurabilityFormat::Json] {
            let dir = tempdir();
            let path = dir.join("snap.dat");
            let db = sample_db();
            let snap = Snapshot::capture(&db, Some(TxnId::new(7)), Some(BatchId::new(3)), 123);
            snap.write_to(&path, format).unwrap();

            let loaded = Snapshot::read_from(&path).unwrap();
            assert_eq!(loaded.last_txn, Some(TxnId::new(7)));
            assert_eq!(loaded.last_batch, Some(BatchId::new(3)));
            assert_eq!(loaded.clock_micros, 123);
            let t = loaded.database.resolve("t").unwrap();
            assert_eq!(loaded.database.table(t).unwrap().len(), 10);
            // Indexes survive the round trip.
            assert!(loaded
                .database
                .table(t)
                .unwrap()
                .pk_lookup(&[Value::Int(5)])
                .is_some());
            fs::remove_dir_all(dir).ok();
        }
    }

    #[test]
    fn binary_and_json_load_identical_state() {
        let dir = tempdir();
        let db = sample_db();
        let snap = Snapshot::capture(&db, Some(TxnId::new(2)), None, 5);
        let bin = dir.join("snap.bin");
        let json = dir.join("snap.json");
        snap.write_to(&bin, DurabilityFormat::Binary).unwrap();
        snap.write_to(&json, DurabilityFormat::Json).unwrap();
        let from_bin = Snapshot::read_from(&bin).unwrap();
        let from_json = Snapshot::read_from(&json).unwrap();
        assert_eq!(
            serde_json::to_string(&from_bin.database).unwrap(),
            serde_json::to_string(&from_json.database).unwrap()
        );
        // The binary image is substantially smaller than the JSON one.
        let bin_len = fs::metadata(&bin).unwrap().len();
        let json_len = fs::metadata(&json).unwrap().len();
        assert!(
            bin_len * 2 < json_len,
            "binary snapshot {bin_len}B not < half of JSON {json_len}B"
        );
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn corrupted_binary_snapshot_is_a_clear_error() {
        let dir = tempdir();
        let path = dir.join("snap.dat");
        let snap = Snapshot::capture(&sample_db(), None, None, 0);
        snap.write_to(&path, DurabilityFormat::Binary).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        let err = Snapshot::read_from(&path).unwrap_err();
        assert_eq!(err.kind(), "recovery");
        assert!(err.to_string().contains("snapshot"), "{err}");
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn missing_snapshot_is_an_error() {
        let dir = tempdir();
        let err = Snapshot::read_from(&dir.join("nope.json")).unwrap_err();
        assert_eq!(err.kind(), "io");
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn version_mismatch_rejected() {
        let dir = tempdir();
        let path = dir.join("bad.json");
        let db = Database::new();
        let mut snap = Snapshot::capture(&db, None, None, 0);
        snap.version = 999;
        // (JSON envelope: the binary header carries its own version.)
        // Bypass write_to's implicit current-version (capture sets it; we
        // overwrote it) — write manually.
        fs::write(&path, serde_json::to_string(&snap).unwrap()).unwrap();
        let err = Snapshot::read_from(&path).unwrap_err();
        assert_eq!(err.kind(), "recovery");
        fs::remove_dir_all(dir).ok();
    }
}
