//! Whole-partition snapshots.
//!
//! H-Store's fault tolerance combines command logging with periodic
//! snapshots (Malviya et al., ICDE 2014 — the paper's reference 7).
//! S-Store inherits that machinery; the recovery module in `sstore-txn`
//! loads the latest snapshot and replays the command log from there.
//!
//! The format is a versioned JSON envelope. JSON (via `serde_json`) keeps
//! snapshots debuggable in tests; the envelope records enough metadata
//! (`last_txn`, `last_batch`, `clock_micros`) for replay to resume exactly.

use crate::database::Database;
use serde::{Deserialize, Serialize};
use sstore_common::{BatchId, Error, Result, TxnId};
use std::fs;
use std::io::{BufReader, BufWriter, Write};
use std::path::Path;

/// Snapshot format version; bumped on breaking layout changes.
pub const SNAPSHOT_VERSION: u32 = 1;

/// A consistent point-in-time image of one partition.
#[derive(Debug, Serialize, Deserialize)]
pub struct Snapshot {
    /// Format version (must equal [`SNAPSHOT_VERSION`]).
    pub version: u32,
    /// Highest transaction id included in the image.
    pub last_txn: Option<TxnId>,
    /// Highest border-input batch id fully applied in the image.
    pub last_batch: Option<BatchId>,
    /// Logical clock at snapshot time.
    pub clock_micros: i64,
    /// The data.
    pub database: Database,
}

impl Snapshot {
    /// Capture the current state.
    pub fn capture(
        db: &Database,
        last_txn: Option<TxnId>,
        last_batch: Option<BatchId>,
        clock_micros: i64,
    ) -> Self {
        Snapshot {
            version: SNAPSHOT_VERSION,
            last_txn,
            last_batch,
            clock_micros,
            database: db.clone(),
        }
    }

    /// Write to `path` atomically (write temp + rename).
    pub fn write_to(&self, path: &Path) -> Result<()> {
        let tmp = path.with_extension("tmp");
        {
            let file = fs::File::create(&tmp)?;
            let mut w = BufWriter::new(file);
            serde_json::to_writer(&mut w, self)
                .map_err(|e| Error::Io(format!("snapshot encode: {e}")))?;
            w.flush()?;
            w.get_ref().sync_all()?;
        }
        fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Load from `path`, verifying the version.
    pub fn read_from(path: &Path) -> Result<Snapshot> {
        let file = fs::File::open(path)?;
        let snap: Snapshot = serde_json::from_reader(BufReader::new(file))
            .map_err(|e| Error::Recovery(format!("snapshot decode: {e}")))?;
        if snap.version != SNAPSHOT_VERSION {
            return Err(Error::Recovery(format!(
                "snapshot version {} unsupported (expected {SNAPSHOT_VERSION})",
                snap.version
            )));
        }
        Ok(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sstore_common::{Column, DataType, Schema, Value};

    fn tempdir() -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "sstore-snap-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        fs::create_dir_all(&p).unwrap();
        p
    }

    fn sample_db() -> Database {
        let mut db = Database::new();
        let schema = Schema::new(
            vec![
                Column::new("id", DataType::Int),
                Column::new("name", DataType::Text),
            ],
            &["id"],
        )
        .unwrap();
        let t = db.create_table("t", schema).unwrap();
        for i in 0..10 {
            db.table_mut(t)
                .unwrap()
                .insert(vec![Value::Int(i), Value::Text(format!("row{i}"))])
                .unwrap();
        }
        db
    }

    #[test]
    fn snapshot_round_trip() {
        let dir = tempdir();
        let path = dir.join("snap.json");
        let db = sample_db();
        let snap = Snapshot::capture(&db, Some(TxnId::new(7)), Some(BatchId::new(3)), 123);
        snap.write_to(&path).unwrap();

        let loaded = Snapshot::read_from(&path).unwrap();
        assert_eq!(loaded.last_txn, Some(TxnId::new(7)));
        assert_eq!(loaded.last_batch, Some(BatchId::new(3)));
        assert_eq!(loaded.clock_micros, 123);
        let t = loaded.database.resolve("t").unwrap();
        assert_eq!(loaded.database.table(t).unwrap().len(), 10);
        // Indexes survive the round trip.
        assert!(loaded
            .database
            .table(t)
            .unwrap()
            .pk_lookup(&[Value::Int(5)])
            .is_some());
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn missing_snapshot_is_an_error() {
        let dir = tempdir();
        let err = Snapshot::read_from(&dir.join("nope.json")).unwrap_err();
        assert_eq!(err.kind(), "io");
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn version_mismatch_rejected() {
        let dir = tempdir();
        let path = dir.join("bad.json");
        let db = Database::new();
        let mut snap = Snapshot::capture(&db, None, None, 0);
        snap.version = 999;
        // Bypass write_to's implicit current-version (capture sets it; we
        // overwrote it) — write manually.
        fs::write(&path, serde_json::to_string(&snap).unwrap()).unwrap();
        let err = Snapshot::read_from(&path).unwrap_err();
        assert_eq!(err.kind(), "recovery");
        fs::remove_dir_all(dir).ok();
    }
}
