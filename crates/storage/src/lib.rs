//! # sstore-storage
//!
//! The in-memory storage engine underneath S-Store's execution engine —
//! the H-Store-equivalent substrate described in DESIGN.md §1.1.
//!
//! * [`table::Table`] — slot-based heap tables with primary-key and
//!   secondary indexes and stable row ids (stable ids make undo exact).
//! * [`catalog::Catalog`] — names, schemas, and *kinds* (base table,
//!   stream, window): the paper's "uniform state management" means all
//!   three are the same storage structure with different lifecycle rules.
//! * [`database::Database`] — one partition's worth of state.
//! * [`undo::UndoLog`] — per-transaction undo for atomic aborts.
//! * [`snapshot`] — whole-partition serialization for checkpointing.

pub mod catalog;
pub mod database;
pub mod index;
pub mod snapshot;
pub mod table;
pub mod undo;

pub use catalog::{
    Catalog, StreamMeta, TableKind, TableMeta, WindowAggState, WindowKind, WindowMeta, WindowSpec,
};
pub use database::Database;
pub use index::{IndexDef, RowId};
pub use table::{SlotOp, Table, TableDirt};
pub use undo::{UndoLog, UndoOp};
