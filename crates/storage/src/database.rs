//! One partition's state: catalog plus the physical tables.

use crate::catalog::{Catalog, TableKind, WindowSpec};
use crate::table::Table;
use serde::{Deserialize, Serialize};
use sstore_common::{Error, Result, Schema, TableId};

/// All the data owned by one partition.
///
/// H-Store executes transactions serially per partition, so `Database` is
/// deliberately `&mut`-threaded (no interior mutability on the data path);
/// the partition engine owns it behind a single-threaded executor.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Database {
    catalog: Catalog,
    /// Physical tables, indexed by `TableId` position.
    tables: Vec<Table>,
}

impl Database {
    /// Empty partition.
    pub fn new() -> Self {
        Database::default()
    }

    /// The catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutable catalog access (lifecycle counters, window binding).
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    fn create(&mut self, id: TableId) -> Result<TableId> {
        let meta = self
            .catalog
            .meta(id)
            .ok_or_else(|| Error::Internal(format!("fresh id {id} missing from catalog")))?;
        let schema = Catalog::storage_schema(meta)?;
        debug_assert_eq!(self.tables.len(), id.raw() as usize);
        self.tables.push(Table::new(meta.name.clone(), schema));
        Ok(id)
    }

    /// Create a base table.
    pub fn create_table(&mut self, name: &str, schema: Schema) -> Result<TableId> {
        let id = self.catalog.add_table(name, schema)?;
        self.create(id)
    }

    /// Create a stream (hidden `__batch`/`__seq` columns added).
    pub fn create_stream(&mut self, name: &str, schema: Schema) -> Result<TableId> {
        let id = self.catalog.add_stream(name, schema)?;
        self.create(id)
    }

    /// Create a window (hidden `__seq`/`__ts` columns added).
    pub fn create_window(
        &mut self,
        name: &str,
        schema: Schema,
        spec: WindowSpec,
    ) -> Result<TableId> {
        let id = self.catalog.add_window(name, schema, spec)?;
        self.create(id)
    }

    /// Table by id.
    pub fn table(&self, id: TableId) -> Result<&Table> {
        self.tables
            .get(id.raw() as usize)
            .ok_or_else(|| Error::NotFound(format!("table {id}")))
    }

    /// Mutable table by id.
    pub fn table_mut(&mut self, id: TableId) -> Result<&mut Table> {
        self.tables
            .get_mut(id.raw() as usize)
            .ok_or_else(|| Error::NotFound(format!("table {id}")))
    }

    /// Resolve a table name to an id.
    pub fn resolve(&self, name: &str) -> Result<TableId> {
        self.catalog
            .resolve(name)
            .ok_or_else(|| Error::NotFound(format!("table `{name}`")))
    }

    /// Table by name.
    pub fn table_by_name(&self, name: &str) -> Result<&Table> {
        self.table(self.resolve(name)?)
    }

    /// Number of tables (all kinds).
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// All physical tables, in `TableId` order (snapshot encoding).
    pub(crate) fn tables(&self) -> &[Table] {
        &self.tables
    }

    /// Give every table a fresh change journal. Called right after a
    /// snapshot image (full or delta) lands on disk — at that point every
    /// table's state is reachable from the chain — and after a restore,
    /// so the journals always describe "changes since the last image".
    /// Tables created *between* images have no journal and therefore
    /// embed as full images inside the next delta.
    pub fn enable_change_tracking(&mut self) {
        for t in &mut self.tables {
            t.set_journaling(true);
        }
    }

    /// Reassemble a database from decoded snapshot parts. The caller
    /// (snapshot loading) is responsible for the catalog/tables alignment
    /// invariant; [`crate::snapshot::Snapshot::read_from`] checks counts.
    pub(crate) fn from_parts(catalog: Catalog, tables: Vec<Table>) -> Database {
        Database { catalog, tables }
    }

    /// Disassemble into snapshot parts (delta application rebuilds the
    /// table vector in place, then reassembles with the delta's catalog).
    pub(crate) fn into_parts(self) -> (Catalog, Vec<Table>) {
        (self.catalog, self.tables)
    }

    /// The kind of a table.
    pub fn kind(&self, id: TableId) -> Result<&TableKind> {
        self.catalog
            .meta(id)
            .map(|m| &m.kind)
            .ok_or_else(|| Error::NotFound(format!("table {id}")))
    }

    /// Total approximate bytes across all tables (experiment E7).
    pub fn approx_bytes(&self) -> usize {
        self.tables.iter().map(Table::approx_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{WindowKind, COL_BATCH};
    use sstore_common::{Column, DataType, Value};

    fn schema() -> Schema {
        Schema::keyless(vec![Column::new("v", DataType::Int)]).unwrap()
    }

    #[test]
    fn create_and_resolve() {
        let mut db = Database::new();
        let t = db.create_table("t", schema()).unwrap();
        assert_eq!(db.resolve("T").unwrap(), t);
        assert_eq!(db.table_by_name("t").unwrap().name(), "t");
        assert!(db.resolve("nope").is_err());
        assert_eq!(db.table_count(), 1);
    }

    #[test]
    fn stream_storage_schema_has_hidden_cols() {
        let mut db = Database::new();
        let s = db.create_stream("s", schema()).unwrap();
        let table = db.table(s).unwrap();
        assert_eq!(table.schema().arity(), 3);
        assert!(table.schema().column_index(COL_BATCH).is_some());
        assert!(db.kind(s).unwrap().is_stream());
    }

    #[test]
    fn window_creation() {
        let mut db = Database::new();
        let w = db
            .create_window(
                "w",
                schema(),
                WindowSpec {
                    kind: WindowKind::Tuple { size: 10, slide: 2 },
                    owner: None,
                },
            )
            .unwrap();
        assert!(db.kind(w).unwrap().is_window());
        assert_eq!(db.table(w).unwrap().schema().arity(), 3);
    }

    #[test]
    fn duplicate_name_rejected_across_kinds() {
        let mut db = Database::new();
        db.create_table("x", schema()).unwrap();
        assert!(db.create_stream("x", schema()).is_err());
        // Catalog and physical tables stay aligned after the failure.
        let y = db.create_table("y", schema()).unwrap();
        db.table_mut(y)
            .unwrap()
            .insert(vec![Value::Int(1)])
            .unwrap();
        assert_eq!(db.table(y).unwrap().len(), 1);
    }
}
