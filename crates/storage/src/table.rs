//! Slot-based heap tables.
//!
//! A [`Table`] stores rows in slots addressed by stable [`RowId`]s, keeps
//! the primary-key index and any secondary indexes consistent on every
//! mutation, and exposes exactly the raw operations the undo log needs to
//! reverse: `insert` ↔ `delete`, `update` ↔ `update`, and `restore` (which
//! reinserts a deleted row into its original slot).

use crate::index::{Index, IndexDef, RowId};
use serde::{Deserialize, Serialize};
use sstore_common::{codec, Error, Result, Row, Schema, Value};

/// One heap table (also the physical representation of streams and windows).
///
/// Serialization goes through [`TableRepr`] so the transient change
/// journal (delta-snapshot support) never reaches the on-disk JSON form —
/// the legacy envelope layout is unchanged.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(into = "TableRepr", try_from = "TableRepr")]
pub struct Table {
    name: String,
    schema: Schema,
    /// Slot array; `None` marks a free slot.
    slots: Vec<Option<Row>>,
    /// Free slot ids available for reuse.
    free: Vec<RowId>,
    /// Live row count (slots minus free).
    live: usize,
    /// Primary-key index (unique) when the schema has a PK.
    pk_index: Option<Index>,
    /// Secondary indexes.
    indexes: Vec<Index>,
    /// Change journal for delta snapshots; `None` = tracking off. Never
    /// serialized (runtime bookkeeping, not state).
    journal: Option<Journal>,
}

/// Serialization mirror of [`Table`]: exactly the persistent fields, in
/// the pre-delta-snapshot layout, so JSON snapshots stay byte-compatible.
#[derive(Serialize, Deserialize)]
pub struct TableRepr {
    name: String,
    schema: Schema,
    slots: Vec<Option<Row>>,
    free: Vec<RowId>,
    live: usize,
    pk_index: Option<Index>,
    indexes: Vec<Index>,
}

impl From<Table> for TableRepr {
    fn from(t: Table) -> TableRepr {
        TableRepr {
            name: t.name,
            schema: t.schema,
            slots: t.slots,
            free: t.free,
            live: t.live,
            pk_index: t.pk_index,
            indexes: t.indexes,
        }
    }
}

// The vendored serde derive only supports `try_from = "T"`, not
// `from = "T"`, so the conversion must be TryFrom even though it
// cannot fail.
#[allow(clippy::infallible_try_from)]
impl TryFrom<TableRepr> for Table {
    type Error = std::convert::Infallible;
    fn try_from(r: TableRepr) -> std::result::Result<Table, Self::Error> {
        Ok(Table {
            name: r.name,
            schema: r.schema,
            slots: r.slots,
            free: r.free,
            live: r.live,
            pk_index: r.pk_index,
            indexes: r.indexes,
            journal: None,
        })
    }
}

/// One journaled slot mutation — the exact physical operations the table
/// mutators perform, in execution order. Replaying a journal against the
/// base image drives the *same* mutators, so slot assignment, free-list
/// order, and index bucket order come out byte-identical to the live
/// table (a positional diff could not reproduce bucket order).
#[derive(Debug, Clone, PartialEq)]
pub enum SlotOp {
    /// `insert` filled `rid` with `row`.
    Insert {
        /// Slot the insert chose (replay asserts the same choice).
        rid: RowId,
        /// The validated row.
        row: Row,
    },
    /// `delete` emptied `rid`.
    Delete {
        /// Slot that was emptied.
        rid: RowId,
    },
    /// `update` replaced the row at `rid`.
    Update {
        /// Slot that was updated.
        rid: RowId,
        /// The new (validated) row.
        row: Row,
    },
    /// `restore` re-filled `rid` (undo path).
    Restore {
        /// Slot that was re-filled.
        rid: RowId,
        /// The restored row.
        row: Row,
    },
    /// `truncate` cleared the table (ops before it are superseded).
    Truncate,
}

const OP_INSERT: u8 = 0;
const OP_DELETE: u8 = 1;
const OP_UPDATE: u8 = 2;
const OP_RESTORE: u8 = 3;
const OP_TRUNCATE: u8 = 4;

impl SlotOp {
    /// Append the compact binary encoding (delta snapshot frames).
    pub fn encode_binary(&self, out: &mut Vec<u8>) {
        match self {
            SlotOp::Insert { rid, row } => {
                out.push(OP_INSERT);
                codec::put_uvarint(out, *rid);
                codec::encode_row(row, out);
            }
            SlotOp::Delete { rid } => {
                out.push(OP_DELETE);
                codec::put_uvarint(out, *rid);
            }
            SlotOp::Update { rid, row } => {
                out.push(OP_UPDATE);
                codec::put_uvarint(out, *rid);
                codec::encode_row(row, out);
            }
            SlotOp::Restore { rid, row } => {
                out.push(OP_RESTORE);
                codec::put_uvarint(out, *rid);
                codec::encode_row(row, out);
            }
            SlotOp::Truncate => out.push(OP_TRUNCATE),
        }
    }

    /// Decode one op from a delta frame.
    pub fn decode_binary(r: &mut codec::Reader<'_>) -> Result<SlotOp> {
        Ok(match r.u8()? {
            OP_INSERT => SlotOp::Insert {
                rid: r.uvarint()?,
                row: codec::decode_row(r)?,
            },
            OP_DELETE => SlotOp::Delete { rid: r.uvarint()? },
            OP_UPDATE => SlotOp::Update {
                rid: r.uvarint()?,
                row: codec::decode_row(r)?,
            },
            OP_RESTORE => SlotOp::Restore {
                rid: r.uvarint()?,
                row: codec::decode_row(r)?,
            },
            OP_TRUNCATE => SlotOp::Truncate,
            tag => return Err(Error::Codec(format!("unknown slot-op tag {tag}"))),
        })
    }
}

/// Accumulated changes since the last snapshot image.
#[derive(Debug, Clone, Default)]
struct Journal {
    ops: Vec<SlotOp>,
    /// Structural change (index DDL) or op overflow: the next delta must
    /// carry a full image of this table instead of an op replay.
    full: bool,
}

/// What the next delta image must carry for a table.
#[derive(Debug)]
pub enum TableDirt<'a> {
    /// Untouched since the last image — omit from the delta.
    Clean,
    /// Replay these ops against the base to reproduce the live state.
    Ops(&'a [SlotOp]),
    /// Journal unavailable (tracking started after the base, structural
    /// change, or overflow): embed a full image.
    Full,
}

impl Table {
    /// Create an empty table. Builds the PK index automatically.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        let pk_index = if schema.has_pk() {
            Some(Index::new(IndexDef {
                name: "__pk".into(),
                key_cols: schema.pk_indices().to_vec(),
                unique: true,
                ordered: true,
            }))
        } else {
            None
        };
        Table {
            name: name.into(),
            schema,
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            pk_index,
            indexes: Vec::new(),
            journal: None,
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Binary snapshot encoding of the whole table. The schema goes
    /// through the serde-tree bridge (cold metadata); slots and indexes —
    /// the bulk — use the compact value codec, with row encoding borrowing
    /// the shared COW cells. The free-slot stack is serialized in order:
    /// recovery must reuse slots in exactly the pre-crash order for
    /// replay to assign identical row ids.
    pub fn encode_binary(&self, out: &mut Vec<u8>) {
        codec::put_str(out, &self.name);
        self.schema.encode_binary(out);
        codec::put_uvarint(out, self.slots.len() as u64);
        for slot in &self.slots {
            match slot {
                None => out.push(0),
                Some(row) => {
                    out.push(1);
                    codec::encode_row(row, out);
                }
            }
        }
        codec::put_uvarint(out, self.free.len() as u64);
        for &rid in &self.free {
            codec::put_uvarint(out, rid);
        }
        match &self.pk_index {
            None => out.push(0),
            Some(pk) => {
                out.push(1);
                pk.encode_binary(out);
            }
        }
        codec::put_uvarint(out, self.indexes.len() as u64);
        for ix in &self.indexes {
            ix.encode_binary(out);
        }
    }

    /// Decode a table encoded by [`Table::encode_binary`]. `version` is
    /// the snapshot file-header version: v1 images carried the schema
    /// through the serde-tree bridge; v2+ encode it directly.
    pub fn decode_binary(r: &mut codec::Reader<'_>, version: u32) -> Result<Table> {
        let name = r.str()?.to_string();
        let schema: Schema = if version >= 2 {
            Schema::decode_binary(r)?
        } else {
            codec::from_bytes(r.bytes()?)?
        };
        let n_slots = r.uvarint()? as usize;
        let mut slots = Vec::with_capacity(n_slots.min(r.remaining()));
        let mut live = 0usize;
        for _ in 0..n_slots {
            match r.u8()? {
                0 => slots.push(None),
                1 => {
                    slots.push(Some(codec::decode_row(r)?));
                    live += 1;
                }
                tag => {
                    return Err(Error::Codec(format!(
                        "bad slot tag {tag} in table `{name}`"
                    )))
                }
            }
        }
        let n_free = r.uvarint()? as usize;
        let mut free = Vec::with_capacity(n_free.min(r.remaining()));
        for _ in 0..n_free {
            free.push(r.uvarint()?);
        }
        let pk_index = match r.u8()? {
            0 => None,
            1 => Some(Index::decode_binary(r, version)?),
            tag => {
                return Err(Error::Codec(format!(
                    "bad pk-index tag {tag} in table `{name}`"
                )))
            }
        };
        let n_indexes = r.uvarint()? as usize;
        let mut indexes = Vec::with_capacity(n_indexes.min(r.remaining()));
        for _ in 0..n_indexes {
            indexes.push(Index::decode_binary(r, version)?);
        }
        Ok(Table {
            name,
            schema,
            slots,
            free,
            live,
            pk_index,
            indexes,
            journal: None,
        })
    }

    /// Table schema (including any hidden columns).
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Add a secondary index over `key_cols`; backfills from existing rows.
    pub fn create_index(&mut self, def: IndexDef) -> Result<()> {
        if def.name == "__pk" || self.indexes.iter().any(|ix| ix.def.name == def.name) {
            return Err(Error::AlreadyExists(format!("index `{}`", def.name)));
        }
        if def.key_cols.iter().any(|&c| c >= self.schema.arity()) {
            return Err(Error::NotFound(format!(
                "index `{}` references a column outside the schema",
                def.name
            )));
        }
        let mut ix = Index::new(def);
        for (rid, slot) in self.slots.iter().enumerate() {
            if let Some(row) = slot {
                ix.insert(ix.key_of(row), rid as RowId)?;
            }
        }
        self.indexes.push(ix);
        // Structural change: an op replay against a base without this
        // index cannot reproduce it, so force a full image next delta.
        if let Some(j) = &mut self.journal {
            j.ops.clear();
            j.full = true;
        }
        Ok(())
    }

    /// Look up a secondary index by name.
    pub fn index(&self, name: &str) -> Option<&Index> {
        self.indexes.iter().find(|ix| ix.def.name == name)
    }

    /// All secondary indexes.
    pub fn indexes(&self) -> &[Index] {
        &self.indexes
    }

    /// Validate and insert a row; returns its stable row id.
    pub fn insert(&mut self, row: impl Into<Row>) -> Result<RowId> {
        let row = self.schema.validate(row)?;
        let rid = match self.free.pop() {
            Some(r) => r,
            None => {
                self.slots.push(None);
                (self.slots.len() - 1) as RowId
            }
        };
        if let Err(e) = self.index_insert(&row, rid) {
            // Slot was not filled yet; return it to the free list.
            self.free.push(rid);
            return Err(e);
        }
        if self.journal.is_some() {
            self.journal_record(SlotOp::Insert {
                rid,
                row: row.clone(),
            });
        }
        self.slots[rid as usize] = Some(row);
        self.live += 1;
        Ok(rid)
    }

    /// Delete by row id; returns the removed row (needed for undo).
    pub fn delete(&mut self, rid: RowId) -> Result<Row> {
        let row = self
            .slots
            .get_mut(rid as usize)
            .and_then(Option::take)
            .ok_or_else(|| Error::Internal(format!("delete of missing row {rid}")))?;
        self.index_remove(&row, rid)?;
        self.free.push(rid);
        self.live -= 1;
        self.journal_record(SlotOp::Delete { rid });
        Ok(row)
    }

    /// Replace the row at `rid`; returns the previous row (for undo).
    /// The returned old image is a shared handle (refcount bump, no copy).
    pub fn update(&mut self, rid: RowId, new_row: impl Into<Row>) -> Result<Row> {
        let new_row = self.schema.validate(new_row)?;
        let old = self
            .slots
            .get(rid as usize)
            .and_then(|s| s.as_ref())
            .cloned()
            .ok_or_else(|| Error::Internal(format!("update of missing row {rid}")))?;
        self.index_remove(&old, rid)?;
        if let Err(e) = self.index_insert(&new_row, rid) {
            // Roll the index change back so the table stays consistent.
            self.index_insert(&old, rid)
                .expect("reinserting old index entries cannot fail");
            return Err(e);
        }
        if self.journal.is_some() {
            self.journal_record(SlotOp::Update {
                rid,
                row: new_row.clone(),
            });
        }
        self.slots[rid as usize] = Some(new_row);
        Ok(old)
    }

    /// Reinsert a previously deleted row into its original slot (undo path).
    pub fn restore(&mut self, rid: RowId, row: Row) -> Result<()> {
        match self.slots.get(rid as usize) {
            None => {
                return Err(Error::Internal(format!(
                    "restore to out-of-range slot {rid}"
                )))
            }
            Some(Some(_)) => {
                return Err(Error::Internal(format!("restore to occupied slot {rid}")))
            }
            Some(None) => {}
        }
        // Undo bypasses validation: the row came out of this table.
        self.index_insert(&row, rid)?;
        if self.journal.is_some() {
            self.journal_record(SlotOp::Restore {
                rid,
                row: row.clone(),
            });
        }
        self.slots[rid as usize] = Some(row);
        if let Some(pos) = self.free.iter().position(|&f| f == rid) {
            self.free.swap_remove(pos);
        }
        self.live += 1;
        Ok(())
    }

    /// Fetch a row by id.
    pub fn get(&self, rid: RowId) -> Option<&Row> {
        self.slots.get(rid as usize).and_then(|s| s.as_ref())
    }

    /// Row ids matching a primary-key value.
    pub fn pk_lookup(&self, key: &[Value]) -> Option<RowId> {
        self.pk_index.as_ref()?.get(key).first().copied()
    }

    /// Row ids matching a secondary-index key. Returns a borrowed slice
    /// into the index bucket — no per-lookup allocation; callers that need
    /// to mutate while iterating must copy explicitly.
    pub fn index_lookup(&self, index_name: &str, key: &[Value]) -> Result<&[RowId]> {
        let ix = self
            .index(index_name)
            .ok_or_else(|| Error::NotFound(format!("index `{index_name}`")))?;
        Ok(ix.get(key))
    }

    /// Iterate over (row id, row) for all live rows, in slot order.
    /// Slot order equals insertion order for append-only tables (streams),
    /// which the stream layer relies on.
    pub fn scan(&self) -> impl Iterator<Item = (RowId, &Row)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|r| (i as RowId, r)))
    }

    /// Collect all live row ids (used by mutating scans that cannot hold a
    /// borrow across mutations).
    pub fn row_ids(&self) -> Vec<RowId> {
        self.scan().map(|(rid, _)| rid).collect()
    }

    /// Pivot the table's live rows into a columnar batch, in slot order
    /// (the same order `scan()` feeds the row interpreter). `needed`
    /// restricts which columns are materialized (`None` = all); pruned
    /// columns stay `None` in the batch so indices keep lining up with
    /// the schema.
    pub fn column_batch(&self, needed: Option<&[usize]>) -> sstore_vector::ColumnBatch {
        sstore_vector::build_batch(
            self.schema.arity(),
            self.live,
            needed,
            self.scan().map(|(_, r)| r.as_ref()),
        )
    }

    /// Remove every row. Keeps indexes defined but empty.
    pub fn truncate(&mut self) {
        self.slots.clear();
        self.free.clear();
        self.live = 0;
        if let Some(pk) = &mut self.pk_index {
            pk.clear();
        }
        for ix in &mut self.indexes {
            ix.clear();
        }
        self.journal_record(SlotOp::Truncate);
    }

    /// Record one op in the change journal (no-op when tracking is off).
    /// `Truncate` supersedes everything before it; an op count well past
    /// the slot count means replay would cost more than a full image, so
    /// the journal gives up and flags the table full.
    fn journal_record(&mut self, op: SlotOp) {
        let cap = self.slots.len() + 64;
        if let Some(j) = &mut self.journal {
            if j.full {
                return;
            }
            if matches!(op, SlotOp::Truncate) {
                j.ops.clear();
            }
            j.ops.push(op);
            if j.ops.len() > cap {
                j.ops.clear();
                j.full = true;
            }
        }
    }

    /// Turn change tracking on (fresh journal) or off.
    pub fn set_journaling(&mut self, on: bool) {
        self.journal = if on { Some(Journal::default()) } else { None };
    }

    /// True when a change journal is attached.
    pub fn journaling(&self) -> bool {
        self.journal.is_some()
    }

    /// Reset the journal after a successful image write; tracking stays on.
    pub fn clear_journal(&mut self) {
        if let Some(j) = &mut self.journal {
            j.ops.clear();
            j.full = false;
        }
    }

    /// What the next delta image must carry for this table.
    pub fn dirt(&self) -> TableDirt<'_> {
        match &self.journal {
            // Tracking never started for this table (e.g. created after
            // the chain base): only a full image is safe.
            None => TableDirt::Full,
            Some(j) if j.full => TableDirt::Full,
            Some(j) if j.ops.is_empty() => TableDirt::Clean,
            Some(j) => TableDirt::Ops(&j.ops),
        }
    }

    /// Re-execute one journaled op during delta replay. Drives the normal
    /// mutators so derived structures (indexes, free list) evolve exactly
    /// as they did live; `Insert` asserts the slot choice matches the
    /// journaled one (any divergence means the base image is wrong).
    pub fn apply_slot_op(&mut self, op: &SlotOp) -> Result<()> {
        match op {
            SlotOp::Insert { rid, row } => {
                let got = self.insert(row.clone())?;
                if got != *rid {
                    return Err(Error::Codec(format!(
                        "delta replay slot divergence in `{}`: journaled rid {rid}, got {got}",
                        self.name
                    )));
                }
            }
            SlotOp::Delete { rid } => {
                self.delete(*rid)?;
            }
            SlotOp::Update { rid, row } => {
                self.update(*rid, row.clone())?;
            }
            SlotOp::Restore { rid, row } => self.restore(*rid, row.clone())?,
            SlotOp::Truncate => self.truncate(),
        }
        Ok(())
    }

    fn index_insert(&mut self, row: &Row, rid: RowId) -> Result<()> {
        if let Some(pk) = &mut self.pk_index {
            let key = pk.key_of(row);
            pk.insert(key, rid).map_err(|_| {
                Error::Constraint(format!(
                    "duplicate primary key {:?} in table `{}`",
                    self.schema
                        .pk_indices()
                        .iter()
                        .map(|&i| row[i].to_string())
                        .collect::<Vec<_>>(),
                    self.name
                ))
            })?;
        }
        for i in 0..self.indexes.len() {
            let key = self.indexes[i].key_of(row);
            if let Err(e) = self.indexes[i].insert(key, rid) {
                // Unwind the partial index inserts.
                for j in 0..i {
                    let key = self.indexes[j].key_ref(row);
                    self.indexes[j]
                        .remove(&key, rid)
                        .expect("unwinding fresh index insert cannot fail");
                }
                if let Some(pk) = &mut self.pk_index {
                    let key = pk.key_ref(row);
                    pk.remove(&key, rid)
                        .expect("unwinding fresh pk insert cannot fail");
                }
                return Err(e);
            }
        }
        Ok(())
    }

    fn index_remove(&mut self, row: &Row, rid: RowId) -> Result<()> {
        if let Some(pk) = &mut self.pk_index {
            let key = pk.key_ref(row);
            pk.remove(&key, rid)?;
        }
        for ix in &mut self.indexes {
            let key = ix.key_ref(row);
            ix.remove(&key, rid)?;
        }
        Ok(())
    }

    /// Approximate memory footprint in bytes (rows only; used by the GC
    /// experiment E7 to show bounded memory on unbounded streams).
    pub fn approx_bytes(&self) -> usize {
        let mut total = self.slots.capacity() * std::mem::size_of::<Option<Row>>();
        for row in self.slots.iter().flatten() {
            total += row.len() * std::mem::size_of::<Value>();
            for v in row {
                if let Value::Text(s) = v {
                    total += s.capacity();
                }
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sstore_common::{Column, DataType};

    fn table() -> Table {
        let schema = Schema::new(
            vec![
                Column::new("id", DataType::Int),
                Column::new("name", DataType::Text),
            ],
            &["id"],
        )
        .unwrap();
        Table::new("t", schema)
    }

    fn row(id: i64, name: &str) -> Row {
        vec![Value::Int(id), Value::Text(name.into())].into()
    }

    #[test]
    fn insert_get_delete_roundtrip() {
        let mut t = table();
        let rid = t.insert(row(1, "a")).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(rid).unwrap()[1], Value::Text("a".into()));
        let deleted = t.delete(rid).unwrap();
        assert_eq!(deleted[0], Value::Int(1));
        assert!(t.get(rid).is_none());
        assert!(t.is_empty());
    }

    #[test]
    fn pk_uniqueness_enforced() {
        let mut t = table();
        t.insert(row(1, "a")).unwrap();
        let err = t.insert(row(1, "b")).unwrap_err();
        assert_eq!(err.kind(), "constraint");
        // Failed insert must not leak a slot or index entry.
        assert_eq!(t.len(), 1);
        t.insert(row(2, "b")).unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn pk_lookup_finds_rows() {
        let mut t = table();
        let rid = t.insert(row(5, "x")).unwrap();
        assert_eq!(t.pk_lookup(&[Value::Int(5)]), Some(rid));
        assert_eq!(t.pk_lookup(&[Value::Int(6)]), None);
    }

    #[test]
    fn update_maintains_indexes() {
        let mut t = table();
        let rid = t.insert(row(1, "a")).unwrap();
        let old = t.update(rid, row(2, "b")).unwrap();
        assert_eq!(old[0], Value::Int(1));
        assert_eq!(t.pk_lookup(&[Value::Int(1)]), None);
        assert_eq!(t.pk_lookup(&[Value::Int(2)]), Some(rid));
    }

    #[test]
    fn update_pk_collision_rolls_back() {
        let mut t = table();
        let r1 = t.insert(row(1, "a")).unwrap();
        t.insert(row(2, "b")).unwrap();
        let err = t.update(r1, row(2, "dup")).unwrap_err();
        assert_eq!(err.kind(), "constraint");
        // Old entry must still be findable.
        assert_eq!(t.pk_lookup(&[Value::Int(1)]), Some(r1));
        assert_eq!(t.get(r1).unwrap()[1], Value::Text("a".into()));
    }

    #[test]
    fn restore_reuses_slot() {
        let mut t = table();
        let rid = t.insert(row(1, "a")).unwrap();
        let old = t.delete(rid).unwrap();
        t.restore(rid, old).unwrap();
        assert_eq!(t.pk_lookup(&[Value::Int(1)]), Some(rid));
        assert_eq!(t.len(), 1);
        // Restoring into an occupied slot is an internal error.
        assert!(t.restore(rid, row(9, "z")).is_err());
    }

    #[test]
    fn slots_are_reused_after_delete() {
        let mut t = table();
        let r1 = t.insert(row(1, "a")).unwrap();
        t.delete(r1).unwrap();
        let r2 = t.insert(row(2, "b")).unwrap();
        assert_eq!(r1, r2);
    }

    #[test]
    fn secondary_index_backfill_and_lookup() {
        let mut t = table();
        t.insert(row(1, "a")).unwrap();
        t.insert(row(2, "a")).unwrap();
        t.create_index(IndexDef {
            name: "by_name".into(),
            key_cols: vec![1],
            unique: false,
            ordered: false,
        })
        .unwrap();
        let rids = t
            .index_lookup("by_name", &[Value::Text("a".into())])
            .unwrap();
        assert_eq!(rids.len(), 2);
        t.insert(row(3, "b")).unwrap();
        let rids = t
            .index_lookup("by_name", &[Value::Text("b".into())])
            .unwrap();
        assert_eq!(rids.len(), 1);
    }

    #[test]
    fn duplicate_index_name_rejected() {
        let mut t = table();
        let def = IndexDef {
            name: "ix".into(),
            key_cols: vec![1],
            unique: false,
            ordered: false,
        };
        t.create_index(def.clone()).unwrap();
        assert!(t.create_index(def).is_err());
    }

    #[test]
    fn scan_in_slot_order() {
        let mut t = table();
        t.insert(row(3, "c")).unwrap();
        t.insert(row(1, "a")).unwrap();
        let ids: Vec<i64> = t.scan().map(|(_, r)| r[0].as_int().unwrap()).collect();
        assert_eq!(ids, vec![3, 1]);
    }

    #[test]
    fn truncate_clears_everything() {
        let mut t = table();
        t.insert(row(1, "a")).unwrap();
        t.truncate();
        assert!(t.is_empty());
        assert_eq!(t.pk_lookup(&[Value::Int(1)]), None);
        // And the table remains usable.
        t.insert(row(1, "a")).unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn validation_rejects_bad_rows() {
        let mut t = table();
        assert!(t.insert(vec![Value::Int(1)]).is_err()); // arity
        assert!(t
            .insert(vec![Value::Text("x".into()), Value::Text("y".into())])
            .is_err()); // type
    }

    #[test]
    fn approx_bytes_grows() {
        let mut t = table();
        let before = t.approx_bytes();
        for i in 0..100 {
            t.insert(row(i, "some name")).unwrap();
        }
        assert!(t.approx_bytes() > before);
    }

    #[test]
    fn journal_replay_reproduces_state() {
        let mut base = table();
        base.insert(row(1, "a")).unwrap();
        base.insert(row(2, "b")).unwrap();
        let mut live = base.clone();
        live.set_journaling(true);
        let r3 = live.insert(row(3, "c")).unwrap();
        live.delete(live.pk_lookup(&[Value::Int(1)]).unwrap())
            .unwrap();
        live.update(r3, row(3, "c2")).unwrap();
        let r4 = live.insert(row(4, "d")).unwrap();
        let gone = live.delete(r4).unwrap();
        live.restore(r4, gone).unwrap();
        let ops: Vec<SlotOp> = match live.dirt() {
            TableDirt::Ops(ops) => ops.to_vec(),
            other => panic!("expected ops, got {other:?}"),
        };
        for op in &ops {
            base.apply_slot_op(op).unwrap();
        }
        let mut a = Vec::new();
        let mut b = Vec::new();
        base.encode_binary(&mut a);
        live.encode_binary(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn journal_truncate_supersedes_prior_ops() {
        let mut t = table();
        t.set_journaling(true);
        for i in 0..10 {
            t.insert(row(i, "x")).unwrap();
        }
        t.truncate();
        t.insert(row(99, "y")).unwrap();
        match t.dirt() {
            TableDirt::Ops(ops) => {
                assert_eq!(ops.len(), 2);
                assert!(matches!(ops[0], SlotOp::Truncate));
            }
            other => panic!("expected ops, got {other:?}"),
        }
    }

    #[test]
    fn journal_overflow_and_ddl_force_full() {
        let mut t = table();
        t.set_journaling(true);
        // Far more ops than live slots: delete/insert churn on one key.
        for i in 0..200 {
            let rid = t.insert(row(1, "a")).unwrap();
            if i < 199 {
                t.delete(rid).unwrap();
            }
        }
        assert!(matches!(t.dirt(), TableDirt::Full));
        t.clear_journal();
        assert!(matches!(t.dirt(), TableDirt::Clean));
        t.create_index(IndexDef {
            name: "ix".into(),
            key_cols: vec![1],
            unique: false,
            ordered: false,
        })
        .unwrap();
        assert!(matches!(t.dirt(), TableDirt::Full));
    }

    #[test]
    fn slot_op_codec_roundtrip() {
        let ops = vec![
            SlotOp::Insert {
                rid: 7,
                row: row(1, "a"),
            },
            SlotOp::Delete { rid: 7 },
            SlotOp::Update {
                rid: 3,
                row: row(2, "b"),
            },
            SlotOp::Restore {
                rid: 0,
                row: row(3, "c"),
            },
            SlotOp::Truncate,
        ];
        let mut buf = Vec::new();
        for op in &ops {
            op.encode_binary(&mut buf);
        }
        let mut r = codec::Reader::new(&buf);
        for op in &ops {
            assert_eq!(*op, SlotOp::decode_binary(&mut r).unwrap());
        }
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn journal_not_serialized() {
        let mut t = table();
        t.set_journaling(true);
        t.insert(row(1, "a")).unwrap();
        let json = serde_json::to_string(&t).unwrap();
        let back: Table = serde_json::from_str(&json).unwrap();
        assert!(!back.journaling());
        assert_eq!(back.len(), 1);
    }
}
