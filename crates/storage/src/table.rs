//! Slot-based heap tables.
//!
//! A [`Table`] stores rows in slots addressed by stable [`RowId`]s, keeps
//! the primary-key index and any secondary indexes consistent on every
//! mutation, and exposes exactly the raw operations the undo log needs to
//! reverse: `insert` ↔ `delete`, `update` ↔ `update`, and `restore` (which
//! reinserts a deleted row into its original slot).

use crate::index::{Index, IndexDef, RowId};
use serde::{Deserialize, Serialize};
use sstore_common::{codec, Error, Result, Row, Schema, Value};

/// One heap table (also the physical representation of streams and windows).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    name: String,
    schema: Schema,
    /// Slot array; `None` marks a free slot.
    slots: Vec<Option<Row>>,
    /// Free slot ids available for reuse.
    free: Vec<RowId>,
    /// Live row count (slots minus free).
    live: usize,
    /// Primary-key index (unique) when the schema has a PK.
    pk_index: Option<Index>,
    /// Secondary indexes.
    indexes: Vec<Index>,
}

impl Table {
    /// Create an empty table. Builds the PK index automatically.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        let pk_index = if schema.has_pk() {
            Some(Index::new(IndexDef {
                name: "__pk".into(),
                key_cols: schema.pk_indices().to_vec(),
                unique: true,
                ordered: true,
            }))
        } else {
            None
        };
        Table {
            name: name.into(),
            schema,
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            pk_index,
            indexes: Vec::new(),
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Binary snapshot encoding of the whole table. The schema goes
    /// through the serde-tree bridge (cold metadata); slots and indexes —
    /// the bulk — use the compact value codec, with row encoding borrowing
    /// the shared COW cells. The free-slot stack is serialized in order:
    /// recovery must reuse slots in exactly the pre-crash order for
    /// replay to assign identical row ids.
    pub fn encode_binary(&self, out: &mut Vec<u8>) {
        codec::put_str(out, &self.name);
        self.schema.encode_binary(out);
        codec::put_uvarint(out, self.slots.len() as u64);
        for slot in &self.slots {
            match slot {
                None => out.push(0),
                Some(row) => {
                    out.push(1);
                    codec::encode_row(row, out);
                }
            }
        }
        codec::put_uvarint(out, self.free.len() as u64);
        for &rid in &self.free {
            codec::put_uvarint(out, rid);
        }
        match &self.pk_index {
            None => out.push(0),
            Some(pk) => {
                out.push(1);
                pk.encode_binary(out);
            }
        }
        codec::put_uvarint(out, self.indexes.len() as u64);
        for ix in &self.indexes {
            ix.encode_binary(out);
        }
    }

    /// Decode a table encoded by [`Table::encode_binary`]. `version` is
    /// the snapshot file-header version: v1 images carried the schema
    /// through the serde-tree bridge; v2+ encode it directly.
    pub fn decode_binary(r: &mut codec::Reader<'_>, version: u32) -> Result<Table> {
        let name = r.str()?.to_string();
        let schema: Schema = if version >= 2 {
            Schema::decode_binary(r)?
        } else {
            codec::from_bytes(r.bytes()?)?
        };
        let n_slots = r.uvarint()? as usize;
        let mut slots = Vec::with_capacity(n_slots.min(r.remaining()));
        let mut live = 0usize;
        for _ in 0..n_slots {
            match r.u8()? {
                0 => slots.push(None),
                1 => {
                    slots.push(Some(codec::decode_row(r)?));
                    live += 1;
                }
                tag => {
                    return Err(Error::Codec(format!(
                        "bad slot tag {tag} in table `{name}`"
                    )))
                }
            }
        }
        let n_free = r.uvarint()? as usize;
        let mut free = Vec::with_capacity(n_free.min(r.remaining()));
        for _ in 0..n_free {
            free.push(r.uvarint()?);
        }
        let pk_index = match r.u8()? {
            0 => None,
            1 => Some(Index::decode_binary(r, version)?),
            tag => {
                return Err(Error::Codec(format!(
                    "bad pk-index tag {tag} in table `{name}`"
                )))
            }
        };
        let n_indexes = r.uvarint()? as usize;
        let mut indexes = Vec::with_capacity(n_indexes.min(r.remaining()));
        for _ in 0..n_indexes {
            indexes.push(Index::decode_binary(r, version)?);
        }
        Ok(Table {
            name,
            schema,
            slots,
            free,
            live,
            pk_index,
            indexes,
        })
    }

    /// Table schema (including any hidden columns).
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Add a secondary index over `key_cols`; backfills from existing rows.
    pub fn create_index(&mut self, def: IndexDef) -> Result<()> {
        if def.name == "__pk" || self.indexes.iter().any(|ix| ix.def.name == def.name) {
            return Err(Error::AlreadyExists(format!("index `{}`", def.name)));
        }
        if def.key_cols.iter().any(|&c| c >= self.schema.arity()) {
            return Err(Error::NotFound(format!(
                "index `{}` references a column outside the schema",
                def.name
            )));
        }
        let mut ix = Index::new(def);
        for (rid, slot) in self.slots.iter().enumerate() {
            if let Some(row) = slot {
                ix.insert(ix.key_of(row), rid as RowId)?;
            }
        }
        self.indexes.push(ix);
        Ok(())
    }

    /// Look up a secondary index by name.
    pub fn index(&self, name: &str) -> Option<&Index> {
        self.indexes.iter().find(|ix| ix.def.name == name)
    }

    /// All secondary indexes.
    pub fn indexes(&self) -> &[Index] {
        &self.indexes
    }

    /// Validate and insert a row; returns its stable row id.
    pub fn insert(&mut self, row: impl Into<Row>) -> Result<RowId> {
        let row = self.schema.validate(row)?;
        let rid = match self.free.pop() {
            Some(r) => r,
            None => {
                self.slots.push(None);
                (self.slots.len() - 1) as RowId
            }
        };
        if let Err(e) = self.index_insert(&row, rid) {
            // Slot was not filled yet; return it to the free list.
            self.free.push(rid);
            return Err(e);
        }
        self.slots[rid as usize] = Some(row);
        self.live += 1;
        Ok(rid)
    }

    /// Delete by row id; returns the removed row (needed for undo).
    pub fn delete(&mut self, rid: RowId) -> Result<Row> {
        let row = self
            .slots
            .get_mut(rid as usize)
            .and_then(Option::take)
            .ok_or_else(|| Error::Internal(format!("delete of missing row {rid}")))?;
        self.index_remove(&row, rid)?;
        self.free.push(rid);
        self.live -= 1;
        Ok(row)
    }

    /// Replace the row at `rid`; returns the previous row (for undo).
    /// The returned old image is a shared handle (refcount bump, no copy).
    pub fn update(&mut self, rid: RowId, new_row: impl Into<Row>) -> Result<Row> {
        let new_row = self.schema.validate(new_row)?;
        let old = self
            .slots
            .get(rid as usize)
            .and_then(|s| s.as_ref())
            .cloned()
            .ok_or_else(|| Error::Internal(format!("update of missing row {rid}")))?;
        self.index_remove(&old, rid)?;
        if let Err(e) = self.index_insert(&new_row, rid) {
            // Roll the index change back so the table stays consistent.
            self.index_insert(&old, rid)
                .expect("reinserting old index entries cannot fail");
            return Err(e);
        }
        self.slots[rid as usize] = Some(new_row);
        Ok(old)
    }

    /// Reinsert a previously deleted row into its original slot (undo path).
    pub fn restore(&mut self, rid: RowId, row: Row) -> Result<()> {
        match self.slots.get(rid as usize) {
            None => {
                return Err(Error::Internal(format!(
                    "restore to out-of-range slot {rid}"
                )))
            }
            Some(Some(_)) => {
                return Err(Error::Internal(format!("restore to occupied slot {rid}")))
            }
            Some(None) => {}
        }
        // Undo bypasses validation: the row came out of this table.
        self.index_insert(&row, rid)?;
        self.slots[rid as usize] = Some(row);
        if let Some(pos) = self.free.iter().position(|&f| f == rid) {
            self.free.swap_remove(pos);
        }
        self.live += 1;
        Ok(())
    }

    /// Fetch a row by id.
    pub fn get(&self, rid: RowId) -> Option<&Row> {
        self.slots.get(rid as usize).and_then(|s| s.as_ref())
    }

    /// Row ids matching a primary-key value.
    pub fn pk_lookup(&self, key: &[Value]) -> Option<RowId> {
        self.pk_index.as_ref()?.get(key).first().copied()
    }

    /// Row ids matching a secondary-index key. Returns a borrowed slice
    /// into the index bucket — no per-lookup allocation; callers that need
    /// to mutate while iterating must copy explicitly.
    pub fn index_lookup(&self, index_name: &str, key: &[Value]) -> Result<&[RowId]> {
        let ix = self
            .index(index_name)
            .ok_or_else(|| Error::NotFound(format!("index `{index_name}`")))?;
        Ok(ix.get(key))
    }

    /// Iterate over (row id, row) for all live rows, in slot order.
    /// Slot order equals insertion order for append-only tables (streams),
    /// which the stream layer relies on.
    pub fn scan(&self) -> impl Iterator<Item = (RowId, &Row)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|r| (i as RowId, r)))
    }

    /// Collect all live row ids (used by mutating scans that cannot hold a
    /// borrow across mutations).
    pub fn row_ids(&self) -> Vec<RowId> {
        self.scan().map(|(rid, _)| rid).collect()
    }

    /// Pivot the table's live rows into a columnar batch, in slot order
    /// (the same order `scan()` feeds the row interpreter). `needed`
    /// restricts which columns are materialized (`None` = all); pruned
    /// columns stay `None` in the batch so indices keep lining up with
    /// the schema.
    pub fn column_batch(&self, needed: Option<&[usize]>) -> sstore_vector::ColumnBatch {
        sstore_vector::build_batch(
            self.schema.arity(),
            self.live,
            needed,
            self.scan().map(|(_, r)| r.as_ref()),
        )
    }

    /// Remove every row. Keeps indexes defined but empty.
    pub fn truncate(&mut self) {
        self.slots.clear();
        self.free.clear();
        self.live = 0;
        if let Some(pk) = &mut self.pk_index {
            pk.clear();
        }
        for ix in &mut self.indexes {
            ix.clear();
        }
    }

    fn index_insert(&mut self, row: &Row, rid: RowId) -> Result<()> {
        if let Some(pk) = &mut self.pk_index {
            let key = pk.key_of(row);
            pk.insert(key, rid).map_err(|_| {
                Error::Constraint(format!(
                    "duplicate primary key {:?} in table `{}`",
                    self.schema
                        .pk_indices()
                        .iter()
                        .map(|&i| row[i].to_string())
                        .collect::<Vec<_>>(),
                    self.name
                ))
            })?;
        }
        for i in 0..self.indexes.len() {
            let key = self.indexes[i].key_of(row);
            if let Err(e) = self.indexes[i].insert(key, rid) {
                // Unwind the partial index inserts.
                for j in 0..i {
                    let key = self.indexes[j].key_ref(row);
                    self.indexes[j]
                        .remove(&key, rid)
                        .expect("unwinding fresh index insert cannot fail");
                }
                if let Some(pk) = &mut self.pk_index {
                    let key = pk.key_ref(row);
                    pk.remove(&key, rid)
                        .expect("unwinding fresh pk insert cannot fail");
                }
                return Err(e);
            }
        }
        Ok(())
    }

    fn index_remove(&mut self, row: &Row, rid: RowId) -> Result<()> {
        if let Some(pk) = &mut self.pk_index {
            let key = pk.key_ref(row);
            pk.remove(&key, rid)?;
        }
        for ix in &mut self.indexes {
            let key = ix.key_ref(row);
            ix.remove(&key, rid)?;
        }
        Ok(())
    }

    /// Approximate memory footprint in bytes (rows only; used by the GC
    /// experiment E7 to show bounded memory on unbounded streams).
    pub fn approx_bytes(&self) -> usize {
        let mut total = self.slots.capacity() * std::mem::size_of::<Option<Row>>();
        for row in self.slots.iter().flatten() {
            total += row.len() * std::mem::size_of::<Value>();
            for v in row {
                if let Value::Text(s) = v {
                    total += s.capacity();
                }
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sstore_common::{Column, DataType};

    fn table() -> Table {
        let schema = Schema::new(
            vec![
                Column::new("id", DataType::Int),
                Column::new("name", DataType::Text),
            ],
            &["id"],
        )
        .unwrap();
        Table::new("t", schema)
    }

    fn row(id: i64, name: &str) -> Row {
        vec![Value::Int(id), Value::Text(name.into())].into()
    }

    #[test]
    fn insert_get_delete_roundtrip() {
        let mut t = table();
        let rid = t.insert(row(1, "a")).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(rid).unwrap()[1], Value::Text("a".into()));
        let deleted = t.delete(rid).unwrap();
        assert_eq!(deleted[0], Value::Int(1));
        assert!(t.get(rid).is_none());
        assert!(t.is_empty());
    }

    #[test]
    fn pk_uniqueness_enforced() {
        let mut t = table();
        t.insert(row(1, "a")).unwrap();
        let err = t.insert(row(1, "b")).unwrap_err();
        assert_eq!(err.kind(), "constraint");
        // Failed insert must not leak a slot or index entry.
        assert_eq!(t.len(), 1);
        t.insert(row(2, "b")).unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn pk_lookup_finds_rows() {
        let mut t = table();
        let rid = t.insert(row(5, "x")).unwrap();
        assert_eq!(t.pk_lookup(&[Value::Int(5)]), Some(rid));
        assert_eq!(t.pk_lookup(&[Value::Int(6)]), None);
    }

    #[test]
    fn update_maintains_indexes() {
        let mut t = table();
        let rid = t.insert(row(1, "a")).unwrap();
        let old = t.update(rid, row(2, "b")).unwrap();
        assert_eq!(old[0], Value::Int(1));
        assert_eq!(t.pk_lookup(&[Value::Int(1)]), None);
        assert_eq!(t.pk_lookup(&[Value::Int(2)]), Some(rid));
    }

    #[test]
    fn update_pk_collision_rolls_back() {
        let mut t = table();
        let r1 = t.insert(row(1, "a")).unwrap();
        t.insert(row(2, "b")).unwrap();
        let err = t.update(r1, row(2, "dup")).unwrap_err();
        assert_eq!(err.kind(), "constraint");
        // Old entry must still be findable.
        assert_eq!(t.pk_lookup(&[Value::Int(1)]), Some(r1));
        assert_eq!(t.get(r1).unwrap()[1], Value::Text("a".into()));
    }

    #[test]
    fn restore_reuses_slot() {
        let mut t = table();
        let rid = t.insert(row(1, "a")).unwrap();
        let old = t.delete(rid).unwrap();
        t.restore(rid, old).unwrap();
        assert_eq!(t.pk_lookup(&[Value::Int(1)]), Some(rid));
        assert_eq!(t.len(), 1);
        // Restoring into an occupied slot is an internal error.
        assert!(t.restore(rid, row(9, "z")).is_err());
    }

    #[test]
    fn slots_are_reused_after_delete() {
        let mut t = table();
        let r1 = t.insert(row(1, "a")).unwrap();
        t.delete(r1).unwrap();
        let r2 = t.insert(row(2, "b")).unwrap();
        assert_eq!(r1, r2);
    }

    #[test]
    fn secondary_index_backfill_and_lookup() {
        let mut t = table();
        t.insert(row(1, "a")).unwrap();
        t.insert(row(2, "a")).unwrap();
        t.create_index(IndexDef {
            name: "by_name".into(),
            key_cols: vec![1],
            unique: false,
            ordered: false,
        })
        .unwrap();
        let rids = t
            .index_lookup("by_name", &[Value::Text("a".into())])
            .unwrap();
        assert_eq!(rids.len(), 2);
        t.insert(row(3, "b")).unwrap();
        let rids = t
            .index_lookup("by_name", &[Value::Text("b".into())])
            .unwrap();
        assert_eq!(rids.len(), 1);
    }

    #[test]
    fn duplicate_index_name_rejected() {
        let mut t = table();
        let def = IndexDef {
            name: "ix".into(),
            key_cols: vec![1],
            unique: false,
            ordered: false,
        };
        t.create_index(def.clone()).unwrap();
        assert!(t.create_index(def).is_err());
    }

    #[test]
    fn scan_in_slot_order() {
        let mut t = table();
        t.insert(row(3, "c")).unwrap();
        t.insert(row(1, "a")).unwrap();
        let ids: Vec<i64> = t.scan().map(|(_, r)| r[0].as_int().unwrap()).collect();
        assert_eq!(ids, vec![3, 1]);
    }

    #[test]
    fn truncate_clears_everything() {
        let mut t = table();
        t.insert(row(1, "a")).unwrap();
        t.truncate();
        assert!(t.is_empty());
        assert_eq!(t.pk_lookup(&[Value::Int(1)]), None);
        // And the table remains usable.
        t.insert(row(1, "a")).unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn validation_rejects_bad_rows() {
        let mut t = table();
        assert!(t.insert(vec![Value::Int(1)]).is_err()); // arity
        assert!(t
            .insert(vec![Value::Text("x".into()), Value::Text("y".into())])
            .is_err()); // type
    }

    #[test]
    fn approx_bytes_grows() {
        let mut t = table();
        let before = t.approx_bytes();
        for i in 0..100 {
            t.insert(row(i, "some name")).unwrap();
        }
        assert!(t.approx_bytes() > before);
    }
}
