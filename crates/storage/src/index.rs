//! Secondary indexes: hash (point lookups) and ordered (range scans).
//!
//! Index keys are `Vec<Value>` (composite keys supported). Both index kinds
//! map a key to the set of row ids holding it; unique indexes additionally
//! reject duplicate keys at insert time.

use serde::{Deserialize, Serialize};
use sstore_common::{codec, Error, Result, Value};
use std::collections::{BTreeMap, HashMap};
use std::ops::Bound;

/// Stable identifier of a row slot within one table.
///
/// Row ids are never reused while a transaction that might undo is in
/// flight, and undo restores a deleted row into its original slot, so the
/// pair (table, row id) is a stable address for the lifetime of an undo log.
pub type RowId = u64;

/// Definition of a secondary index.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IndexDef {
    /// Index name, unique within its table.
    pub name: String,
    /// Column positions forming the key, in key order.
    pub key_cols: Vec<usize>,
    /// Reject duplicate keys when true.
    pub unique: bool,
    /// Ordered (B-tree) index supporting range scans when true; hash
    /// otherwise.
    pub ordered: bool,
}

/// The index structure itself.
#[derive(Debug, Clone)]
pub enum IndexStore {
    /// Hash index: key -> row ids.
    Hash(HashMap<Vec<Value>, Vec<RowId>>),
    /// Ordered index: key -> row ids, range-scannable.
    Ordered(BTreeMap<Vec<Value>, Vec<RowId>>),
}

/// A live secondary index: definition plus data.
///
/// Serialized as `(def, entries)` pairs because JSON object keys must be
/// strings; rebuilt into the hash/btree form on deserialization.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(into = "IndexSerde", try_from = "IndexSerde")]
pub struct Index {
    /// The definition this index was created from.
    pub def: IndexDef,
    store: IndexStore,
}

/// Serde mirror of [`Index`]: entry list instead of a map.
#[derive(Serialize, Deserialize)]
struct IndexSerde {
    def: IndexDef,
    entries: Vec<(Vec<Value>, Vec<RowId>)>,
}

impl From<Index> for IndexSerde {
    fn from(ix: Index) -> Self {
        let entries = match ix.store {
            IndexStore::Hash(m) => m.into_iter().collect(),
            IndexStore::Ordered(m) => m.into_iter().collect(),
        };
        IndexSerde {
            def: ix.def,
            entries,
        }
    }
}

impl TryFrom<IndexSerde> for Index {
    type Error = String;
    fn try_from(s: IndexSerde) -> std::result::Result<Self, String> {
        let store = if s.def.ordered {
            IndexStore::Ordered(s.entries.into_iter().collect())
        } else {
            IndexStore::Hash(s.entries.into_iter().collect())
        };
        Ok(Index { def: s.def, store })
    }
}

/// A probe key for index lookups: borrowed straight out of a row when the
/// key columns form a contiguous run (the common single-column case), owned
/// only when a composite key has to be gathered from scattered columns.
/// Both index kinds accept `&[Value]`, so probing with a borrowed key never
/// allocates.
#[derive(Debug)]
pub enum KeyRef<'a> {
    /// Key cells borrowed from the row.
    Borrowed(&'a [Value]),
    /// Key cells gathered into a fresh vector (non-contiguous composite).
    Owned(Vec<Value>),
}

impl std::ops::Deref for KeyRef<'_> {
    type Target = [Value];
    fn deref(&self) -> &[Value] {
        match self {
            KeyRef::Borrowed(s) => s,
            KeyRef::Owned(v) => v,
        }
    }
}

impl KeyRef<'_> {
    /// The key as an owned vector (for map insertion).
    pub fn into_owned(self) -> Vec<Value> {
        match self {
            KeyRef::Borrowed(s) => s.to_vec(),
            KeyRef::Owned(v) => v,
        }
    }
}

impl Index {
    /// Binary snapshot encoding: the definition followed by the entries,
    /// all in the compact binary codec (no serde tree anywhere since v2).
    /// Hash-index entries are sorted by key so the encoding is
    /// deterministic; within an entry the row-id list keeps its exact
    /// order (lookup results are order-sensitive).
    pub fn encode_binary(&self, out: &mut Vec<u8>) {
        codec::put_str(out, &self.def.name);
        codec::put_uvarint(out, self.def.key_cols.len() as u64);
        for &c in &self.def.key_cols {
            codec::put_uvarint(out, c as u64);
        }
        out.push(self.def.unique as u8);
        out.push(self.def.ordered as u8);
        let encode_entry = |key: &[Value], ids: &[RowId], out: &mut Vec<u8>| {
            codec::put_uvarint(out, key.len() as u64);
            for v in key {
                codec::encode_value(v, out);
            }
            codec::put_uvarint(out, ids.len() as u64);
            for &rid in ids {
                codec::put_uvarint(out, rid);
            }
        };
        match &self.store {
            IndexStore::Ordered(m) => {
                codec::put_uvarint(out, m.len() as u64);
                for (key, ids) in m {
                    encode_entry(key, ids, out);
                }
            }
            IndexStore::Hash(m) => {
                codec::put_uvarint(out, m.len() as u64);
                let mut entries: Vec<(&Vec<Value>, &Vec<RowId>)> = m.iter().collect();
                entries.sort_by(|a, b| a.0.cmp(b.0));
                for (key, ids) in entries {
                    encode_entry(key, ids, out);
                }
            }
        }
    }

    /// Decode an index encoded by [`Index::encode_binary`]. `version` is
    /// the snapshot header version (v1 carried the definition through the
    /// serde-tree bridge). Entries are loaded verbatim (no uniqueness
    /// re-checks: the data already passed them when it was live).
    pub fn decode_binary(r: &mut codec::Reader<'_>, version: u32) -> Result<Index> {
        let def: IndexDef = if version >= 2 {
            let name = r.str()?.to_string();
            let n = r.uvarint()? as usize;
            if n > r.remaining() {
                return Err(sstore_common::Error::Codec(format!(
                    "index key-column count {n} exceeds remaining input"
                )));
            }
            let mut key_cols = Vec::with_capacity(n);
            for _ in 0..n {
                key_cols.push(r.uvarint()? as usize);
            }
            let unique = r.u8()? != 0;
            let ordered = r.u8()? != 0;
            IndexDef {
                name,
                key_cols,
                unique,
                ordered,
            }
        } else {
            codec::from_bytes(r.bytes()?)?
        };
        let n_entries = r.uvarint()? as usize;
        let mut entries = Vec::with_capacity(n_entries.min(r.remaining()));
        for _ in 0..n_entries {
            let key_len = r.uvarint()? as usize;
            let mut key = Vec::with_capacity(key_len.min(r.remaining()));
            for _ in 0..key_len {
                key.push(codec::decode_value(r)?);
            }
            let n_ids = r.uvarint()? as usize;
            let mut ids = Vec::with_capacity(n_ids.min(r.remaining()));
            for _ in 0..n_ids {
                ids.push(r.uvarint()?);
            }
            entries.push((key, ids));
        }
        let store = if def.ordered {
            IndexStore::Ordered(entries.into_iter().collect())
        } else {
            IndexStore::Hash(entries.into_iter().collect())
        };
        Ok(Index { def, store })
    }

    /// Create an empty index from a definition.
    pub fn new(def: IndexDef) -> Self {
        let store = if def.ordered {
            IndexStore::Ordered(BTreeMap::new())
        } else {
            IndexStore::Hash(HashMap::new())
        };
        Index { def, store }
    }

    /// Extract this index's key from a full row (always owned; prefer
    /// [`Index::key_ref`] for probes and removals).
    pub fn key_of(&self, row: &[Value]) -> Vec<Value> {
        self.def.key_cols.iter().map(|&i| row[i].clone()).collect()
    }

    /// Borrow this index's key out of a full row without allocating when
    /// the key columns are contiguous (always true for single-column keys).
    pub fn key_ref<'a>(&self, row: &'a [Value]) -> KeyRef<'a> {
        match self.def.key_cols.as_slice() {
            [] => KeyRef::Borrowed(&[]),
            &[i] => KeyRef::Borrowed(std::slice::from_ref(&row[i])),
            cols if cols.windows(2).all(|w| w[1] == w[0] + 1) => {
                KeyRef::Borrowed(&row[cols[0]..=cols[cols.len() - 1]])
            }
            _ => KeyRef::Owned(self.key_of(row)),
        }
    }

    /// Insert a (key, row id) pair. Fails on unique violation.
    pub fn insert(&mut self, key: Vec<Value>, rid: RowId) -> Result<()> {
        let ids = match &mut self.store {
            IndexStore::Hash(m) => m.entry(key).or_default(),
            IndexStore::Ordered(m) => m.entry(key).or_default(),
        };
        if self.def.unique && !ids.is_empty() {
            return Err(Error::Constraint(format!(
                "unique index `{}` violated",
                self.def.name
            )));
        }
        ids.push(rid);
        Ok(())
    }

    /// Remove a (key, row id) pair; it must be present.
    ///
    /// Empty buckets are removed eagerly so `key_count` reflects live keys.
    pub fn remove(&mut self, key: &[Value], rid: RowId) -> Result<()> {
        let removed = match &mut self.store {
            IndexStore::Hash(m) => {
                if Self::remove_from(m.get_mut(key), rid) {
                    if m.get(key).is_some_and(|v| v.is_empty()) {
                        m.remove(key);
                    }
                    true
                } else {
                    false
                }
            }
            IndexStore::Ordered(m) => {
                if Self::remove_from(m.get_mut(key), rid) {
                    if m.get(key).is_some_and(|v| v.is_empty()) {
                        m.remove(key);
                    }
                    true
                } else {
                    false
                }
            }
        };
        if removed {
            Ok(())
        } else {
            Err(Error::Internal(format!(
                "index `{}` missing entry for row {rid}",
                self.def.name
            )))
        }
    }

    fn remove_from(ids: Option<&mut Vec<RowId>>, rid: RowId) -> bool {
        if let Some(ids) = ids {
            if let Some(pos) = ids.iter().position(|&r| r == rid) {
                ids.swap_remove(pos);
                return true;
            }
        }
        false
    }

    /// Row ids for an exact key.
    pub fn get(&self, key: &[Value]) -> &[RowId] {
        match &self.store {
            IndexStore::Hash(m) => m.get(key).map(|v| v.as_slice()).unwrap_or(&[]),
            IndexStore::Ordered(m) => m.get(key).map(|v| v.as_slice()).unwrap_or(&[]),
        }
    }

    /// Range scan over an ordered index. Bounds are over full composite
    /// keys. Returns row ids in key order. Errors on hash indexes.
    pub fn range(&self, lo: Bound<Vec<Value>>, hi: Bound<Vec<Value>>) -> Result<Vec<RowId>> {
        match &self.store {
            IndexStore::Hash(_) => Err(Error::Internal(format!(
                "index `{}` is not ordered; range scan unsupported",
                self.def.name
            ))),
            IndexStore::Ordered(m) => {
                let mut out = Vec::new();
                for (_, ids) in m.range((lo, hi)) {
                    out.extend_from_slice(ids);
                }
                Ok(out)
            }
        }
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> usize {
        match &self.store {
            IndexStore::Hash(m) => m.len(),
            IndexStore::Ordered(m) => m.len(),
        }
    }

    /// Drop all entries (used when truncating a table).
    pub fn clear(&mut self) {
        match &mut self.store {
            IndexStore::Hash(m) => m.clear(),
            IndexStore::Ordered(m) => m.clear(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_idx(unique: bool) -> Index {
        Index::new(IndexDef {
            name: "ix".into(),
            key_cols: vec![0],
            unique,
            ordered: false,
        })
    }

    fn btree_idx() -> Index {
        Index::new(IndexDef {
            name: "ox".into(),
            key_cols: vec![1],
            unique: false,
            ordered: true,
        })
    }

    #[test]
    fn insert_get_remove() {
        let mut ix = hash_idx(false);
        ix.insert(vec![Value::Int(1)], 10).unwrap();
        ix.insert(vec![Value::Int(1)], 11).unwrap();
        assert_eq!(ix.get(&[Value::Int(1)]).len(), 2);
        ix.remove(&[Value::Int(1)], 10).unwrap();
        assert_eq!(ix.get(&[Value::Int(1)]), &[11]);
        assert!(ix.remove(&[Value::Int(1)], 99).is_err());
    }

    #[test]
    fn unique_violation() {
        let mut ix = hash_idx(true);
        ix.insert(vec![Value::Int(1)], 10).unwrap();
        let err = ix.insert(vec![Value::Int(1)], 11).unwrap_err();
        assert_eq!(err.kind(), "constraint");
    }

    #[test]
    fn key_extraction_composite() {
        let ix = Index::new(IndexDef {
            name: "c".into(),
            key_cols: vec![2, 0],
            unique: false,
            ordered: false,
        });
        let row = vec![Value::Int(1), Value::Int(2), Value::Int(3)];
        assert_eq!(ix.key_of(&row), vec![Value::Int(3), Value::Int(1)]);
    }

    #[test]
    fn range_scan_ordered() {
        let mut ix = btree_idx();
        for (k, rid) in [(5, 1u64), (1, 2), (3, 3), (9, 4)] {
            ix.insert(vec![Value::Int(k)], rid).unwrap();
        }
        let rids = ix
            .range(
                Bound::Included(vec![Value::Int(2)]),
                Bound::Excluded(vec![Value::Int(9)]),
            )
            .unwrap();
        assert_eq!(rids, vec![3, 1]);
        assert_eq!(ix.key_count(), 4);
    }

    #[test]
    fn range_on_hash_errors() {
        let ix = hash_idx(false);
        assert!(ix.range(Bound::Unbounded, Bound::Unbounded).is_err());
    }

    #[test]
    fn clear_empties() {
        let mut ix = btree_idx();
        ix.insert(vec![Value::Int(1)], 1).unwrap();
        ix.clear();
        assert_eq!(ix.key_count(), 0);
    }
}
