//! Property tests: the heap table against a naive model, and undo
//! exactness under random operation sequences.

use proptest::prelude::*;
use sstore_common::{Column, DataType, Row, Schema, Value};
use sstore_storage::{IndexDef, RowId, Table, UndoLog, UndoOp};
use std::collections::BTreeMap;

fn schema() -> Schema {
    Schema::new(
        vec![
            Column::new("id", DataType::Int),
            Column::new("v", DataType::Int),
        ],
        &["id"],
    )
    .unwrap()
}

#[derive(Debug, Clone)]
enum Op {
    Insert(i64, i64),
    DeleteByKey(i64),
    UpdateByKey(i64, i64),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0i64..50, any::<i64>()).prop_map(|(k, v)| Op::Insert(k, v)),
            (0i64..50).prop_map(Op::DeleteByKey),
            (0i64..50, any::<i64>()).prop_map(|(k, v)| Op::UpdateByKey(k, v)),
        ],
        0..120,
    )
}

fn apply(table: &mut Table, model: &mut BTreeMap<i64, i64>, op: &Op) {
    match op {
        Op::Insert(k, v) => {
            let res = table.insert(vec![Value::Int(*k), Value::Int(*v)]);
            if model.contains_key(k) {
                assert!(res.is_err(), "duplicate PK accepted");
            } else {
                res.unwrap();
                model.insert(*k, *v);
            }
        }
        Op::DeleteByKey(k) => match table.pk_lookup(&[Value::Int(*k)]) {
            Some(rid) => {
                table.delete(rid).unwrap();
                assert!(model.remove(k).is_some(), "table had a row the model lacks");
            }
            None => assert!(!model.contains_key(k), "model had a row the table lacks"),
        },
        Op::UpdateByKey(k, v) => {
            if let Some(rid) = table.pk_lookup(&[Value::Int(*k)]) {
                table
                    .update(rid, vec![Value::Int(*k), Value::Int(*v)])
                    .unwrap();
                model.insert(*k, *v);
            } else {
                assert!(!model.contains_key(k));
            }
        }
    }
}

fn assert_matches_model(table: &Table, model: &BTreeMap<i64, i64>) {
    assert_eq!(table.len(), model.len());
    let mut seen: BTreeMap<i64, i64> = BTreeMap::new();
    for (_, row) in table.scan() {
        seen.insert(row[0].as_int().unwrap(), row[1].as_int().unwrap());
    }
    assert_eq!(&seen, model);
    // PK index agrees with the scan.
    for (&k, &v) in model {
        let rid = table.pk_lookup(&[Value::Int(k)]).expect("indexed");
        assert_eq!(table.get(rid).unwrap()[1], Value::Int(v));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn table_matches_model_under_random_ops(ops in arb_ops()) {
        let mut table = Table::new("t", schema());
        let mut model = BTreeMap::new();
        for op in &ops {
            apply(&mut table, &mut model, op);
        }
        assert_matches_model(&table, &model);
    }

    #[test]
    fn secondary_index_stays_consistent(ops in arb_ops()) {
        let mut table = Table::new("t", schema());
        table.create_index(IndexDef {
            name: "by_v".into(),
            key_cols: vec![1],
            unique: false,
            ordered: true,
        }).unwrap();
        let mut model = BTreeMap::new();
        for op in &ops {
            apply(&mut table, &mut model, op);
        }
        // Every row is findable through the secondary index, and the index
        // holds nothing else.
        let mut via_index = 0usize;
        for &v in model.values() {
            let rids = table.index_lookup("by_v", &[Value::Int(v)]).unwrap();
            prop_assert!(!rids.is_empty());
            via_index += rids.len();
        }
        // Rows sharing a v are counted once per occurrence; compare totals
        // by scanning distinct v values.
        let mut distinct: Vec<i64> = model.values().copied().collect();
        distinct.sort_unstable();
        distinct.dedup();
        let total: usize = distinct
            .iter()
            .map(|v| table.index_lookup("by_v", &[Value::Int(*v)]).unwrap().len())
            .sum();
        prop_assert_eq!(total, model.len());
        let _ = via_index;
    }

    #[test]
    fn undo_restores_exact_state(setup in arb_ops(), txn in arb_ops()) {
        let mut table = Table::new("t", schema());
        let mut model = BTreeMap::new();
        for op in &setup {
            apply(&mut table, &mut model, op);
        }
        // Snapshot the committed state.
        let committed: Vec<(RowId, Row)> =
            table.scan().map(|(rid, r)| (rid, r.clone())).collect();

        // Run a "transaction" recording undo, then roll it back.
        let mut db = sstore_storage::Database::new();
        let t = db.create_table("t", schema()).unwrap();
        // Replay committed state into the database instance.
        for (_, row) in &committed {
            db.table_mut(t).unwrap().insert(row.clone()).unwrap();
        }
        let mut undo = UndoLog::new();
        for op in &txn {
            match op {
                Op::Insert(k, v) => {
                    if let Ok(rid) = db.table_mut(t).unwrap().insert(vec![Value::Int(*k), Value::Int(*v)]) {
                        undo.push(UndoOp::Insert { table: t, rid });
                    }
                }
                Op::DeleteByKey(k) => {
                    if let Some(rid) = db.table(t).unwrap().pk_lookup(&[Value::Int(*k)]) {
                        let row = db.table_mut(t).unwrap().delete(rid).unwrap();
                        undo.push(UndoOp::Delete { table: t, rid, row });
                    }
                }
                Op::UpdateByKey(k, v) => {
                    if let Some(rid) = db.table(t).unwrap().pk_lookup(&[Value::Int(*k)]) {
                        let old = db.table_mut(t).unwrap()
                            .update(rid, vec![Value::Int(*k), Value::Int(*v)]).unwrap();
                        undo.push(UndoOp::Update { table: t, rid, old });
                    }
                }
            }
        }
        undo.rollback(&mut db).unwrap();

        let after: Vec<(RowId, Row)> =
            db.table(t).unwrap().scan().map(|(rid, r)| (rid, r.clone())).collect();
        // Compare as sets keyed by pk (slot ids may differ only if the
        // replayed insert order differed — it didn't, we replayed in scan
        // order, so exact equality must hold).
        let before_sorted = {
            let mut b: Vec<Row> = committed.iter().map(|(_, r)| r.clone()).collect();
            b.sort();
            b
        };
        let after_sorted = {
            let mut a: Vec<Row> = after.iter().map(|(_, r)| r.clone()).collect();
            a.sort();
            a
        };
        prop_assert_eq!(before_sorted, after_sorted);
    }
}
