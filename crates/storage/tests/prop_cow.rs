//! Property tests for the shared-row (COW) aliasing contract: a row handle
//! snapshotted out of the storage layer — an undo image, a windowed copy, a
//! query result — must never observe a later mutation of the same slot,
//! and undo must restore exact pre-images even though everything is shared.

use proptest::prelude::*;
use sstore_common::{Column, DataType, Row, Schema, Value};
use sstore_storage::{Database, Table, UndoLog, UndoOp};

fn schema() -> Schema {
    Schema::new(
        vec![
            Column::new("id", DataType::Int),
            Column::new("v", DataType::Int),
            Column::nullable("tag", DataType::Text),
        ],
        &["id"],
    )
    .unwrap()
}

fn row(id: i64, v: i64, tag: &str) -> Row {
    vec![Value::Int(id), Value::Int(v), Value::Text(tag.to_string())].into()
}

proptest! {
    /// UPDATE through the table never alters previously-snapshotted
    /// handles of the same slot, no matter how many aliases exist.
    #[test]
    fn update_never_mutates_snapshots(
        updates in prop::collection::vec((any::<i64>(), ".{0,8}"), 1..20),
    ) {
        let mut t = Table::new("t", schema());
        let rid = t.insert(row(1, 0, "origin")).unwrap();

        // Accumulate a snapshot of every committed image, sharing the
        // slot's allocation each time.
        let mut snapshots: Vec<(Row, i64, String)> =
            vec![(t.get(rid).unwrap().clone(), 0, "origin".to_string())];

        for (i, (v, tag)) in updates.iter().enumerate() {
            t.update(rid, row(1, *v, tag)).unwrap();
            // All older snapshots still carry their original cells.
            for (snap, sv, stag) in &snapshots {
                prop_assert_eq!(snap[1].as_int().unwrap(), *sv);
                prop_assert_eq!(snap[2].as_text().unwrap(), stag.as_str());
            }
            let _ = i;
            snapshots.push((t.get(rid).unwrap().clone(), *v, tag.clone()));
        }
    }

    /// Mutating a shared handle via `make_mut` copies first: the table's
    /// slot (an alias of the same `Arc`) is untouched.
    #[test]
    fn make_mut_on_alias_leaves_table_untouched(v in any::<i64>(), w in any::<i64>()) {
        let mut t = Table::new("t", schema());
        let rid = t.insert(row(7, v, "keep")).unwrap();
        let mut alias = t.get(rid).unwrap().clone();
        alias.make_mut()[1] = Value::Int(w);
        prop_assert_eq!(alias[1].as_int().unwrap(), w);
        prop_assert_eq!(t.get(rid).unwrap()[1].as_int().unwrap(), v);
    }

    /// Undo restores exact pre-images through shared handles: random
    /// insert/update/delete activity inside a transaction, then rollback,
    /// leaves the table byte-identical to the committed state — and the
    /// handles snapshotted *before* the transaction never change at all.
    #[test]
    fn undo_restores_exact_images_despite_sharing(
        seedrows in prop::collection::vec((0i64..20, any::<i64>(), ".{0,6}"), 1..10),
        txnops in prop::collection::vec((0i64..20, any::<i64>(), ".{0,6}"), 1..30),
    ) {
        let mut db = Database::new();
        let t = db.create_table("t", schema()).unwrap();

        // Committed prefix.
        for (k, v, tag) in &seedrows {
            let _ = db.table_mut(t).unwrap().insert(row(*k, *v, tag));
        }
        let committed: Vec<(u64, Row)> = db
            .table(t)
            .unwrap()
            .scan()
            .map(|(rid, r)| (rid, r.clone()))
            .collect();

        // A transaction doing random mutations, undo-logged.
        let mut undo = UndoLog::new();
        for (k, v, tag) in &txnops {
            let existing = db.table(t).unwrap().pk_lookup(&[Value::Int(*k)]);
            match existing {
                Some(rid) => {
                    if *v % 2 == 0 {
                        let old = db.table_mut(t).unwrap().update(rid, row(*k, *v, tag)).unwrap();
                        undo.push(UndoOp::Update { table: t, rid, old });
                    } else {
                        let old = db.table_mut(t).unwrap().delete(rid).unwrap();
                        undo.push(UndoOp::Delete { table: t, rid, row: old });
                    }
                }
                None => {
                    if let Ok(rid) = db.table_mut(t).unwrap().insert(row(*k, *v, tag)) {
                        undo.push(UndoOp::Insert { table: t, rid });
                    }
                }
            }
        }
        undo.rollback(&mut db).unwrap();

        let after: Vec<(u64, Row)> = db
            .table(t)
            .unwrap()
            .scan()
            .map(|(rid, r)| (rid, r.clone()))
            .collect();
        prop_assert_eq!(&committed, &after, "rollback must restore exact images");
        // And the pre-transaction snapshots themselves were never written
        // through, even though the transaction updated their slots.
        for ((_, snap), (k, v, tag)) in committed.iter().zip(seedrows.iter().filter({
            let mut seen = std::collections::HashSet::new();
            move |(k, _, _)| seen.insert(*k)
        })) {
            prop_assert_eq!(snap[0].as_int().unwrap(), *k);
            prop_assert_eq!(snap[1].as_int().unwrap(), *v);
            prop_assert_eq!(snap[2].as_text().unwrap(), tag.as_str());
        }
    }
}
